//! The simulation engine: drives the alarm manager and the device.
//!
//! A [`Simulation`] owns an [`AlarmManager`] (the system under test), a
//! [`Device`] (the energy-metered substrate), and a discrete-event loop
//! that plays the role of the real-time clock in Figure 1 of the paper:
//!
//! 1. the RTC fires at the head of the wakeup queue and awakens the
//!    device (paying the wake-transition energy and latency);
//! 2. once awake, every due entry is delivered: each member alarm's task
//!    wakelocks its hardware for its task duration;
//! 3. repeating alarms are reinserted by the manager under its policy;
//! 4. when the last wakelock is released the device lingers briefly and
//!    falls back asleep.
//!
//! Non-wakeup alarms are delivered opportunistically whenever the device
//! is awake, and external wake events (push messages, the user pressing
//! the power button) can be injected.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

use simty_core::admission::{AdmissionController, AdmissionDecision, AppClass};
use simty_core::alarm::{Alarm, AlarmId, AlarmKind};
use simty_core::entry::QueueEntry;
use simty_core::error::RegisterAlarmError;
use simty_core::hardware::HardwareSet;
use simty_core::manager::AlarmManager;
use simty_core::policy::AlignmentPolicy;
use simty_core::time::{SimDuration, SimTime};
use simty_device::device::Device;
use simty_obs::{SpanKind, Stage, StageProfile};

use crate::attribution::AttributionLedger;
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::config::{InvariantMode, SimConfig};
use crate::degrade::{DegradationGovernor, DegradationTier};
use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultPlan, FaultState, RebootPlan};
use crate::invariant::InvariantMonitor;
use crate::metrics::{OverloadStats, SimReport};
use crate::obs::ObsLayer;
use crate::overload::{RegistrationStormPlan, StormBurst};
use crate::trace::{DeliveryRecord, InterventionKind, InterventionRecord, Trace};
use crate::watchdog::OnlineWatchdogConfig;

/// A tiny multiplicative hasher for the `(tag, millisecond)` armed-event
/// dedup keys: the default SipHash dominates the per-event cost of this
/// set, and HashDoS resistance buys nothing against simulator-generated
/// keys. Iteration order is never observed (checkpoint capture sorts).
#[derive(Default)]
pub(crate) struct ArmedKeyHasher(u64);

impl Hasher for ArmedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

/// The armed-event dedup set (see [`ArmedKeyHasher`]).
pub(crate) type ArmedSet = HashSet<(u8, u64), BuildHasherDefault<ArmedKeyHasher>>;

/// One outstanding task hold: who is keeping which hardware until when.
/// The engine tracks these so the online watchdog (and the targeted
/// [`Simulation::force_release_app`]) can cut a single offender loose
/// while every bystander keeps its locks.
#[derive(Debug, Clone)]
pub(crate) struct TaskHold {
    pub(crate) app: Arc<str>,
    pub(crate) hardware: HardwareSet,
    pub(crate) started: SimTime,
    pub(crate) until: SimTime,
}

/// A pending hardware-activation retry after a transient failure.
#[derive(Debug, Clone)]
pub(crate) struct RetrySlot {
    pub(crate) app: Arc<str>,
    pub(crate) hardware: HardwareSet,
    pub(crate) until: SimTime,
    pub(crate) attempt: u32,
    pub(crate) done: bool,
    /// Wake-transition energy paid so far just to run this retry.
    pub(crate) overhead_mj: f64,
}

/// A deterministic connected-standby simulation.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::policy::SimtyPolicy;
/// use simty_core::time::{SimDuration, SimTime};
/// use simty_sim::config::SimConfig;
/// use simty_sim::engine::Simulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimConfig::new().with_duration(SimDuration::from_mins(10));
/// let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), config);
/// sim.register(
///     Alarm::builder("sync")
///         .nominal(SimTime::from_secs(60))
///         .repeating_dynamic(SimDuration::from_secs(60))
///         .grace_fraction(0.9)
///         .task_duration(SimDuration::from_secs(2))
///         .build()?,
/// )?;
/// let report = sim.run();
/// assert!(report.cpu_wakeups > 0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    pub(crate) manager: AlarmManager,
    pub(crate) device: Device,
    pub(crate) events: EventQueue,
    pub(crate) trace: Trace,
    pub(crate) ledger: AttributionLedger,
    pub(crate) config: SimConfig,
    pub(crate) now: SimTime,
    pub(crate) armed: ArmedSet,
    pub(crate) due_buffer: Vec<QueueEntry>,
    pub(crate) faults: Option<FaultState>,
    pub(crate) monitor: Option<InvariantMonitor>,
    pub(crate) watchdog: Option<OnlineWatchdogConfig>,
    pub(crate) holds: Vec<TaskHold>,
    /// Forced-release counts per app (the quarantine trigger).
    pub(crate) offenses: BTreeMap<String, u32>,
    /// Quarantined apps: when they entered, and their clean-delivery
    /// streak toward probation.
    pub(crate) quarantined: BTreeMap<String, (SimTime, u32)>,
    pub(crate) activation_retries: Vec<RetrySlot>,
    /// Alarms cancelled by an injected crash, waiting for the restart.
    pub(crate) crash_stash: BTreeMap<String, Vec<Alarm>>,
    pub(crate) energy_checked: bool,
    /// While rebooting: when boot completes. Device-local events that
    /// fire during the outage are dead (the power is off).
    pub(crate) down_until: Option<SimTime>,
    /// Per-app registration quotas at the front door, when configured.
    pub(crate) admission: Option<AdmissionController>,
    /// The battery-aware degradation governor, when configured.
    pub(crate) governor: Option<DegradationGovernor>,
    /// Injected registration-storm bursts, indexed by
    /// [`EventKind::StormRegister`]'s `burst`.
    pub(crate) storm: Vec<StormBurst>,
    /// Admission/degradation/storm counters for the report.
    pub(crate) overload: OverloadStats,
    /// In-memory checkpoints captured by [`EventKind::Checkpoint`].
    pub(crate) checkpoints: Vec<Checkpoint>,
    /// Spans, metrics, and placement audits — all driven by the sim
    /// clock, so every export is deterministic (and checkpointed).
    pub(crate) obs: ObsLayer,
    /// Wall-clock self-profiling per engine stage. Deliberately NOT
    /// checkpointed and never part of any deterministic export: it
    /// resets on resume and feeds only the bench harness's timing block.
    pub(crate) stages: StageProfile,
}

impl Simulation {
    /// Creates a simulation with the given policy and configuration.
    pub fn new(policy: Box<dyn AlignmentPolicy>, config: SimConfig) -> Self {
        let monitor = match config.invariants {
            InvariantMode::Off => None,
            InvariantMode::Report => Some(InvariantMonitor::new(config.power.wake_latency, false)),
            InvariantMode::Strict => Some(InvariantMonitor::new(config.power.wake_latency, true)),
        };
        let watchdog = config.online_watchdog;
        let admission = config.admission.map(AdmissionController::new);
        let governor = config.degradation.map(DegradationGovernor::new);
        let obs = if config.obs {
            ObsLayer::new(policy.name(), config.audit_capacity, config.span_capacity)
        } else {
            ObsLayer::disabled(policy.name(), config.audit_capacity, config.span_capacity)
        };
        let audit_enabled = config.obs;
        let mut manager = AlarmManager::new(policy);
        manager.set_audit_enabled(audit_enabled);
        let mut sim = Simulation {
            manager,
            device: Device::new(config.power.clone()),
            events: EventQueue::new(),
            trace: Trace::new(),
            ledger: AttributionLedger::new(config.power.clone()),
            config,
            now: SimTime::ZERO,
            armed: ArmedSet::default(),
            due_buffer: Vec::new(),
            faults: None,
            monitor,
            watchdog,
            holds: Vec::new(),
            offenses: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            activation_retries: Vec::new(),
            crash_stash: BTreeMap::new(),
            energy_checked: false,
            down_until: None,
            admission,
            governor,
            storm: Vec::new(),
            overload: OverloadStats::default(),
            checkpoints: Vec::new(),
            obs,
            stages: StageProfile::new(),
        };
        if sim.config.record_waveform {
            sim.device.attach_monitor();
        }
        let wakes = sim.config.external_wakes.clone();
        for t in wakes {
            sim.schedule_once(EventKind::ExternalWake, t);
        }
        if let Some(every) = sim.config.checkpoint_every {
            sim.schedule_once(EventKind::Checkpoint, SimTime::ZERO + every);
        }
        if let Some(g) = &sim.governor {
            let first = SimTime::ZERO + g.config().check_every;
            sim.schedule_once(EventKind::GovernorTick, first);
        }
        sim
    }

    /// The alarm manager under test.
    pub fn manager(&self) -> &AlarmManager {
        &self.manager
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The delivery trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-app energy attribution ledger.
    pub fn attribution(&self) -> &AttributionLedger {
        &self.ledger
    }

    /// The simulation clock (time processed so far).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The observability layer: deterministic spans, metrics, and
    /// placement-decision audits.
    pub fn obs(&self) -> &ObsLayer {
        &self.obs
    }

    /// Wall-clock self-profiling per engine stage (queue search,
    /// selection, event dispatch, checkpoint I/O). Not deterministic —
    /// never compare it across runs; aggregate it, as the sweep harness
    /// does.
    pub fn stage_profile(&self) -> &StageProfile {
        &self.stages
    }

    /// Registers an alarm with the manager and arms the RTC.
    ///
    /// This is the *only* registration front door: injected storms and
    /// app restarts come through here too, so admission quotas and the
    /// degradation governor see every registration. With admission
    /// configured, an over-quota registration is deferred (its first
    /// deadline slides to the deferral horizon) or rejected with
    /// [`RegisterAlarmError::QuotaExceeded`]; in the critical
    /// degradation tier, deferrable registrations may be shed with
    /// [`RegisterAlarmError::RegistrationShed`].
    ///
    /// # Errors
    ///
    /// Propagates [`RegisterAlarmError`] from the manager, plus the
    /// admission and shedding rejections above.
    pub fn register(&mut self, mut alarm: Alarm) -> Result<AlarmId, RegisterAlarmError> {
        // Quarantine is a per-app sentence: alarms registered while the
        // label is quarantined are demoted too, so re-registering cannot
        // launder an offender back to perceptible.
        if self.quarantined.contains_key(alarm.label()) {
            alarm.set_quarantined(true);
        }
        // Battery-aware shedding: under critical battery the device
        // stops accepting new deferrable work outright. Perceptible
        // registrations always pass this gate.
        if let Some(g) = &self.governor {
            if g.tier() == DegradationTier::Critical
                && g.config().shed_in_critical
                && !alarm.is_perceptible()
            {
                self.overload.shed += 1;
                if self.obs.on() {
                    self.obs.metrics.inc("sim_registrations_shed_total");
                }
                return Err(RegisterAlarmError::RegistrationShed { id: alarm.id() });
            }
        }
        if let Some(ctl) = &mut self.admission {
            let class = if alarm.is_perceptible() {
                AppClass::Perceptible
            } else {
                AppClass::Deferrable
            };
            let t = self.now;
            let outcome = ctl.decide(alarm.label(), class, t);
            if self.obs.on() {
                let key = match outcome.decision {
                    AdmissionDecision::Admit => {
                        "sim_admission_decisions_total{decision=\"admit\"}"
                    }
                    AdmissionDecision::Defer { .. } => {
                        "sim_admission_decisions_total{decision=\"defer\"}"
                    }
                    AdmissionDecision::Reject { .. } => {
                        "sim_admission_decisions_total{decision=\"reject\"}"
                    }
                };
                self.obs.metrics.inc(key);
            }
            if outcome.newly_demoted {
                // A storm offender crossed the demotion threshold: it
                // joins the same quarantine ledger the watchdog uses, so
                // the sentence is sticky across cancel/re-register and
                // the demoted app's alarms turn imperceptible.
                self.overload.demotions += 1;
                let app = alarm.label().to_owned();
                self.manager.set_app_quarantined(&app, true);
                self.quarantined.insert(app.to_string(), (t, 0));
                if self.obs.on() {
                    self.obs.metrics.inc("sim_admission_demotions_total");
                    self.obs
                        .metrics
                        .set_gauge("sim_quarantined_apps", self.quarantined.len() as f64);
                    self.obs.spans.record(
                        SpanKind::WatchdogIntervention,
                        t.as_millis(),
                        t.as_millis(),
                        vec![
                            ("app".into(), app.to_string().into()),
                            ("kind".into(), "admission_demotion".into()),
                        ],
                    );
                }
                self.trace.record_intervention(InterventionRecord {
                    at: t,
                    app: app.to_string(),
                    kind: InterventionKind::Quarantine,
                    overhead_mj: 0.0,
                });
                alarm.set_quarantined(true);
            }
            match outcome.decision {
                AdmissionDecision::Admit => self.overload.admitted += 1,
                AdmissionDecision::Defer { until } => {
                    self.overload.deferred += 1;
                    if until > alarm.nominal() {
                        alarm.reschedule(until);
                    }
                }
                AdmissionDecision::Reject { retry_after } => {
                    self.overload.rejected += 1;
                    return Err(RegisterAlarmError::QuotaExceeded {
                        id: alarm.id(),
                        retry_after,
                    });
                }
            }
        }
        let id = if self.obs.on() {
            let t0 = Instant::now();
            let id = self.manager.register(alarm)?;
            self.stages.add(Stage::Selection, t0.elapsed());
            id
        } else {
            self.manager.register(alarm)?
        };
        self.arm_clocks();
        self.drain_audits();
        Ok(id)
    }

    /// Cancels an alarm mid-run (failure injection: the user disables or
    /// uninstalls an app).
    pub fn cancel(&mut self, id: AlarmId) -> Option<Alarm> {
        let alarm = self.manager.cancel(id);
        self.arm_clocks();
        alarm
    }

    /// Schedules an external wake at `t` (ignored if `t` is in the past).
    pub fn inject_external_wake(&mut self, t: SimTime) {
        if t >= self.now {
            self.schedule_once(EventKind::ExternalWake, t);
        }
    }

    /// Schedules an app re-registration of `id` at `t`: the alarm's
    /// nominal moves one repeating interval past `t` and the alarm is
    /// re-placed while its stale copy is still queued — the §2.1 path
    /// that triggers NATIVE's realignment. Ignored if `t` is in the past,
    /// or (at fire time) if the alarm is not queued or is one-shot.
    pub fn schedule_reregistration(&mut self, t: SimTime, id: AlarmId) {
        if t >= self.now {
            self.events.schedule(t, EventKind::Reregister { id });
        }
    }

    /// Compiles a [`FaultPlan`] into the run: storm arrivals become
    /// external wakes, crashes become scheduled events, the invariant
    /// monitor's slack widens by exactly the plan's declared delay bound,
    /// and per-delivery perturbations (jitter, drops, overruns, leaks,
    /// activation failures) activate. Call before [`run`](Self::run);
    /// injecting a second plan replaces the per-delivery perturbations
    /// but keeps already-scheduled storm/crash events.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for t in plan.storm_arrivals() {
            self.inject_external_wake(t);
        }
        for crash in plan.crashes() {
            if crash.at >= self.now {
                self.events.schedule(
                    crash.at,
                    EventKind::AppCrash {
                        app: crash.app.clone(),
                        restart_after: crash.restart_after,
                    },
                );
            }
        }
        if let Some(m) = &mut self.monitor {
            m.add_slack(plan.delivery_slack());
        }
        self.faults = Some(FaultState::new(plan.clone()));
    }

    /// Compiles a [`RebootPlan`] into the run: each scheduled reboot
    /// becomes an event that kills the simulated device mid-standby, and
    /// the invariant monitor's slack widens by the plan's worst outage
    /// (an alarm due the instant the power dies waits out the whole
    /// outage). Composable with [`inject_faults`](Self::inject_faults).
    pub fn inject_reboots(&mut self, plan: &RebootPlan) {
        for r in plan.reboots() {
            if r.at >= self.now {
                self.schedule_once(EventKind::Reboot { outage: r.outage }, r.at);
            }
        }
        if let Some(m) = &mut self.monitor {
            m.add_slack(plan.delivery_slack());
        }
    }

    /// Compiles a [`RegistrationStormPlan`] into the run: every planned
    /// registration becomes a scheduled event whose alarm will face the
    /// admission-controlled front door at fire time. Registrations whose
    /// instant is already past are dropped. Composable with fault and
    /// reboot plans, and callable more than once.
    pub fn inject_storm(&mut self, plan: &RegistrationStormPlan) {
        for b in &plan.bursts {
            let idx = self.storm.len();
            for k in 0..b.count {
                let at = b.fire_at(k);
                if at >= self.now {
                    self.events
                        .schedule(at, EventKind::StormRegister { burst: idx, k });
                }
            }
            self.storm.push(b.clone());
        }
    }

    /// The admission controller, when one is configured.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// The degradation governor's current tier, when one is configured.
    pub fn degradation_tier(&self) -> Option<DegradationTier> {
        self.governor.as_ref().map(DegradationGovernor::tier)
    }

    /// The checkpoints captured so far (see
    /// [`SimConfig::with_checkpoints`]).
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Captures a crash-consistent checkpoint of the current state on
    /// demand (the periodic capture calls this too).
    pub fn checkpoint(&self) -> Checkpoint {
        crate::checkpoint::capture(self)
    }

    /// Rebuilds a simulation from a checkpoint, resuming exactly where
    /// the capture left off. `policy` must be the same (stateless) policy
    /// the checkpointed run used; a resumed run is byte-identical in
    /// trace and report to the straight-through run.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the policy name does not match
    /// the checkpoint or the snapshot is internally inconsistent.
    pub fn restore(
        policy: Box<dyn AlignmentPolicy>,
        checkpoint: &Checkpoint,
    ) -> Result<Simulation, CheckpointError> {
        crate::checkpoint::restore(policy, checkpoint)
    }

    /// The runtime invariant monitor, if one is attached.
    pub fn invariants(&self) -> Option<&InvariantMonitor> {
        self.monitor.as_ref()
    }

    /// Whether the online watchdog currently has `app` quarantined.
    pub fn is_app_quarantined(&self, app: &str) -> bool {
        self.quarantined.contains_key(app)
    }

    /// Force-releases the wakelocks of *one* app's outstanding tasks at
    /// the current instant, leaving every other task's locks and
    /// attribution untouched (the targeted no-sleep-bug remedy; the
    /// online watchdog calls this internally). Returns `false` if the
    /// app holds nothing right now.
    pub fn force_release_app(&mut self, app: &str) -> bool {
        let now = self.now;
        let held = self
            .holds
            .iter()
            .filter(|h| *h.app == *app && h.until > now)
            .map(|h| now - h.started)
            .max();
        match held {
            Some(held) => {
                self.force_release_app_inner(app, now, held);
                self.arm_sleep();
                true
            }
            None => false,
        }
    }

    /// Runs the simulation to its configured end and returns the report.
    pub fn run(&mut self) -> SimReport {
        let end = SimTime::ZERO + self.config.duration;
        self.run_until(end);
        self.report()
    }

    /// Processes events up to and including `end` (bounded by the
    /// configured duration), leaving the simulation resumable.
    pub fn run_until(&mut self, end: SimTime) {
        let end = end.min(SimTime::ZERO + self.config.duration);
        self.arm_clocks();
        if self.obs.on() {
            self.run_loop::<true>(end);
        } else {
            self.run_loop::<false>(end);
        }
        self.now = self.now.max(end);
        self.device.advance_to(self.now);
        self.ledger.advance_to(self.now, !self.device.is_asleep());
        if !self.energy_checked && self.now >= SimTime::ZERO + self.config.duration {
            self.energy_checked = true;
            if let Some(m) = &mut self.monitor {
                let e = self.device.energy();
                let parts = e.sleep_mj + e.transition_mj + e.awake_base_mj + e.hardware_mj();
                m.check_energy(
                    self.ledger.attributed_mj() + self.ledger.overhead_mj(),
                    e.awake_related_mj(),
                    parts,
                    e.total_mj(),
                );
                // Cross-check the recorded Monsoon waveform against the
                // meter: integrating the trace over the run must land on
                // the meter's total.
                if let Some(tr) = self.device.monitor() {
                    m.check_waveform(tr.energy_mj(self.now), e.total_mj());
                }
            }
        }
    }

    /// The batched event loop, monomorphized over whether the
    /// observability layer is on so the uninstrumented path compiles with
    /// no clock reads at all. Same-instant events are delivered as one
    /// batch: the clock and attribution ledger advance once per distinct
    /// timestamp instead of once per event. The intermediate per-event
    /// `ledger.advance_to` calls of the old loop were zero-elapsed at a
    /// shared timestamp (they only refreshed the awake flag, which the
    /// final same-instant call re-syncs identically), so the trace and
    /// ledger stay byte-identical. Audits still drain per event — span
    /// order is part of the deterministic obs stream.
    ///
    /// `EventDispatch` is recorded as *self* time: handlers time their
    /// own stages (queue search, delivery, checkpoint I/O), and whatever
    /// they accumulated while this batch's clock was running is
    /// subtracted from the batch's elapsed time. The seed profile timed
    /// the whole batch as dispatch, which made `event_dispatch` a
    /// monolith covering >90% of stage time and hid where the loop
    /// actually spent it.
    fn run_loop<const OBS: bool>(&mut self, end: SimTime) {
        while let Some(t) = self.events.next_due(end) {
            self.now = self.now.max(t);
            // Close the attribution segment up to this instant under the
            // state that held during it, then process the whole batch and
            // re-sync.
            self.ledger.advance_to(self.now, !self.device.is_asleep());
            let t0 = if OBS { Some(Instant::now()) } else { None };
            let nested0 = if OBS { self.nested_stage_nanos() } else { 0 };
            let mut dispatched = 0u64;
            while let Some(event) = self.events.pop_at(t) {
                self.disarm(&event.kind, event.time);
                self.handle(event.kind, event.time);
                if OBS {
                    self.drain_audits();
                }
                dispatched += 1;
            }
            if let Some(t0) = t0 {
                let nested = self.nested_stage_nanos() - nested0;
                let self_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(nested);
                self.stages.add_batch(
                    Stage::EventDispatch,
                    std::time::Duration::from_nanos(self_ns),
                    dispatched,
                );
            }
            self.ledger.advance_to(self.now, !self.device.is_asleep());
        }
    }

    /// Nanoseconds accumulated so far by the stages that run *inside* a
    /// dispatch batch; the batch subtracts their growth to report
    /// dispatch self time.
    fn nested_stage_nanos(&self) -> u64 {
        self.stages.nanos(Stage::QueueSearch)
            + self.stages.nanos(Stage::Selection)
            + self.stages.nanos(Stage::Delivery)
            + self.stages.nanos(Stage::CheckpointIo)
    }

    /// The report over the time span processed so far.
    ///
    /// # Panics
    ///
    /// Panics if no time has been processed yet.
    pub fn report(&self) -> SimReport {
        self.try_report().expect("report requested before running")
    }

    /// The report over the time span processed so far, or a typed error
    /// instead of a panic when no time has been processed yet.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ReportBeforeRun`] if the simulation has not
    /// advanced past time zero.
    pub fn try_report(&self) -> Result<SimReport, SimError> {
        let span = self.now - SimTime::ZERO;
        if span.is_zero() {
            return Err(SimError::ReportBeforeRun);
        }
        let mut report =
            SimReport::compute(self.manager.policy_name(), span, &self.trace, &self.device);
        if let Some(m) = &self.monitor {
            report.resilience.invariant_violations = m.violations().len() as u64;
            report.resilience.perceptible_window_misses = m.window_misses();
        }
        report.overload = self.overload.clone();
        if let Some(g) = &self.governor {
            let (saver, critical) = g.time_degraded(self.now);
            report.overload.time_in_saver_ms = saver.as_millis();
            report.overload.time_in_critical_ms = critical.as_millis();
            report.overload.final_tier = g.tier().name().to_owned();
        }
        report.overload.grace_stretch_milli = self.manager.grace_stretch();
        report.metrics_json = if self.obs.on() {
            self.obs.metrics_json()
        } else {
            String::new()
        };
        Ok(report)
    }

    /// Moves every placement decision the manager recorded since the
    /// last drain into the observability layer (a counter bump, a
    /// `policy_place` span, and a slot in the audit ring each).
    fn drain_audits(&mut self) {
        if !self.manager.audit_enabled() {
            return;
        }
        for audit in self.manager.take_audits() {
            self.obs.note_placement(audit);
        }
    }

    fn handle(&mut self, kind: EventKind, t: SimTime) {
        match kind {
            EventKind::RtcAlarm => {
                // If the head is due, wake and deliver (delivery happens at
                // the wake-transition completion if the device was asleep).
                // If the head moved later, re-arm for the new time; do NOT
                // re-arm for a due-but-undelivered head — its WakeComplete
                // event is already pending and will flush it.
                match self.manager.next_wakeup_time() {
                    Some(n) if n <= t => {
                        let dropped = match &mut self.faults {
                            Some(f) => f.drop_fire(n, t),
                            None => None,
                        };
                        if let Some(retry) = dropped {
                            let app = self
                                .manager
                                .wakeup_queue()
                                .entries()
                                .first()
                                .and_then(|e| e.alarms().first())
                                .map(|a| a.label().to_owned())
                                .unwrap_or_default();
                            self.trace.record_intervention(InterventionRecord {
                                at: t,
                                app,
                                kind: InterventionKind::DroppedFireRetry { delay: retry },
                                overhead_mj: 0.0,
                            });
                            self.schedule_once(EventKind::RtcAlarm, t + retry);
                        } else {
                            self.wake_and_deliver(t);
                        }
                    }
                    Some(n) => {
                        let fire = self.rtc_fire_time(n).max(t);
                        self.schedule_once(EventKind::RtcAlarm, fire);
                    }
                    None => {}
                }
            }
            EventKind::ExternalWake => {
                self.wake_and_deliver(t);
            }
            EventKind::Reregister { id } => {
                if let Some(alarm) = self.manager.find_alarm(id) {
                    if let Some(interval) = alarm.repeat().interval() {
                        let mut rescheduled = alarm.clone();
                        rescheduled.reschedule(t + interval);
                        self.manager
                            .register(rescheduled)
                            .expect("rescheduled nominal is in the future");
                        self.arm_clocks();
                    }
                }
            }
            EventKind::WakeComplete => {
                self.device.complete_wake(t);
                if self.device.is_awake() {
                    self.deliver_due(t);
                    self.arm_sleep();
                }
            }
            EventKind::TaskEnd => {
                self.device.release_expired(t);
                self.holds.retain(|h| h.until > t);
                self.arm_sleep();
            }
            EventKind::TrySleep => {
                if self.device.try_sleep(t) {
                    self.obs.wake_ended(t);
                }
            }
            EventKind::NonWakeupCheck => {
                if self.device.is_awake() {
                    self.deliver_due(t);
                    self.arm_sleep();
                } else if let Some(n) = self.manager.non_wakeup_queue().next_delivery_time() {
                    // Head moved later: re-arm. A due head is left alone —
                    // the next wakeup's delivery pass flushes it (§2.1).
                    if n > t {
                        self.schedule_once(EventKind::NonWakeupCheck, n);
                    }
                }
            }
            EventKind::WatchdogCheck => {
                self.watchdog_check(t);
            }
            EventKind::ActivationRetry { slot } => {
                self.activation_retry(slot, t);
            }
            EventKind::AppCrash { app, restart_after } => {
                let cancelled = self.manager.cancel_app(&app);
                let count = cancelled.len();
                self.crash_stash
                    .entry(app.clone())
                    .or_default()
                    .extend(cancelled);
                self.trace.record_intervention(InterventionRecord {
                    at: t,
                    app: app.clone(),
                    kind: InterventionKind::AppCrash { cancelled: count },
                    overhead_mj: 0.0,
                });
                self.events
                    .schedule(t + restart_after, EventKind::AppRestart { app });
                self.arm_clocks();
            }
            EventKind::AppRestart { app } => {
                let stash = self.crash_stash.remove(&app).unwrap_or_default();
                let mut reregistered = 0;
                for mut alarm in stash {
                    if alarm.nominal() < t {
                        // Advance the schedule past the outage; a one-shot
                        // whose moment passed during the crash is lost, as
                        // it would be on a real phone.
                        if !alarm.advance_after_delivery(t) {
                            continue;
                        }
                    }
                    if self.quarantined.contains_key(&app) {
                        alarm.set_quarantined(true);
                    }
                    self.manager
                        .register(alarm)
                        .expect("restart nominal is in the future");
                    reregistered += 1;
                }
                self.trace.record_intervention(InterventionRecord {
                    at: t,
                    app: app.to_string(),
                    kind: InterventionKind::AppRestart { reregistered },
                    overhead_mj: 0.0,
                });
                self.arm_clocks();
            }
            EventKind::Reboot { outage } => {
                self.reboot(t, outage);
            }
            EventKind::BootComplete => {
                self.boot_complete(t);
            }
            EventKind::Checkpoint => {
                // Arm the next capture first so the snapshot's event
                // queue already carries it — a run resumed from this
                // checkpoint keeps checkpointing on schedule.
                if let Some(every) = self.config.checkpoint_every {
                    let next = t + every;
                    if next <= SimTime::ZERO + self.config.duration {
                        self.schedule_once(EventKind::Checkpoint, next);
                    }
                }
                // Count and span the capture *before* capturing, so the
                // snapshot itself carries them: a resumed run and the
                // straight-through run then agree byte-for-byte.
                if self.obs.on() {
                    self.obs.metrics.inc("sim_checkpoints_total");
                    self.obs.spans.record(
                        SpanKind::CheckpointWrite,
                        t.as_millis(),
                        t.as_millis(),
                        Vec::new(),
                    );
                    let t0 = Instant::now();
                    let snapshot = crate::checkpoint::capture(self);
                    self.stages.add(Stage::CheckpointIo, t0.elapsed());
                    self.checkpoints.push(snapshot);
                } else {
                    let snapshot = crate::checkpoint::capture(self);
                    self.checkpoints.push(snapshot);
                }
            }
            EventKind::GovernorTick => {
                self.governor_tick(t);
            }
            EventKind::StormRegister { burst, k: _ } => {
                self.storm_register(burst, t);
            }
        }
    }

    /// The degradation governor samples the meter and shifts tier when
    /// the state of charge crossed a hysteresis threshold.
    fn governor_tick(&mut self, t: SimTime) {
        let Some(cfg) = self.governor.as_ref().map(|g| *g.config()) else {
            return;
        };
        // Arm the next tick first so a checkpoint captured between the
        // two carries it (mirrors the Checkpoint event's own re-arm).
        let next = t + cfg.check_every;
        if next <= SimTime::ZERO + self.config.duration {
            self.schedule_once(EventKind::GovernorTick, next);
        }
        // Settle the meter through this instant so the sampled spend is
        // exact (idempotent; the run loop advances it anyway).
        self.device.advance_to(t);
        let spent = self.device.energy().total_mj();
        let g = self.governor.as_mut().expect("governor checked above");
        let soc = g.soc_milli(spent);
        let from = g.tier();
        let target = g.target_tier(soc);
        if self.obs.on() {
            self.obs
                .metrics
                .set_gauge("sim_battery_soc_milli", f64::from(soc));
        }
        if target == from {
            return;
        }
        g.transition(target, t);
        self.overload.tier_changes += 1;
        let restamped = self.manager.set_grace_stretch(cfg.stretch_for(target));
        if self.obs.on() {
            self.obs.metrics.inc("sim_degradation_transitions_total");
            self.obs.metrics.set_gauge("sim_degradation_tier", target.gauge());
            self.obs.spans.record(
                SpanKind::DegradationTransition,
                t.as_millis(),
                t.as_millis(),
                vec![
                    ("from".into(), from.name().to_owned().into()),
                    ("to".into(), target.name().to_owned().into()),
                    ("soc_milli".into(), soc.to_string().into()),
                    ("restamped".into(), restamped.to_string().into()),
                ],
            );
        }
        // Restamping re-placed every queued imperceptible alarm; the
        // wakeup head may have moved either direction.
        self.drain_audits();
        self.arm_clocks();
    }

    /// One planned storm registration fires: build the burst's alarm and
    /// push it through the admission-controlled front door. The outcome
    /// (admit/defer/reject/shed) is counted there; a rejection is the
    /// expected behavior under quota, not an error of the run.
    fn storm_register(&mut self, burst: usize, t: SimTime) {
        let Some(b) = self.storm.get(burst).cloned() else {
            return;
        };
        self.overload.storm_registrations += 1;
        if self.obs.on() {
            self.obs.metrics.inc("sim_storm_registrations_total");
        }
        let _ = self.register(b.build_alarm(t));
    }

    /// Kills the simulated device at `t`: every wakelock, in-flight
    /// task, and pending retry dies with the power. Device-local events
    /// are purged from the queue; app/system-level events survive,
    /// deferred to boot completion when they land inside the outage.
    fn reboot(&mut self, t: SimTime, outage: SimDuration) {
        let boot_at = t + outage;
        self.device.reboot(t);
        // The power died: whatever wake cycle was open ends here.
        self.obs.wake_ended(t);
        self.holds.clear();
        for slot in &mut self.activation_retries {
            slot.done = true;
        }
        self.ledger.drop_all_tasks(t);
        // Rebuild the event queue. RTC fires, wake transitions, task
        // ends, sleep attempts, watchdog checks, and activation retries
        // referenced state that no longer exists; external wakes during
        // the outage hit a powered-off radio and are lost.
        let (pending, _) = self.events.snapshot();
        self.events = EventQueue::new();
        self.armed.clear();
        for ev in pending {
            match ev.kind {
                EventKind::Reboot { .. } | EventKind::BootComplete | EventKind::Checkpoint => {
                    self.schedule_once(ev.kind, ev.time);
                }
                EventKind::ExternalWake if ev.time >= boot_at => {
                    self.schedule_once(ev.kind, ev.time);
                }
                EventKind::Reregister { .. }
                | EventKind::AppCrash { .. }
                | EventKind::AppRestart { .. }
                | EventKind::StormRegister { .. } => {
                    // The OS (or the storming app) replays these once it
                    // is back up.
                    self.events.schedule(ev.time.max(boot_at), ev.kind);
                }
                EventKind::GovernorTick => {
                    // The governor resumes its cadence at boot.
                    self.schedule_once(ev.kind, ev.time.max(boot_at));
                }
                _ => {}
            }
        }
        self.down_until = Some(boot_at);
        self.trace.record_intervention(InterventionRecord {
            at: t,
            app: "device".to_owned(),
            kind: InterventionKind::Reboot { outage },
            overhead_mj: 0.0,
        });
        self.schedule_once(EventKind::BootComplete, boot_at);
    }

    /// Boot finished: account the missed-alarm catch-up, then wake and
    /// deliver everything that came due during the outage (apps
    /// re-register at boot, so the queues are intact).
    fn boot_complete(&mut self, t: SimTime) {
        match self.down_until {
            // A later reboot superseded this boot while we were down.
            Some(du) if t < du => return,
            _ => {}
        }
        self.down_until = None;
        let mut caught_up = 0usize;
        let mut worst_delay = SimDuration::ZERO;
        for entry in self.manager.wakeup_queue().entries() {
            let due = entry.delivery_time();
            if due <= t {
                caught_up += 1;
                worst_delay = worst_delay.max(t - due);
            }
        }
        self.trace.record_intervention(InterventionRecord {
            at: t,
            app: "device".to_owned(),
            kind: InterventionKind::BootCatchUp {
                caught_up,
                worst_delay,
            },
            overhead_mj: 0.0,
        });
        // Boot itself powers the device up — the catch-up deliveries (if
        // any) ride the boot transition.
        self.wake_and_deliver(t);
    }

    /// Inspects outstanding holds; any hold older than the watchdog's
    /// budget gets its app force-released, and repeat offenders are
    /// quarantined.
    fn watchdog_check(&mut self, t: SimTime) {
        let Some(cfg) = self.watchdog else { return };
        self.holds.retain(|h| h.until > t);
        let mut offenders: BTreeSet<Arc<str>> = BTreeSet::new();
        for h in &self.holds {
            if t >= h.started + cfg.policy.max_task_hold {
                offenders.insert(h.app.clone());
            }
        }
        for app in offenders {
            let held = self
                .holds
                .iter()
                .filter(|h| h.app == app)
                .map(|h| t - h.started)
                .max()
                .unwrap_or(SimDuration::ZERO);
            self.force_release_app_inner(&app, t, held);
            let offenses = self.offenses.entry(app.to_string()).or_insert(0);
            *offenses += 1;
            if *offenses >= cfg.quarantine_after && !self.quarantined.contains_key(&*app) {
                self.manager.set_app_quarantined(&app, true);
                self.quarantined.insert(app.to_string(), (t, 0));
                if self.obs.on() {
                    self.obs.metrics.inc("sim_watchdog_quarantines_total");
                    self.obs
                        .metrics
                        .set_gauge("sim_quarantined_apps", self.quarantined.len() as f64);
                    self.obs.spans.record(
                        SpanKind::WatchdogIntervention,
                        t.as_millis(),
                        t.as_millis(),
                        vec![
                            ("app".into(), app.to_string().into()),
                            ("kind".into(), "quarantine".into()),
                        ],
                    );
                }
                self.trace.record_intervention(InterventionRecord {
                    at: t,
                    app: app.to_string(),
                    kind: InterventionKind::Quarantine,
                    overhead_mj: 0.0,
                });
            }
        }
        self.arm_clocks();
        self.arm_sleep();
    }

    /// The shared core of the targeted release: drop the offender's
    /// holds, rescope the device's wakelocks to the surviving claims,
    /// stop attributing the offender, and record the intervention.
    fn force_release_app_inner(&mut self, app: &str, now: SimTime, held: SimDuration) {
        self.holds.retain(|h| *h.app != *app && h.until > now);
        let survivors: Vec<(HardwareSet, SimTime)> = self
            .holds
            .iter()
            .map(|h| (h.hardware, h.until))
            .collect();
        self.device.rescope_holds(&survivors, now);
        self.ledger.drop_app_tasks(app, now);
        for slot in &mut self.activation_retries {
            if *slot.app == *app {
                slot.done = true;
            }
        }
        if self.obs.on() {
            self.obs.metrics.inc("sim_watchdog_forced_releases_total");
            self.obs.spans.record(
                SpanKind::WatchdogIntervention,
                (now - held).as_millis(),
                now.as_millis(),
                vec![
                    ("app".into(), app.to_owned().into()),
                    ("kind".into(), "forced_release".into()),
                ],
            );
        }
        self.trace.record_intervention(InterventionRecord {
            at: now,
            app: app.to_owned(),
            kind: InterventionKind::ForcedRelease { held },
            overhead_mj: 0.0,
        });
    }

    /// Retries a transiently-failed hardware activation.
    fn activation_retry(&mut self, slot: usize, t: SimTime) {
        let Some(s) = self.activation_retries.get(slot).cloned() else {
            return;
        };
        if s.done {
            return;
        }
        if s.until <= t {
            // The task ended before its hardware ever powered up.
            self.activation_retries[slot].done = true;
            return;
        }
        // The retry needs the device awake; if it went back to sleep, the
        // retry itself pays a wake transition (intervention overhead).
        let wakeups_before = self.device.wake_count();
        let ready = self.device.request_wake(t);
        if self.device.wake_count() > wakeups_before {
            self.trace.record_wakeup(t);
            self.ledger.note_wake_transition();
            self.obs.wake_started(t);
            self.activation_retries[slot].overhead_mj +=
                self.config.power.wake_transition_energy_mj;
        }
        if !self.device.is_awake() {
            self.schedule_once(EventKind::WakeComplete, ready);
            self.events.schedule(ready, EventKind::ActivationRetry { slot });
            return;
        }
        let fails = match &mut self.faults {
            Some(f) => f.activation_fails(s.attempt),
            None => None,
        };
        match fails {
            Some(backoff) => {
                self.activation_retries[slot].attempt += 1;
                self.events
                    .schedule(t + backoff, EventKind::ActivationRetry { slot });
            }
            None => {
                let newly = self.device.run_task(s.hardware, s.until - t, t);
                // batch size 0: the retry claims no share of the original
                // delivery's wake transition (already attributed).
                self.ledger.start_task(&s.app, s.hardware, s.until, newly, 0);
                self.schedule_once(EventKind::TaskEnd, s.until);
                let done = &mut self.activation_retries[slot];
                done.done = true;
                let overhead_mj = done.overhead_mj;
                let attempt = done.attempt;
                self.trace.record_intervention(InterventionRecord {
                    at: t,
                    app: s.app.to_string(),
                    kind: InterventionKind::ActivationRetry { attempt },
                    overhead_mj,
                });
                self.arm_sleep();
            }
        }
    }

    /// A quarantined app delivered; within-budget holds count toward its
    /// probation, an over-budget hold resets the streak.
    fn note_clean_delivery(&mut self, app: &str, hold: SimDuration, t: SimTime) {
        let Some(cfg) = self.watchdog else { return };
        let Some((since, clean)) = self.quarantined.get_mut(app) else {
            return;
        };
        if hold > cfg.policy.max_task_hold {
            *clean = 0;
            return;
        }
        *clean += 1;
        if *clean < cfg.probation {
            return;
        }
        let quarantined_for = t - *since;
        self.quarantined.remove(app);
        self.offenses.remove(app);
        self.manager.set_app_quarantined(app, false);
        if self.obs.on() {
            self.obs.metrics.inc("sim_watchdog_recoveries_total");
            self.obs
                .metrics
                .set_gauge("sim_quarantined_apps", self.quarantined.len() as f64);
        }
        self.trace.record_intervention(InterventionRecord {
            at: t,
            app: app.to_owned(),
            kind: InterventionKind::Recovery { quarantined_for },
            overhead_mj: 0.0,
        });
    }

    /// The RTC fire instant for a head nominally due at `head`:
    /// jitter-shifted when a fault plan injects RTC jitter. Pure in
    /// `head`, so repeated arming stays dedup-friendly.
    fn rtc_fire_time(&self, head: SimTime) -> SimTime {
        match &self.faults {
            Some(f) => head + f.jitter_for(head),
            None => head,
        }
    }

    /// Wakes the device (if needed) and delivers everything due; if a
    /// transition is pending, delivery happens at its completion.
    fn wake_and_deliver(&mut self, t: SimTime) {
        let wakeups_before = self.device.wake_count();
        let ready = self.device.request_wake(t);
        if self.device.wake_count() > wakeups_before {
            self.trace.record_wakeup(t);
            self.ledger.note_wake_transition();
            self.obs.wake_started(t);
        }
        if self.device.is_awake() {
            self.deliver_due(t);
            self.arm_sleep();
        } else {
            self.schedule_once(EventKind::WakeComplete, ready);
        }
    }

    /// Delivers every due wakeup and non-wakeup entry at `t`. Loops
    /// because NATIVE's realignment on reinsert can re-batch pending
    /// alarms into entries that become due immediately.
    fn deliver_due(&mut self, t: SimTime) {
        debug_assert!(self.device.is_awake());
        for _round in 0..64 {
            // Reuse one buffer across rounds and calls: most rounds pop
            // zero or one entry, so a fresh Vec per round is pure churn.
            let mut entries = std::mem::take(&mut self.due_buffer);
            entries.clear();
            if self.obs.on() {
                let t0 = Instant::now();
                self.manager.pop_due_wakeup_into(t, &mut entries);
                self.manager.pop_due_non_wakeup_into(t, &mut entries);
                self.stages.add(Stage::QueueSearch, t0.elapsed());
            } else {
                self.manager.pop_due_wakeup_into(t, &mut entries);
                self.manager.pop_due_non_wakeup_into(t, &mut entries);
            }
            if entries.is_empty() {
                self.due_buffer = entries;
                break;
            }
            let t0 = if self.obs.on() { Some(Instant::now()) } else { None };
            let batch = entries.len() as u64;
            for entry in entries.drain(..) {
                self.trace.record_entry_delivery();
                let alarms = entry.into_alarms();
                let entry_size = alarms.len();
                self.obs.entry_delivered(entry_size);
                for alarm in alarms {
                    self.deliver_alarm(alarm, t, entry_size);
                }
            }
            if let Some(t0) = t0 {
                self.stages.add_batch(Stage::Delivery, t0.elapsed(), batch);
            }
            self.due_buffer = entries;
        }
        self.obs
            .queue_depth(self.manager.wakeup_queue().entries().len());
        if let Some(m) = self.monitor.as_mut() {
            m.check_queue_order(
                self.manager
                    .wakeup_queue()
                    .entries()
                    .iter()
                    .map(QueueEntry::delivery_time),
            );
        }
        self.arm_clocks();
    }

    /// Delivers one alarm at `t`: draws this delivery's faults (overrun,
    /// leak, activation failure), runs the task, attributes it, tracks
    /// the hold for the watchdog, and checks the perceptible-window
    /// invariant.
    fn deliver_alarm(&mut self, alarm: Alarm, t: SimTime, entry_size: usize) {
        let quarantined = alarm.is_quarantined();
        // One shared label for the ledger, the retry/hold bookkeeping,
        // and the trace: every per-delivery "clone" below is a refcount
        // bump, not a string copy.
        let label = alarm.label_arc();
        let (overrun, leak, failure) = match &mut self.faults {
            Some(f) => {
                let overrun = f.overrun();
                let leak = f.leak();
                let failure = if alarm.hardware().is_empty() {
                    None
                } else {
                    f.activation_fails(0)
                };
                (overrun, leak, failure)
            }
            None => (SimDuration::ZERO, SimDuration::ZERO, None),
        };
        let cpu_until = t + alarm.task_duration() + overrun;
        let hold_until = cpu_until + leak;

        let mut rec = DeliveryRecord::observe(&alarm, t, entry_size);
        rec.task_duration = hold_until - t;
        if alarm.kind() == AlarmKind::Wakeup {
            if let Some(m) = &mut self.monitor {
                m.check_delivery(&rec, quarantined);
            }
        }
        if self.obs.on() {
            self.obs
                .alarm_delivered(rec.normalized_delay(), (hold_until - t).as_millis());
            for c in alarm.hardware().iter() {
                self.obs
                    .component_active(c.name(), (hold_until - t).as_millis());
            }
            self.obs.spans.record(
                SpanKind::TaskRun,
                t.as_millis(),
                hold_until.as_millis(),
                vec![
                    ("app".into(), Arc::clone(&label).into()),
                    ("entry_size".into(), entry_size.into()),
                ],
            );
        }
        self.trace.record_delivery(rec);

        match failure {
            Some(backoff) => {
                // The CPU part of the task runs, but the hardware fails
                // to power up; a retry slot takes over.
                let _ = self.device.run_task(HardwareSet::empty(), hold_until - t, t);
                self.ledger.start_task(
                    &label,
                    HardwareSet::empty(),
                    hold_until,
                    HardwareSet::empty(),
                    entry_size,
                );
                let slot = self.activation_retries.len();
                self.activation_retries.push(RetrySlot {
                    app: Arc::clone(&label),
                    hardware: alarm.hardware(),
                    until: hold_until,
                    attempt: 1,
                    done: false,
                    overhead_mj: 0.0,
                });
                self.events
                    .schedule(t + backoff, EventKind::ActivationRetry { slot });
            }
            None => {
                let newly = self.device.run_task(alarm.hardware(), cpu_until - t, t);
                self.ledger.start_task(
                    &label,
                    alarm.hardware(),
                    hold_until,
                    newly,
                    entry_size,
                );
                if hold_until > cpu_until {
                    // Leak: the hardware locks outlive the task's CPU time.
                    self.device.leak_locks(alarm.hardware(), hold_until, t);
                }
            }
        }
        self.schedule_once(EventKind::TaskEnd, cpu_until);
        if hold_until > cpu_until {
            self.schedule_once(EventKind::TaskEnd, hold_until);
        }
        self.holds.push(TaskHold {
            app: Arc::clone(&label),
            hardware: alarm.hardware(),
            started: t,
            until: hold_until,
        });
        if let Some(cfg) = &self.watchdog {
            if hold_until - t > cfg.policy.max_task_hold {
                self.schedule_once(EventKind::WatchdogCheck, t + cfg.policy.max_task_hold);
            }
        }
        self.manager.complete_delivery(alarm, t);
        if quarantined {
            self.note_clean_delivery(&label, hold_until - t, t);
        }
    }

    /// Arms RTC and non-wakeup check events for the current queue heads.
    fn arm_clocks(&mut self) {
        if let Some(t) = self.manager.next_wakeup_time() {
            let fire = self.rtc_fire_time(t).max(self.now);
            self.schedule_once(EventKind::RtcAlarm, fire);
        }
        if let Some(t) = self.manager.non_wakeup_queue().next_delivery_time() {
            self.schedule_once(EventKind::NonWakeupCheck, t.max(self.now));
        }
    }

    /// Arms a sleep attempt at the device's earliest allowed sleep time.
    fn arm_sleep(&mut self) {
        if let Some(t) = self.device.earliest_sleep_time() {
            self.schedule_once(EventKind::TrySleep, t.max(self.now));
        }
    }

    fn schedule_once(&mut self, kind: EventKind, t: SimTime) {
        if self.armed.insert((Self::tag(&kind), t.as_millis())) {
            self.events.schedule(t, kind);
        }
    }

    fn disarm(&mut self, kind: &EventKind, t: SimTime) {
        self.armed.remove(&(Self::tag(kind), t.as_millis()));
    }

    fn tag(kind: &EventKind) -> u8 {
        match kind {
            EventKind::RtcAlarm => 0,
            EventKind::WakeComplete => 1,
            EventKind::TaskEnd => 2,
            EventKind::TrySleep => 3,
            EventKind::NonWakeupCheck => 4,
            EventKind::ExternalWake => 5,
            // Reregister/retry/crash/restart events are scheduled directly
            // (never deduped), but still need stable tags for the disarm
            // bookkeeping.
            EventKind::Reregister { .. } => 6,
            EventKind::WatchdogCheck => 7,
            EventKind::ActivationRetry { .. } => 8,
            EventKind::AppCrash { .. } => 9,
            EventKind::AppRestart { .. } => 10,
            EventKind::Reboot { .. } => 11,
            EventKind::BootComplete => 12,
            EventKind::Checkpoint => 13,
            EventKind::GovernorTick => 14,
            // StormRegister events are scheduled directly (two distinct
            // (burst, k) registrations may share an instant, which the
            // dedup key cannot tell apart).
            EventKind::StormRegister { .. } => 15,
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("policy", &self.manager.policy_name())
            .field("now", &self.now)
            .field("pending_events", &self.events.len())
            .field("deliveries", &self.trace.deliveries().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simty_core::alarm::AlarmKind;
    use simty_core::hardware::HardwareComponent;
    use simty_core::policy::{ExactPolicy, NativePolicy, SimtyPolicy};
    use simty_core::time::SimDuration;

    fn wifi_alarm(label: &str, nominal_s: u64, repeat_s: u64, alpha: f64, beta: f64) -> Alarm {
        Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(repeat_s))
            .window_fraction(alpha)
            .grace_fraction(beta)
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(2))
            .build()
            .unwrap()
    }

    fn ten_minute_sim(policy: Box<dyn AlignmentPolicy>) -> Simulation {
        Simulation::new(
            policy,
            SimConfig::new().with_duration(SimDuration::from_mins(10)),
        )
    }

    #[test]
    fn single_repeating_alarm_is_delivered_every_period() {
        let mut sim = ten_minute_sim(Box::new(ExactPolicy::new()));
        sim.register(wifi_alarm("a", 30, 60, 0.0, 0.5)).unwrap();
        let report = sim.run();
        // Nominal deliveries at 30, 90, ..., 570 -> 10 deliveries (a
        // nominal at 600 would wake at the boundary but complete after it).
        assert_eq!(report.total_deliveries, 10);
        assert_eq!(report.cpu_wakeups, 10);
        // Each delivery is slightly late by the wake latency.
        for d in sim.trace().deliveries() {
            assert_eq!(
                d.delivered_at,
                d.nominal + SimDuration::from_millis(250),
                "delivery at wake-transition completion"
            );
        }
    }

    #[test]
    fn deliveries_never_exceed_grace_under_simty() {
        let mut sim = ten_minute_sim(Box::new(SimtyPolicy::new()));
        sim.register(wifi_alarm("a", 60, 60, 0.0, 0.9)).unwrap();
        sim.register(wifi_alarm("b", 90, 120, 0.25, 0.9)).unwrap();
        sim.run();
        let latency = SimDuration::from_millis(250);
        for d in sim.trace().deliveries() {
            assert!(
                d.delivered_at <= d.grace_end + latency,
                "{d} exceeded grace {}",
                d.grace_end
            );
        }
    }

    #[test]
    fn aligned_alarms_wake_the_device_less() {
        // Two identical-period alarms, offset by half a period. EXACT wakes
        // twice per period; SIMTY (β = 0.9) aligns them into one wakeup.
        let run = |policy: Box<dyn AlignmentPolicy>| {
            let mut sim = ten_minute_sim(policy);
            sim.register(wifi_alarm("a", 60, 120, 0.0, 0.9)).unwrap();
            sim.register(wifi_alarm("b", 120, 120, 0.0, 0.9)).unwrap();
            sim.run()
        };
        let exact = run(Box::new(ExactPolicy::new()));
        let simty = run(Box::new(SimtyPolicy::new()));
        assert!(simty.cpu_wakeups < exact.cpu_wakeups);
        assert!(simty.energy.total_mj() < exact.energy.total_mj());
    }

    #[test]
    fn non_wakeup_alarm_waits_for_a_wakeup() {
        let mut sim = ten_minute_sim(Box::new(NativePolicy::new()));
        let nw = Alarm::builder("nw")
            .nominal(SimTime::from_secs(30))
            .repeating_static(SimDuration::from_secs(300))
            .kind(AlarmKind::NonWakeup)
            .task_duration(SimDuration::from_secs(1))
            .build()
            .unwrap();
        sim.register(nw).unwrap();
        sim.register(wifi_alarm("w", 100, 300, 0.0, 0.5)).unwrap();
        sim.run();
        let nw_delivery = sim
            .trace()
            .deliveries()
            .iter()
            .find(|d| &*d.label == "nw")
            .expect("non-wakeup alarm delivered");
        // Due at 30 s but the device first wakes at 100 s.
        assert!(nw_delivery.delivered_at >= SimTime::from_secs(100));
    }

    #[test]
    fn non_wakeup_alarm_delivers_promptly_while_awake() {
        let mut sim = ten_minute_sim(Box::new(NativePolicy::new()));
        // A long task keeps the device awake from 60 s to 90 s.
        let mut long_task = wifi_alarm("long", 60, 400, 0.0, 0.5);
        long_task = Alarm::builder(long_task.label())
            .nominal(SimTime::from_secs(60))
            .repeating_static(SimDuration::from_secs(400))
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(30))
            .build()
            .unwrap();
        sim.register(long_task).unwrap();
        let nw = Alarm::builder("nw")
            .nominal(SimTime::from_secs(70))
            .repeating_static(SimDuration::from_secs(400))
            .kind(AlarmKind::NonWakeup)
            .task_duration(SimDuration::from_secs(1))
            .build()
            .unwrap();
        sim.register(nw).unwrap();
        sim.run();
        let nw_delivery = sim
            .trace()
            .deliveries()
            .iter()
            .find(|d| &*d.label == "nw")
            .expect("delivered");
        assert_eq!(nw_delivery.delivered_at, SimTime::from_secs(70));
    }

    #[test]
    fn external_wake_flushes_due_non_wakeup_alarms() {
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(10))
            .with_external_wakes([SimTime::from_secs(200)]);
        let mut sim = Simulation::new(Box::new(NativePolicy::new()), config);
        let nw = Alarm::builder("nw")
            .nominal(SimTime::from_secs(30))
            .repeating_static(SimDuration::from_secs(900))
            .kind(AlarmKind::NonWakeup)
            .build()
            .unwrap();
        sim.register(nw).unwrap();
        let report = sim.run();
        let d = &sim.trace().deliveries()[0];
        // Delivered when the external event wakes the device (plus latency).
        assert_eq!(d.delivered_at, SimTime::from_millis(200_250));
        assert_eq!(report.cpu_wakeups, 1);
    }

    #[test]
    fn device_sleeps_between_wakeups() {
        let mut sim = ten_minute_sim(Box::new(ExactPolicy::new()));
        sim.register(wifi_alarm("a", 60, 120, 0.0, 0.5)).unwrap();
        let report = sim.run();
        // Deliveries at 60, 180, 300, 420, 540:
        // 5 × (0.25 latency + 2 task + 0.25 linger) = 12.5 s awake.
        let awake = report.awake_time.as_secs_f64();
        assert!((awake - 12.5).abs() < 0.01, "awake {awake}");
        // Sleep energy accrues for the rest.
        assert!(report.energy.sleep_mj > 0.0);
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let mut sim = ten_minute_sim(Box::new(SimtyPolicy::new()));
            sim.register(wifi_alarm("a", 60, 60, 0.0, 0.9)).unwrap();
            sim.register(wifi_alarm("b", 90, 120, 0.25, 0.9)).unwrap();
            let r = sim.run();
            (
                r.total_deliveries,
                r.cpu_wakeups,
                r.energy.total_mj().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn staged_runs_resume_cleanly() {
        let mut sim = ten_minute_sim(Box::new(ExactPolicy::new()));
        sim.register(wifi_alarm("a", 60, 60, 0.0, 0.5)).unwrap();
        sim.run_until(SimTime::from_secs(300));
        let halfway = sim.trace().deliveries().len();
        assert_eq!(halfway, 4); // 60, 120, 180, 240 delivered; 300 pending
        sim.run_until(SimTime::from_secs(600));
        assert_eq!(sim.trace().deliveries().len(), 9);
    }

    #[test]
    fn cancel_stops_future_deliveries() {
        let mut sim = ten_minute_sim(Box::new(ExactPolicy::new()));
        let id = sim.register(wifi_alarm("a", 60, 60, 0.0, 0.5)).unwrap();
        sim.run_until(SimTime::from_secs(150));
        // Delivered at 60 and 120; the same id is re-queued for 180.
        assert_eq!(sim.trace().deliveries().len(), 2);
        assert!(sim.cancel(id).is_some());
        sim.run_until(SimTime::from_secs(600));
        assert_eq!(sim.trace().deliveries().len(), 2);
    }

    #[test]
    fn online_watchdog_releases_the_offender_and_spares_bystanders() {
        use crate::watchdog::OnlineWatchdogConfig;
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(10))
            .with_online_watchdog(OnlineWatchdogConfig::default());
        let mut sim = Simulation::new(Box::new(ExactPolicy::new()), config);
        // The buggy app holds Wi-Fi for 5 minutes; the watchdog budget is
        // 60 s, so it is cut at 60 + 60 s.
        sim.register(
            Alarm::builder("nosleep")
                .nominal(SimTime::from_secs(60))
                .repeating_static(SimDuration::from_secs(450))
                .hardware(HardwareComponent::Wifi.into())
                .task_duration(SimDuration::from_secs(300))
                .build()
                .unwrap(),
        )
        .unwrap();
        // A bystander delivered at 90 s holds GPS for 40 s (within budget).
        sim.register(
            Alarm::builder("bystander")
                .nominal(SimTime::from_secs(90))
                .repeating_static(SimDuration::from_secs(450))
                .hardware(HardwareComponent::Gps.into())
                .task_duration(SimDuration::from_secs(40))
                .build()
                .unwrap(),
        )
        .unwrap();
        let report = sim.run();
        // Deliveries at 60 s and 510 s each overrun the 60 s budget.
        assert_eq!(report.resilience.forced_releases, 2);
        let release = sim
            .trace()
            .interventions()
            .iter()
            .find(|i| matches!(i.kind, InterventionKind::ForcedRelease { .. }))
            .unwrap();
        assert_eq!(release.app, "nosleep");
        // Cut at delivery (60 s + 250 ms latency) + 60 s budget.
        assert_eq!(release.at, SimTime::from_millis(120_250));
        // The bystander's GPS hold ran its full 40 s: attribution kept it.
        let per_app = sim.attribution().per_app_mj();
        assert!(per_app.contains_key("bystander"));
        // The offender's awake time was cut: the device slept well before
        // the 300 s hold would have ended.
        assert!(report.awake_time < SimDuration::from_secs(200));
    }

    #[test]
    fn repeat_offender_is_quarantined_then_recovers_after_probation() {
        use crate::watchdog::{OnlineWatchdogConfig, WatchdogPolicy};
        let config = SimConfig::new()
            .with_duration(SimDuration::from_hours(2))
            .with_online_watchdog(OnlineWatchdogConfig {
                policy: WatchdogPolicy {
                    max_task_hold: SimDuration::from_secs(60),
                    max_duty_cycle: 0.10,
                },
                quarantine_after: 2,
                probation: 3,
            });
        let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), config);
        // A 90 s task offends on every delivery (budget: 60 s). Two
        // offenses quarantine it; the app then "ships a fix" (cancel +
        // re-register with a sane duration) and must earn its way out
        // through three clean deliveries.
        let buggy_id = sim
            .register(
                Alarm::builder("buggy")
                    .nominal(SimTime::from_secs(60))
                    .repeating_static(SimDuration::from_secs(300))
                    .hardware(HardwareComponent::Wifi.into())
                    .task_duration(SimDuration::from_secs(90))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        // Offense 1 at ~120 s, offense 2 at ~420 s -> quarantined.
        sim.run_until(SimTime::from_secs(500));
        assert!(sim.is_app_quarantined("buggy"));
        // The app ships a fix: same label, sane 5 s task.
        sim.cancel(buggy_id);
        sim.register(
            Alarm::builder("buggy")
                .nominal(SimTime::from_secs(600))
                .repeating_static(SimDuration::from_secs(300))
                .hardware(HardwareComponent::Wifi.into())
                .task_duration(SimDuration::from_secs(5))
                .build()
                .unwrap(),
        )
        .unwrap();
        let report = sim.run();
        assert!(!sim.is_app_quarantined("buggy"));
        assert_eq!(report.resilience.quarantines, 1);
        assert_eq!(report.resilience.recoveries, 1);
        assert!(report.resilience.mean_time_to_recovery_ms > 0.0);
        let recovery = sim
            .trace()
            .interventions()
            .iter()
            .find(|i| matches!(i.kind, InterventionKind::Recovery { .. }))
            .unwrap();
        assert_eq!(recovery.app, "buggy");
    }

    #[test]
    fn faulty_run_reaches_the_end_with_zero_violations_under_strict_invariants() {
        use crate::fault::FaultPlan;
        use crate::watchdog::OnlineWatchdogConfig;
        for policy in [
            Box::new(NativePolicy::new()) as Box<dyn AlignmentPolicy>,
            Box::new(SimtyPolicy::new()),
        ] {
            let config = SimConfig::new()
                .with_duration(SimDuration::from_mins(30))
                .with_online_watchdog(OnlineWatchdogConfig::default())
                .with_strict_invariants();
            let mut sim = Simulation::new(policy, config);
            sim.register(wifi_alarm("a", 60, 60, 0.0, 0.9)).unwrap();
            sim.register(wifi_alarm("b", 90, 120, 0.25, 0.9)).unwrap();
            sim.register(
                Alarm::builder("ring")
                    .nominal(SimTime::from_secs(300))
                    .repeating_static(SimDuration::from_secs(600))
                    .hardware(HardwareComponent::Vibrator.into())
                    .task_duration(SimDuration::from_secs(1))
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let plan = FaultPlan::new(42)
                .with_rtc_jitter(SimDuration::from_secs(2))
                .with_dropped_fires(0.05, SimDuration::from_secs(1))
                .with_task_overruns(0.05, SimDuration::from_secs(120))
                .with_wakelock_leaks(0.05, SimDuration::from_secs(90))
                .with_activation_failures(0.10)
                .with_push_storm(
                    SimTime::from_secs(600),
                    SimDuration::from_secs(120),
                    SimDuration::from_secs(5),
                );
            sim.inject_faults(&plan);
            let report = sim.run();
            // Strict mode would have panicked on any violation; the run
            // also must reach its configured end.
            assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_mins(30));
            assert_eq!(report.resilience.invariant_violations, 0);
            assert!(report.total_deliveries > 0);
        }
    }

    #[test]
    fn faulty_runs_are_seed_deterministic() {
        use crate::fault::FaultPlan;
        use crate::watchdog::OnlineWatchdogConfig;
        let run = || {
            let config = SimConfig::new()
                .with_duration(SimDuration::from_mins(30))
                .with_online_watchdog(OnlineWatchdogConfig::default())
                .with_invariants();
            let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), config);
            sim.register(wifi_alarm("a", 60, 60, 0.0, 0.9)).unwrap();
            sim.register(wifi_alarm("b", 90, 120, 0.25, 0.9)).unwrap();
            let plan = FaultPlan::new(7)
                .with_rtc_jitter(SimDuration::from_secs(1))
                .with_dropped_fires(0.1, SimDuration::from_secs(1))
                .with_task_overruns(0.1, SimDuration::from_secs(120))
                .with_activation_failures(0.2);
            sim.inject_faults(&plan);
            let r = sim.run();
            (
                r.total_deliveries,
                r.cpu_wakeups,
                r.energy.total_mj().to_bits(),
                r.resilience.interventions,
                r.resilience.intervention_overhead_mj.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn activation_failures_retry_and_attribute_overhead() {
        use crate::fault::FaultPlan;
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(10))
            .with_strict_invariants();
        let mut sim = Simulation::new(Box::new(ExactPolicy::new()), config);
        sim.register(
            Alarm::builder("sync")
                .nominal(SimTime::from_secs(60))
                .repeating_static(SimDuration::from_secs(120))
                .hardware(HardwareComponent::Wifi.into())
                .task_duration(SimDuration::from_secs(30))
                .build()
                .unwrap(),
        )
        .unwrap();
        sim.inject_faults(&FaultPlan::new(3).with_activation_failures(1.0));
        let report = sim.run();
        // p = 1: every delivery's first activation fails, and every retry
        // fails until the forced-success attempt cap.
        assert!(report.resilience.activation_retries > 0);
        let retries = sim
            .trace()
            .interventions()
            .iter()
            .filter(|i| matches!(i.kind, InterventionKind::ActivationRetry { .. }))
            .count() as u64;
        assert_eq!(retries, report.resilience.activation_retries);
        // Wi-Fi still activated (late), on every delivery.
        assert!(report.wakeup_row(HardwareComponent::Wifi).unwrap().actual > 0);
    }

    #[test]
    fn app_crash_cancels_and_restart_reregisters() {
        use crate::fault::FaultPlan;
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(20))
            .with_strict_invariants();
        let mut sim = Simulation::new(Box::new(NativePolicy::new()), config);
        sim.register(wifi_alarm("mail", 60, 120, 0.0, 0.9)).unwrap();
        let plan = FaultPlan::new(1).with_app_crash(
            "mail",
            SimTime::from_secs(300),
            SimDuration::from_secs(120),
        );
        sim.inject_faults(&plan);
        let report = sim.run();
        assert_eq!(report.resilience.app_crashes, 1);
        assert_eq!(report.resilience.app_restarts, 1);
        // No deliveries during the outage [300, 420].
        let outage: Vec<_> = sim
            .trace()
            .deliveries()
            .iter()
            .filter(|d| {
                d.delivered_at > SimTime::from_secs(300)
                    && d.delivered_at < SimTime::from_secs(420)
            })
            .collect();
        assert!(outage.is_empty(), "delivered during the outage: {outage:?}");
        // Deliveries resume after the restart.
        assert!(sim
            .trace()
            .deliveries()
            .iter()
            .any(|d| d.delivered_at >= SimTime::from_secs(420)));
    }

    #[test]
    fn targeted_release_drops_exactly_the_offender() {
        let mut sim = ten_minute_sim(Box::new(ExactPolicy::new()));
        sim.register(wifi_alarm("a", 60, 300, 0.0, 0.5)).unwrap();
        sim.run_until(SimTime::from_secs(61));
        assert!(!sim.device().active_components().is_empty());
        assert!(sim.force_release_app("a"));
        assert!(sim.device().active_components().is_empty());
        // force_release_app on an app with no holds reports false.
        assert!(!sim.force_release_app("a"));
    }

    #[test]
    fn report_panics_before_running() {
        let sim = ten_minute_sim(Box::new(ExactPolicy::new()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.report()));
        assert!(result.is_err());
    }

    fn deferrable_alarm(label: &str, nominal_s: u64, repeat_s: u64) -> Alarm {
        let mut alarm = wifi_alarm(label, nominal_s, repeat_s, 0.1, 0.5);
        alarm.mark_hardware_known();
        alarm
    }

    #[test]
    fn admission_quota_rejects_storms_with_typed_errors() {
        use simty_core::admission::AdmissionConfig;
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(10))
            .with_admission(AdmissionConfig::default());
        let mut sim = Simulation::new(Box::new(NativePolicy::new()), config);
        let (mut admitted, mut rejected) = (0u64, 0u64);
        for i in 0..30u64 {
            match sim.register(deferrable_alarm("noisy", 60 + i, 600)) {
                Ok(_) => admitted += 1,
                Err(RegisterAlarmError::QuotaExceeded { retry_after, .. }) => {
                    assert!(retry_after > SimDuration::ZERO);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        // Default deferrable quota: burst of 8, then 4 deferred admits,
        // then rejections.
        assert_eq!(admitted, 12);
        assert_eq!(rejected, 18);
        assert_eq!(sim.overload.admitted, 8);
        assert_eq!(sim.overload.deferred, 4);
        assert_eq!(sim.overload.rejected, 18);
        // Eight rejections demote the offender into quarantine.
        assert!(sim.admission().unwrap().is_demoted("noisy"));
        assert_eq!(sim.overload.demotions, 1);
        let report = sim.run();
        assert_eq!(report.overload.rejected, 18);
        assert!(report.metrics_json.contains("sim_admission_demotions_total"));
    }

    #[test]
    fn admission_debt_survives_cancel_app_and_reregister() {
        use simty_core::admission::AdmissionConfig;
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(10))
            .with_admission(AdmissionConfig::default());
        let mut sim = Simulation::new(Box::new(NativePolicy::new()), config);
        for i in 0..30u64 {
            let _ = sim.register(deferrable_alarm("noisy", 60 + i, 600));
        }
        assert!(sim.admission().unwrap().is_demoted("noisy"));
        // Cancelling the app's alarms does not refund its quota debt.
        let cancelled = sim.manager.cancel_app("noisy");
        assert!(!cancelled.is_empty());
        match sim.register(deferrable_alarm("noisy", 300, 600)) {
            Ok(id) => {
                // Still demoted: the fresh registration lands quarantined.
                assert!(sim.manager.find_alarm(id).unwrap().is_quarantined());
            }
            Err(RegisterAlarmError::QuotaExceeded { .. }) => {}
            Err(other) => panic!("unexpected rejection: {other}"),
        }
        assert!(sim.admission().unwrap().is_demoted("noisy"));
    }

    #[test]
    fn governor_descends_tiers_and_widens_grace() {
        use crate::degrade::{DegradationTier, GovernorConfig};
        let build = |capacity: Option<f64>| {
            let mut config = SimConfig::new()
                .with_duration(SimDuration::from_mins(30))
                .with_strict_invariants();
            if let Some(capacity_mj) = capacity {
                config = config.with_degradation(GovernorConfig {
                    capacity_mj,
                    check_every: SimDuration::from_secs(30),
                    ..GovernorConfig::default()
                });
            }
            let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), config);
            sim.register(wifi_alarm("clock", 60, 120, 0.0, 0.9)).unwrap();
            sim.register(deferrable_alarm("sync", 90, 60)).unwrap();
            sim
        };
        // Probe the workload's energy draw, then size the battery so the
        // governed run traverses both degraded tiers.
        let mut probe = build(None);
        let spent = probe.run().energy.total_mj();
        let mut sim = build(Some(spent * 1.05));
        let report = sim.run();
        assert_eq!(sim.degradation_tier(), Some(DegradationTier::Critical));
        assert_eq!(report.overload.final_tier, "critical");
        assert!(report.overload.tier_changes >= 2, "{}", report.overload.tier_changes);
        assert!(report.overload.time_in_saver_ms > 0);
        assert!(report.overload.time_in_critical_ms > 0);
        // Critical stretches imperceptible grace to 2.5x by default.
        assert_eq!(report.overload.grace_stretch_milli, 2_500);
        // Strict invariants: perceptible alarms never missed a window in
        // any tier (a violation would have panicked mid-run).
        assert_eq!(report.resilience.invariant_violations, 0);
        assert_eq!(report.resilience.perceptible_window_misses, 0);
    }

    #[test]
    fn critical_tier_sheds_deferrable_registrations_only() {
        use crate::degrade::{DegradationTier, GovernorConfig};
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(10))
            .with_degradation(GovernorConfig {
                capacity_mj: 1.0,
                check_every: SimDuration::from_secs(30),
                ..GovernorConfig::default()
            });
        let mut sim = Simulation::new(Box::new(NativePolicy::new()), config);
        sim.register(wifi_alarm("clock", 60, 120, 0.0, 0.9)).unwrap();
        // A 1 mJ battery is flat by the first governor tick.
        sim.run_until(SimTime::from_secs(61));
        assert_eq!(sim.degradation_tier(), Some(DegradationTier::Critical));
        match sim.register(deferrable_alarm("late", 120, 300)) {
            Err(RegisterAlarmError::RegistrationShed { .. }) => {}
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(sim.overload.shed, 1);
        // Perceptible registrations are never shed.
        sim.register(wifi_alarm("urgent", 120, 300, 0.0, 0.5)).unwrap();
        let report = sim.run();
        assert_eq!(report.overload.shed, 1);
        assert_eq!(report.overload.final_tier, "critical");
    }

    fn fingerprint(sim: &Simulation) -> (Vec<u8>, String) {
        let mut csv = Vec::new();
        sim.trace().write_csv(&mut csv).unwrap();
        (csv, crate::json::report_to_json(&sim.report()))
    }

    fn storm_sim(capacity_mj: f64) -> Simulation {
        use crate::degrade::GovernorConfig;
        use crate::overload::{RegistrationStormPlan, StormBurst};
        use simty_core::admission::AdmissionConfig;
        let config = SimConfig::new()
            .with_duration(SimDuration::from_mins(30))
            .with_invariants()
            .with_checkpoints(SimDuration::from_mins(5))
            .with_admission(AdmissionConfig::default())
            .with_degradation(GovernorConfig {
                capacity_mj,
                check_every: SimDuration::from_secs(60),
                ..GovernorConfig::default()
            });
        let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), config);
        sim.register(wifi_alarm("base", 60, 120, 0.1, 0.9)).unwrap();
        let plan = RegistrationStormPlan::new().burst(StormBurst {
            app: "flood".to_owned(),
            start: SimTime::from_secs(120),
            count: 40,
            every: SimDuration::from_secs(1),
            period: SimDuration::from_secs(300),
            perceptible: false,
            task: SimDuration::from_secs(1),
            window_milli: 100,
            grace_milli: 500,
        });
        sim.inject_storm(&plan);
        sim
    }

    #[test]
    fn storm_registrations_are_fully_accounted() {
        // A battery too large to drain: every storm registration faces
        // the quota, not the shedder.
        let mut sim = storm_sim(1.0e9);
        let report = sim.run();
        let ov = &report.overload;
        assert_eq!(ov.storm_registrations, 40);
        // Every storm registration lands in exactly one outcome bucket.
        assert_eq!(
            ov.admitted + ov.deferred + ov.rejected + ov.shed,
            41, // 40 storm registrations + the base alarm
            "{ov:?}"
        );
        assert!(ov.rejected > 0, "quota never pushed back: {ov:?}");
        assert_eq!(report.resilience.perceptible_window_misses, 0);
    }

    #[test]
    fn storm_run_resumes_byte_identically_from_every_checkpoint() {
        // A small battery so the snapshots straddle admission state,
        // storm events, AND governor tier transitions.
        let mut straight = storm_sim(2_000.0);
        straight.run();
        assert!(straight.overload.shed > 0);
        let expected = fingerprint(&straight);
        let checkpoints = straight.checkpoints().to_vec();
        assert!(!checkpoints.is_empty());
        for (i, ckpt) in checkpoints.iter().enumerate() {
            let mut resumed =
                Simulation::restore(Box::new(SimtyPolicy::new()), ckpt).unwrap();
            resumed.run();
            assert_eq!(fingerprint(&resumed), expected, "checkpoint {i} diverged");
        }
    }

    #[test]
    fn random_storm_plans_hold_invariants_across_policies_and_tiers() {
        use crate::degrade::GovernorConfig;
        use crate::overload::{RegistrationStormPlan, StormBurst};
        use simty_core::admission::AdmissionConfig;
        // A deterministic LCG stands in for a property-test RNG: random
        // storm shapes across all three policies and both drained and
        // healthy batteries, all under strict invariants.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..6u64 {
            let policy: Box<dyn AlignmentPolicy> = match trial % 3 {
                0 => Box::new(NativePolicy::new()),
                1 => Box::new(ExactPolicy::new()),
                _ => Box::new(SimtyPolicy::new()),
            };
            let drained = trial % 2 == 0;
            let config = SimConfig::new()
                .with_duration(SimDuration::from_mins(20))
                .with_strict_invariants()
                .with_admission(AdmissionConfig::default())
                .with_degradation(GovernorConfig {
                    capacity_mj: if drained { 500.0 } else { 1.0e9 },
                    check_every: SimDuration::from_secs(45),
                    ..GovernorConfig::default()
                });
            let mut sim = Simulation::new(policy, config);
            sim.register(wifi_alarm("base", 30, 90, 0.1, 0.9)).unwrap();
            let mut plan = RegistrationStormPlan::new();
            for b in 0..(1 + next() % 3) {
                plan = plan.burst(StormBurst {
                    app: format!("storm{b}"),
                    start: SimTime::from_secs(60 + next() % 600),
                    count: (4 + next() % 24) as u32,
                    every: SimDuration::from_millis(200 + next() % 3_000),
                    period: SimDuration::from_secs(60 + next() % 300),
                    perceptible: next() % 4 == 0,
                    task: SimDuration::from_millis(500 + next() % 2_000),
                    window_milli: (next() % 300) as u32,
                    grace_milli: (300 + next() % 600) as u32,
                });
            }
            let planned = plan.registrations();
            sim.inject_storm(&plan);
            let report = sim.run();
            let ov = &report.overload;
            assert_eq!(ov.storm_registrations, planned, "trial {trial}");
            assert_eq!(
                ov.admitted + ov.deferred + ov.rejected + ov.shed,
                planned + 1,
                "trial {trial}: {ov:?}"
            );
            // Strict invariants: any perceptible window miss would have
            // panicked; the report must agree.
            assert_eq!(report.resilience.perceptible_window_misses, 0, "trial {trial}");
        }
    }
}
