//! Runtime invariant checking: the referee of every chaos run.
//!
//! The paper's central guarantee is that perceptible alarms incur *zero*
//! delivery delay beyond their windows (§3.1.2, Fig. 4). Under fault
//! injection ([`crate::fault`]) that guarantee must survive dropped
//! fires, RTC jitter, overruns, leaks, crashes, and storms — so the
//! engine can carry an [`InvariantMonitor`] that checks, *while the run
//! executes*:
//!
//! 1. **Perceptible windows** — no ground-truth-perceptible wakeup alarm
//!    is delivered past `window_end + wake latency + fault slack`, where
//!    the fault slack is exactly the environmental delay bound declared
//!    by the active [`FaultPlan`](crate::fault::FaultPlan) (the policy
//!    itself gets no extra slack). Quarantined apps are exempt: the
//!    watchdog has deliberately demoted them.
//! 2. **Queue order** — the wakeup queue stays sorted by delivery time
//!    after every delivery round.
//! 3. **Energy conservation** — at the end of the run, per-app
//!    attribution plus overhead equals the meter's awake-related energy,
//!    and the meter's categories sum to its total.
//!
//! In strict mode (tests) a violation panics at the instant it happens,
//! with full context; otherwise violations accumulate and surface in the
//! [`SimReport`](crate::metrics::SimReport)'s resilience section.

use std::fmt;

use simty_core::time::{SimDuration, SimTime};

use crate::trace::DeliveryRecord;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A perceptible wakeup alarm was delivered past its window plus the
    /// allowed latency/fault slack.
    PerceptibleWindowMiss {
        /// The offending app label.
        label: String,
        /// When it was delivered.
        delivered_at: SimTime,
        /// The window end it overshot.
        window_end: SimTime,
        /// The slack it was allowed on top of the window.
        allowed_slack: SimDuration,
    },
    /// Two adjacent wakeup-queue entries were out of delivery order.
    QueueOrderBroken {
        /// Delivery time of the earlier entry.
        earlier: SimTime,
        /// Delivery time of the later entry (which was smaller).
        later: SimTime,
    },
    /// The attribution ledger and the energy meter disagree.
    EnergyNotConserved {
        /// Ledger total: attributed + overhead, in mJ.
        ledger_mj: f64,
        /// Meter awake-related energy, in mJ.
        meter_mj: f64,
    },
    /// The integrated Monsoon power waveform and the energy meter
    /// disagree about the run's total energy.
    WaveformMismatch {
        /// Energy integrated from the recorded waveform, in mJ.
        trace_mj: f64,
        /// The meter's total, in mJ.
        meter_mj: f64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::PerceptibleWindowMiss {
                label,
                delivered_at,
                window_end,
                allowed_slack,
            } => write!(
                f,
                "perceptible alarm `{label}` delivered at {delivered_at}, past its window end \
                 {window_end} + {allowed_slack} slack"
            ),
            InvariantViolation::QueueOrderBroken { earlier, later } => write!(
                f,
                "wakeup queue out of order: entry at {earlier} precedes entry at {later}"
            ),
            InvariantViolation::EnergyNotConserved {
                ledger_mj,
                meter_mj,
            } => write!(
                f,
                "energy not conserved: ledger {ledger_mj:.6} mJ vs meter {meter_mj:.6} mJ"
            ),
            InvariantViolation::WaveformMismatch { trace_mj, meter_mj } => write!(
                f,
                "waveform disagrees with meter: trace integrates to {trace_mj:.6} mJ vs meter \
                 {meter_mj:.6} mJ"
            ),
        }
    }
}

/// Runtime invariant monitor; attach via
/// [`SimConfig::with_invariants`](crate::config::SimConfig::with_invariants)
/// (report-only) or
/// [`SimConfig::with_strict_invariants`](crate::config::SimConfig::with_strict_invariants)
/// (panic — the test mode).
#[derive(Debug, Clone)]
pub struct InvariantMonitor {
    pub(crate) slack: SimDuration,
    pub(crate) panic_on_violation: bool,
    pub(crate) violations: Vec<InvariantViolation>,
    pub(crate) window_misses: u64,
}

impl InvariantMonitor {
    /// Creates a monitor. `base_slack` is the device wake latency (the
    /// delay the paper's guarantee already tolerates); fault plans widen
    /// it via [`add_slack`](Self::add_slack).
    pub fn new(base_slack: SimDuration, panic_on_violation: bool) -> Self {
        InvariantMonitor {
            slack: base_slack,
            panic_on_violation,
            violations: Vec::new(),
            window_misses: 0,
        }
    }

    /// Widens the allowed delivery slack by a fault plan's declared
    /// environmental delay bound.
    pub fn add_slack(&mut self, extra: SimDuration) {
        self.slack += extra;
    }

    /// The current total slack.
    pub fn slack(&self) -> SimDuration {
        self.slack
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// How many perceptible-window misses were recorded (the headline
    /// chaos metric).
    pub fn window_misses(&self) -> u64 {
        self.window_misses
    }

    /// Checks one wakeup delivery against the perceptible-window
    /// guarantee. `quarantined` exempts deliveries the watchdog has
    /// deliberately demoted. Non-wakeup alarms are never checked: by
    /// design they wait for the next wakeup (§2.1).
    pub fn check_delivery(&mut self, record: &DeliveryRecord, quarantined: bool) {
        if !record.perceptible || quarantined {
            return;
        }
        if record.delivered_at > record.window_end + self.slack {
            self.window_misses += 1;
            self.record(InvariantViolation::PerceptibleWindowMiss {
                label: record.label.to_string(),
                delivered_at: record.delivered_at,
                window_end: record.window_end,
                allowed_slack: self.slack,
            });
        }
    }

    /// Checks that delivery times are nondecreasing (call with the
    /// wakeup queue's entry delivery times after a delivery round).
    pub fn check_queue_order(&mut self, delivery_times: impl Iterator<Item = SimTime>) {
        let mut prev: Option<SimTime> = None;
        for t in delivery_times {
            if let Some(p) = prev {
                if t < p {
                    self.record(InvariantViolation::QueueOrderBroken { earlier: p, later: t });
                    return;
                }
            }
            prev = Some(t);
        }
    }

    /// Checks end-of-run energy conservation: the ledger (attributed +
    /// overhead) must match the meter's awake-related energy within a
    /// relative tolerance, and the meter's categories must sum to its
    /// total.
    pub fn check_energy(
        &mut self,
        ledger_mj: f64,
        meter_awake_mj: f64,
        meter_parts_mj: f64,
        meter_total_mj: f64,
    ) {
        let tol = 1e-6 * meter_total_mj.abs().max(1.0);
        if (ledger_mj - meter_awake_mj).abs() > tol {
            self.record(InvariantViolation::EnergyNotConserved {
                ledger_mj,
                meter_mj: meter_awake_mj,
            });
        }
        if (meter_parts_mj - meter_total_mj).abs() > tol {
            self.record(InvariantViolation::EnergyNotConserved {
                ledger_mj: meter_parts_mj,
                meter_mj: meter_total_mj,
            });
        }
    }

    /// Cross-checks the recorded Monsoon waveform against the energy
    /// meter: integrating the power trace over the whole run must land on
    /// the meter's total within the same relative tolerance as
    /// [`check_energy`](Self::check_energy). Only meaningful when the
    /// run recorded a waveform.
    pub fn check_waveform(&mut self, trace_mj: f64, meter_total_mj: f64) {
        let tol = 1e-6 * meter_total_mj.abs().max(1.0);
        if (trace_mj - meter_total_mj).abs() > tol {
            self.record(InvariantViolation::WaveformMismatch {
                trace_mj,
                meter_mj: meter_total_mj,
            });
        }
    }

    fn record(&mut self, violation: InvariantViolation) {
        if self.panic_on_violation {
            panic!("invariant violated: {violation}");
        }
        self.violations.push(violation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simty_core::alarm::Alarm;

    fn perceptible_record(delivered_s: u64) -> DeliveryRecord {
        // One-shot ⇒ ground-truth perceptible; window ends at nominal.
        let alarm = Alarm::builder("p")
            .nominal(SimTime::from_secs(100))
            .build()
            .unwrap();
        DeliveryRecord::observe(&alarm, SimTime::from_secs(delivered_s), 1)
    }

    #[test]
    fn on_time_delivery_is_clean() {
        let mut m = InvariantMonitor::new(SimDuration::from_millis(250), false);
        m.check_delivery(&perceptible_record(100), false);
        assert!(m.violations().is_empty());
        assert_eq!(m.window_misses(), 0);
    }

    #[test]
    fn late_perceptible_delivery_is_a_miss() {
        let mut m = InvariantMonitor::new(SimDuration::from_millis(250), false);
        m.check_delivery(&perceptible_record(105), false);
        assert_eq!(m.window_misses(), 1);
        assert!(m.violations()[0]
            .to_string()
            .contains("past its window end"));
    }

    #[test]
    fn quarantined_deliveries_are_exempt() {
        let mut m = InvariantMonitor::new(SimDuration::from_millis(250), false);
        m.check_delivery(&perceptible_record(105), true);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn fault_slack_widens_the_check() {
        let mut m = InvariantMonitor::new(SimDuration::from_millis(250), false);
        m.add_slack(SimDuration::from_secs(10));
        m.check_delivery(&perceptible_record(105), false);
        assert!(m.violations().is_empty());
        assert_eq!(m.slack(), SimDuration::from_millis(10_250));
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn strict_mode_panics() {
        let mut m = InvariantMonitor::new(SimDuration::from_millis(250), true);
        m.check_delivery(&perceptible_record(105), false);
    }

    #[test]
    fn queue_order_violation_is_detected() {
        let mut m = InvariantMonitor::new(SimDuration::ZERO, false);
        m.check_queue_order([1, 2, 3].into_iter().map(SimTime::from_secs));
        assert!(m.violations().is_empty());
        m.check_queue_order([1, 3, 2].into_iter().map(SimTime::from_secs));
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn energy_conservation_uses_relative_tolerance() {
        let mut m = InvariantMonitor::new(SimDuration::ZERO, false);
        m.check_energy(1_000_000.0, 1_000_000.0 + 1e-4, 1_000_000.0, 1_000_000.0);
        assert!(m.violations().is_empty());
        m.check_energy(1_000.0, 2_000.0, 5.0, 5.0);
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn waveform_cross_check_uses_relative_tolerance() {
        let mut m = InvariantMonitor::new(SimDuration::ZERO, false);
        m.check_waveform(1_000_000.0, 1_000_000.0 + 1e-4);
        assert!(m.violations().is_empty());
        m.check_waveform(900.0, 1_000.0);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0]
            .to_string()
            .contains("waveform disagrees with meter"));
    }
}
