//! Trace analysis: batching statistics, per-app delivery summaries, and
//! an ASCII timeline — the exploratory tooling a wakeup-management study
//! needs around the raw metrics.

use std::collections::BTreeMap;
use std::fmt;

use simty_core::time::{SimDuration, SimTime};

use crate::trace::Trace;

/// Distribution of queue-entry batch sizes over a run.
///
/// A policy that aligns well delivers most alarms in large batches;
/// EXACT's histogram is all ones.
///
/// # Examples
///
/// ```
/// use simty_sim::analysis::BatchHistogram;
/// use simty_sim::trace::Trace;
///
/// let histogram = BatchHistogram::from_trace(&Trace::new());
/// assert_eq!(histogram.total_deliveries(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchHistogram {
    counts: BTreeMap<usize, u64>,
}

impl BatchHistogram {
    /// Builds the histogram from a trace. Each *alarm* delivery
    /// contributes one observation of its entry's size.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut counts = BTreeMap::new();
        for d in trace.deliveries() {
            *counts.entry(d.entry_size).or_insert(0) += 1;
        }
        BatchHistogram { counts }
    }

    /// Observations per batch size.
    pub fn counts(&self) -> &BTreeMap<usize, u64> {
        &self.counts
    }

    /// Total alarm deliveries observed.
    pub fn total_deliveries(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Mean batch size over alarm deliveries (1.0 for EXACT).
    pub fn mean_batch_size(&self) -> f64 {
        let total = self.total_deliveries();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.counts.iter().map(|(size, n)| *size as u64 * n).sum();
        weighted as f64 / total as f64
    }

    /// Fraction of deliveries that shared their wakeup with at least one
    /// other alarm.
    pub fn aligned_fraction(&self) -> f64 {
        let total = self.total_deliveries();
        if total == 0 {
            return 0.0;
        }
        let aligned: u64 = self
            .counts
            .iter()
            .filter(|(size, _)| **size > 1)
            .map(|(_, n)| *n)
            .sum();
        aligned as f64 / total as f64
    }
}

impl fmt::Display for BatchHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "batch-size histogram (alarm deliveries):")?;
        for (size, n) in &self.counts {
            writeln!(f, "  {size:>3}: {n:>6} {}", "#".repeat((*n as usize).min(60)))?;
        }
        write!(
            f,
            "  mean {:.2}, {:.1}% aligned",
            self.mean_batch_size(),
            self.aligned_fraction() * 100.0
        )
    }
}

/// Per-app delivery summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AppStats {
    /// App label.
    pub app: String,
    /// Number of deliveries.
    pub deliveries: u64,
    /// Mean normalized delay (repeating alarms only).
    pub mean_normalized_delay: f64,
    /// Maximum normalized delay.
    pub max_normalized_delay: f64,
    /// Mean gap between adjacent deliveries, if at least two occurred.
    pub mean_gap: Option<SimDuration>,
}

/// Computes per-app summaries over a trace, sorted by app label.
pub fn per_app_stats(trace: &Trace) -> Vec<AppStats> {
    #[derive(Default)]
    struct Acc {
        deliveries: u64,
        delay_sum: f64,
        delay_count: u64,
        delay_max: f64,
        times: Vec<SimTime>,
    }
    let mut accs: BTreeMap<String, Acc> = BTreeMap::new();
    for d in trace.deliveries() {
        let acc = accs.entry(d.label.to_string()).or_default();
        acc.deliveries += 1;
        acc.times.push(d.delivered_at);
        if let Some(nd) = d.normalized_delay() {
            acc.delay_sum += nd;
            acc.delay_count += 1;
            acc.delay_max = acc.delay_max.max(nd);
        }
    }
    accs.into_iter()
        .map(|(app, acc)| {
            let mean_gap = if acc.times.len() >= 2 {
                let total: SimDuration = acc
                    .times
                    .windows(2)
                    .map(|w| w[1].saturating_since(w[0]))
                    .sum();
                Some(total / (acc.times.len() as u64 - 1))
            } else {
                None
            };
            AppStats {
                app,
                deliveries: acc.deliveries,
                mean_normalized_delay: if acc.delay_count > 0 {
                    acc.delay_sum / acc.delay_count as f64
                } else {
                    0.0
                },
                max_normalized_delay: acc.delay_max,
                mean_gap,
            }
        })
        .collect()
}

/// Statistics over the gaps between consecutive device wakeups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeupGapStats {
    /// Number of gaps observed (wakeups − 1).
    pub count: u64,
    /// Shortest gap.
    pub min: SimDuration,
    /// Mean gap.
    pub mean: SimDuration,
    /// Longest gap — the longest uninterrupted sleep opportunity.
    pub max: SimDuration,
}

/// Computes wakeup-gap statistics, or `None` with fewer than two wakeups.
pub fn wakeup_gap_stats(trace: &Trace) -> Option<WakeupGapStats> {
    let wakeups = trace.wakeups();
    if wakeups.len() < 2 {
        return None;
    }
    let gaps: Vec<SimDuration> = wakeups
        .windows(2)
        .map(|w| w[1].saturating_since(w[0]))
        .collect();
    let total: SimDuration = gaps.iter().copied().sum();
    Some(WakeupGapStats {
        count: gaps.len() as u64,
        min: gaps.iter().copied().min().expect("nonempty"),
        mean: total / gaps.len() as u64,
        max: gaps.iter().copied().max().expect("nonempty"),
    })
}

/// Renders an ASCII timeline of device wakeups: one row per bucket, one
/// `*` per wakeup in that bucket. Useful for eyeballing how a policy
/// clusters activity.
///
/// # Panics
///
/// Panics if `bucket` is zero.
pub fn wakeup_timeline(trace: &Trace, duration: SimDuration, bucket: SimDuration) -> String {
    assert!(!bucket.is_zero(), "timeline bucket must be positive");
    let buckets = duration.as_millis().div_ceil(bucket.as_millis()).max(1) as usize;
    let mut counts = vec![0usize; buckets];
    for w in trace.wakeups() {
        let idx = (w.as_millis() / bucket.as_millis()) as usize;
        if let Some(slot) = counts.get_mut(idx) {
            *slot += 1;
        }
    }
    let mut out = String::new();
    for (i, n) in counts.iter().enumerate() {
        let start = SimTime::from_millis(i as u64 * bucket.as_millis());
        out.push_str(&format!("{:>10}  {}\n", start.to_string(), "*".repeat(*n)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DeliveryRecord;
    use simty_core::alarm::Alarm;
    use simty_core::hardware::HardwareComponent;

    fn traced(deliveries: &[(u64, usize)]) -> Trace {
        let mut alarm = Alarm::builder("app")
            .nominal(SimTime::from_secs(100))
            .repeating_static(SimDuration::from_secs(100))
            .window_fraction(0.25)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .build()
            .unwrap();
        alarm.mark_hardware_known();
        let mut t = Trace::new();
        for (s, size) in deliveries {
            t.record_delivery(DeliveryRecord::observe(
                &alarm,
                SimTime::from_secs(*s),
                *size,
            ));
        }
        t
    }

    #[test]
    fn histogram_counts_and_means() {
        let t = traced(&[(100, 1), (200, 2), (300, 2), (400, 4)]);
        let h = BatchHistogram::from_trace(&t);
        assert_eq!(h.total_deliveries(), 4);
        assert_eq!(h.counts()[&2], 2);
        assert!((h.mean_batch_size() - 2.25).abs() < 1e-12);
        assert!((h.aligned_fraction() - 0.75).abs() < 1e-12);
        assert!(h.to_string().contains("aligned"));
    }

    #[test]
    fn empty_histogram_is_defined() {
        let h = BatchHistogram::from_trace(&Trace::new());
        assert_eq!(h.mean_batch_size(), 0.0);
        assert_eq!(h.aligned_fraction(), 0.0);
    }

    #[test]
    fn per_app_stats_aggregate() {
        let t = traced(&[(150, 1), (260, 1)]);
        let stats = per_app_stats(&t);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.app, "app");
        assert_eq!(s.deliveries, 2);
        // Window ends at 125; delays 25 s and 135 s normalized by 100 s...
        // (the helper reuses one nominal, so the second delay is large).
        assert!(s.max_normalized_delay > s.mean_normalized_delay / 2.0);
        assert_eq!(s.mean_gap, Some(SimDuration::from_secs(110)));
    }

    #[test]
    fn wakeup_gaps() {
        let mut t = Trace::new();
        assert!(wakeup_gap_stats(&t).is_none());
        for s in [10, 40, 100] {
            t.record_wakeup(SimTime::from_secs(s));
        }
        let g = wakeup_gap_stats(&t).unwrap();
        assert_eq!(g.count, 2);
        assert_eq!(g.min, SimDuration::from_secs(30));
        assert_eq!(g.max, SimDuration::from_secs(60));
        assert_eq!(g.mean, SimDuration::from_secs(45));
    }

    #[test]
    fn timeline_shape() {
        let mut t = Trace::new();
        t.record_wakeup(SimTime::from_secs(10));
        t.record_wakeup(SimTime::from_secs(15));
        t.record_wakeup(SimTime::from_secs(70));
        let tl = wakeup_timeline(&t, SimDuration::from_secs(120), SimDuration::from_secs(60));
        let lines: Vec<&str> = tl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("**"));
        assert!(lines[1].ends_with('*'));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn timeline_rejects_zero_bucket() {
        let _ = wakeup_timeline(&Trace::new(), SimDuration::from_secs(60), SimDuration::ZERO);
    }
}
