//! Fast analytic energy estimation — "what would this workload cost?"
//! without running the simulator.
//!
//! For a workload with no alignment (the EXACT baseline), standby energy
//! decomposes in closed form: each alarm fires once per repeating
//! interval at its solo-delivery cost, and the device sleeps the rest of
//! the time. The estimator computes that decomposition, plus a best-case
//! bound under perfect alignment (every component activated only its
//! §4.2 minimum number of times). Real policies land between the two, so
//! the pair brackets any policy's achievable range — useful for sizing a
//! workload before committing to a full sweep.

use simty_core::alarm::Alarm;
use simty_core::bounds::least_component_wakeups;
use simty_core::time::SimDuration;
use simty_device::power::PowerModel;

/// An analytic standby-energy estimate (mJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Sleep-floor energy over the whole span (ignoring awake time —
    /// a slight overestimate that keeps the expression closed-form).
    pub sleep_mj: f64,
    /// Awake-related energy with no alignment at all. An *upper bound* on
    /// the EXACT policy's simulated energy: the closed form charges every
    /// delivery a full solo cost, while the simulator merges deliveries
    /// that land in a shared awake window and lets dynamic alarms drift
    /// to longer effective periods.
    pub unaligned_awake_mj: f64,
    /// Awake-related energy under perfect alignment: per-component
    /// activations at their §4.2 lower bounds, tasks perfectly stacked.
    pub best_case_awake_mj: f64,
}

impl EnergyEstimate {
    /// Unaligned total (sleep + EXACT awake).
    pub fn unaligned_total_mj(&self) -> f64 {
        self.sleep_mj + self.unaligned_awake_mj
    }

    /// Best-case total under perfect alignment.
    pub fn best_case_total_mj(&self) -> f64 {
        self.sleep_mj + self.best_case_awake_mj
    }

    /// The largest total saving any alignment policy could achieve.
    pub fn max_saving(&self) -> f64 {
        1.0 - self.best_case_total_mj() / self.unaligned_total_mj()
    }
}

/// Number of deliveries an alarm makes over `duration` with no alignment
/// (delivered at each nominal time).
fn unaligned_deliveries(alarm: &Alarm, duration: SimDuration) -> u64 {
    match alarm.repeat().interval() {
        None => u64::from(alarm.nominal() <= simty_core::time::SimTime::ZERO + duration),
        Some(interval) => duration.as_millis() / interval.as_millis(),
    }
}

/// Estimates the standby energy envelope of a workload over `duration`.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::hardware::HardwareComponent;
/// use simty_core::time::{SimDuration, SimTime};
/// use simty_device::power::PowerModel;
/// use simty_sim::estimate::estimate;
///
/// # fn main() -> Result<(), simty_core::error::BuildAlarmError> {
/// let alarms: Vec<Alarm> = (0..3)
///     .map(|i| {
///         Alarm::builder(format!("sync-{i}"))
///             .nominal(SimTime::from_secs(300 + i * 60))
///             .repeating_static(SimDuration::from_secs(300))
///             .window_fraction(0.75)
///             .hardware(HardwareComponent::Wifi.into())
///             .task_duration(SimDuration::from_secs(3))
///             .build()
///     })
///     .collect::<Result<_, _>>()?;
/// let e = estimate(&alarms, SimDuration::from_hours(3), &PowerModel::nexus5());
/// assert!(e.best_case_awake_mj < e.unaligned_awake_mj);
/// assert!(e.max_saving() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn estimate(alarms: &[Alarm], duration: SimDuration, model: &PowerModel) -> EnergyEstimate {
    let sleep_mj = model.sleep_power_mw * duration.as_secs_f64();

    // Unaligned: every delivery pays its full solo cost.
    let mut unaligned = 0.0;
    for alarm in alarms {
        let n = unaligned_deliveries(alarm, duration) as f64;
        unaligned += n * model.solo_delivery_energy_mj(alarm.hardware(), alarm.task_duration());
    }

    // Best case: components activate at their lower bounds and stay up
    // only for the longest task that needs them per activation; the CPU
    // wakes at the rate of the most demanding alarm overall.
    let bounds = least_component_wakeups(alarms, duration);
    let mut best = 0.0;
    for (component, activations) in &bounds {
        let profile = model.component(*component);
        let longest_task = alarms
            .iter()
            .filter(|a| a.hardware().contains(*component))
            .map(|a| a.task_duration())
            .max()
            .unwrap_or(SimDuration::ZERO);
        best += *activations as f64
            * (profile.activation_energy_mj
                + profile.active_power_mw * longest_task.as_secs_f64());
    }
    // CPU: wakeups at the single most demanding alarm's rate, each awake
    // for the longest task + latency + linger.
    let min_wakeups = alarms
        .iter()
        .map(|a| unaligned_deliveries(a, duration))
        .max()
        .unwrap_or(0) as f64;
    let longest_task = alarms
        .iter()
        .map(Alarm::task_duration)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let awake_span = model.wake_latency.as_secs_f64()
        + longest_task.as_secs_f64()
        + model.sleep_linger.as_secs_f64();
    best += min_wakeups * (model.wake_transition_energy_mj + model.awake_base_power_mw * awake_span);

    EnergyEstimate {
        sleep_mj,
        unaligned_awake_mj: unaligned,
        best_case_awake_mj: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simty_core::hardware::HardwareComponent;
    use simty_core::time::SimTime;

    fn wifi_alarm(nominal_s: u64, repeat_s: u64) -> Alarm {
        Alarm::builder("w")
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(repeat_s))
            .window_fraction(0.5)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(3))
            .build()
            .unwrap()
    }

    #[test]
    fn single_alarm_unaligned_matches_closed_form() {
        let model = PowerModel::nexus5();
        let alarm = wifi_alarm(600, 600);
        let e = estimate(std::slice::from_ref(&alarm), SimDuration::from_hours(1), &model);
        let per_delivery =
            model.solo_delivery_energy_mj(alarm.hardware(), SimDuration::from_secs(3));
        assert!((e.unaligned_awake_mj - 6.0 * per_delivery).abs() < 1e-9);
        assert!((e.sleep_mj - 50.0 * 3600.0).abs() < 1e-9);
    }

    #[test]
    fn best_case_is_below_unaligned_for_alignable_workloads() {
        let alarms = vec![wifi_alarm(300, 300), wifi_alarm(400, 300), wifi_alarm(500, 300)];
        let e = estimate(&alarms, SimDuration::from_hours(3), &PowerModel::nexus5());
        assert!(e.best_case_awake_mj < e.unaligned_awake_mj);
        assert!(e.max_saving() > 0.0 && e.max_saving() < 1.0);
    }

    #[test]
    fn one_shots_count_once() {
        let one_shot = Alarm::builder("o")
            .nominal(SimTime::from_secs(10))
            .task_duration(SimDuration::ZERO)
            .build()
            .unwrap();
        let e = estimate(&[one_shot], SimDuration::from_hours(1), &PowerModel::nexus5());
        assert!((e.unaligned_awake_mj - 180.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_sleep_only() {
        let e = estimate(&[], SimDuration::from_hours(1), &PowerModel::nexus5());
        assert_eq!(e.unaligned_awake_mj, 0.0);
        assert_eq!(e.best_case_awake_mj, 0.0);
        assert!((e.unaligned_total_mj() - e.sleep_mj).abs() < 1e-9);
    }
}
