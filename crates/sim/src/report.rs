//! Plain-text table rendering for experiment output.
//!
//! The bench binaries print each paper figure/table as an aligned ASCII
//! table; this module is the tiny formatting layer they share.

use std::fmt::Write as _;

/// A simple right-padded text table.
///
/// # Examples
///
/// ```
/// use simty_sim::report::TextTable;
///
/// let mut t = TextTable::new(["policy", "energy (J)"]);
/// t.row(["NATIVE", "950.1"]);
/// t.row(["SIMTY", "720.4"]);
/// let s = t.render();
/// assert!(s.contains("NATIVE"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the column count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart, one row per item, scaled to the
/// largest value. Used by the figure binaries to echo the paper's bar
/// plots (Figs. 3–4).
///
/// # Examples
///
/// ```
/// use simty_sim::report::bar_chart;
///
/// let chart = bar_chart(&[("NATIVE".into(), 1018.0), ("SIMTY".into(), 752.0)], 40);
/// assert!(chart.lines().count() == 2);
/// ```
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let max = items.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let mut out = String::new();
    for (label, value) in items {
        let bar = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:<label_w$}  {}{} {value:.1}",
            "█".repeat(bar),
            " ".repeat(width.saturating_sub(bar)),
        );
    }
    out
}

/// Formats millijoules as joules with one decimal.
pub fn fmt_joules(mj: f64) -> String {
    format!("{:.1}", mj / 1_000.0)
}

/// Formats a ratio as a percentage with one decimal.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "bbbb"]);
        t.row(["xxxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2", "3"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_joules(12_345.0), "12.3");
        assert_eq!(fmt_percent(0.336), "33.6%");
    }

    #[test]
    fn bar_chart_scales_to_the_maximum() {
        let chart = bar_chart(&[("a".into(), 10.0), ("bb".into(), 5.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        // Labels are padded to the widest.
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bar_chart_handles_zeroes_and_empty() {
        assert_eq!(bar_chart(&[], 10), "");
        let chart = bar_chart(&[("z".into(), 0.0)], 10);
        assert_eq!(chart.lines().next().unwrap().matches('█').count(), 0);
    }
}
