//! Battery model and standby-time projection.
//!
//! The paper's headline claim is that SIMTY's energy savings "prolong the
//! smartphone's standby time by one-fourth to one-third". Standby time is
//! the battery capacity divided by the average standby power, so the
//! projection here turns measured energy into the paper's metric.

use std::fmt;

use simty_core::time::SimDuration;

/// A battery with a fixed usable energy capacity.
///
/// # Examples
///
/// ```
/// use simty_core::time::SimDuration;
/// use simty_device::battery::Battery;
///
/// let battery = Battery::nexus5();
/// // A 12 mW standby draw empties 31.46 kJ in about 30 days.
/// let t = battery.standby_time(12.0);
/// assert!(t > SimDuration::from_hours(24 * 29));
/// assert!(t < SimDuration::from_hours(24 * 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_mj: f64,
}

impl Battery {
    /// The paper's testbed battery: 3.8 V, 2 300 mAh ⇒ 31 464 J.
    pub fn nexus5() -> Self {
        Battery::from_voltage_and_charge(3.8, 2_300.0)
    }

    /// A battery with the given usable capacity in millijoules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mj` is not positive.
    pub fn with_capacity_mj(capacity_mj: f64) -> Self {
        assert!(capacity_mj > 0.0, "battery capacity must be positive");
        Battery { capacity_mj }
    }

    /// A battery from nominal voltage (V) and charge (mAh).
    pub fn from_voltage_and_charge(volts: f64, milliamp_hours: f64) -> Self {
        // mAh * 3600 = mAs; mAs * V = mJ.
        Battery::with_capacity_mj(milliamp_hours * 3_600.0 * volts)
    }

    /// Usable capacity in millijoules.
    pub fn capacity_mj(&self) -> f64 {
        self.capacity_mj
    }

    /// How long the battery sustains a constant average power draw (mW).
    ///
    /// # Panics
    ///
    /// Panics if `average_power_mw` is not positive.
    pub fn standby_time(&self, average_power_mw: f64) -> SimDuration {
        assert!(average_power_mw > 0.0, "average power must be positive");
        SimDuration::from_millis((self.capacity_mj / average_power_mw * 1_000.0).round() as u64)
    }

    /// The relative standby-time extension achieved by reducing the
    /// average power from `baseline_mw` to `improved_mw` — e.g. `0.25`
    /// means standby lasts 25 % longer (the paper's "one-fourth").
    ///
    /// # Panics
    ///
    /// Panics if either power is not positive.
    pub fn standby_extension(&self, baseline_mw: f64, improved_mw: f64) -> f64 {
        assert!(baseline_mw > 0.0 && improved_mw > 0.0, "powers must be positive");
        baseline_mw / improved_mw - 1.0
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "battery {:.0} J", self.capacity_mj / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus5_capacity() {
        let b = Battery::nexus5();
        assert!((b.capacity_mj() - 31_464_000.0).abs() < 1.0);
    }

    #[test]
    fn standby_time_scales_inversely_with_power() {
        let b = Battery::with_capacity_mj(1_000_000.0);
        let t1 = b.standby_time(10.0);
        let t2 = b.standby_time(20.0);
        assert_eq!(t1.as_millis(), 2 * t2.as_millis());
    }

    #[test]
    fn extension_matches_the_paper_arithmetic() {
        // Saving 25 % of total energy (power 100 -> 75) prolongs standby by 1/3.
        let b = Battery::nexus5();
        assert!((b.standby_extension(100.0, 75.0) - 1.0 / 3.0).abs() < 1e-9);
        // Saving 20 % (100 -> 80) prolongs it by 1/4.
        assert!((b.standby_extension(100.0, 80.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_power_is_rejected() {
        let _ = Battery::nexus5().standby_time(0.0);
    }
}
