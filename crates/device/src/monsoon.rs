//! The simulated Monsoon power monitor: a transient power waveform.
//!
//! The paper measures "the smartphone's transient power and energy
//! consumption" with a Monsoon Solutions monitor (§4.1). The device's
//! [`EnergyMeter`](crate::energy::EnergyMeter) gives the totals; this
//! module records the *waveform* — the piecewise-constant power level
//! plus the instantaneous energy impulses (wake transitions, component
//! activations) — so a run can be plotted or exported, and so the meter
//! can be cross-checked: the waveform's integral must equal the meter's
//! total, exactly.

use std::io::{self, Write};

use simty_core::time::SimTime;

/// A recorded power waveform: step levels in mW plus energy impulses in
/// mJ.
///
/// # Examples
///
/// ```
/// use simty_core::time::SimTime;
/// use simty_device::monsoon::PowerTrace;
///
/// let mut trace = PowerTrace::new();
/// trace.record_level(SimTime::ZERO, 50.0);
/// trace.record_level(SimTime::from_secs(10), 160.0);
/// trace.record_impulse(SimTime::from_secs(10), 100.0);
/// // 10 s at 50 mW + 5 s at 160 mW + the 100 mJ impulse.
/// let mj = trace.energy_mj(SimTime::from_secs(15));
/// assert!((mj - (500.0 + 800.0 + 100.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTrace {
    levels: Vec<(SimTime, f64)>,
    impulses: Vec<(SimTime, f64)>,
}

impl PowerTrace {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Rebuilds a waveform from persisted samples (checkpoint restore).
    /// Both vectors must be in nondecreasing time order, as produced by
    /// [`levels`](Self::levels) and [`impulses`](Self::impulses).
    pub fn from_parts(levels: Vec<(SimTime, f64)>, impulses: Vec<(SimTime, f64)>) -> Self {
        PowerTrace { levels, impulses }
    }

    /// Records that the power level changed to `mw` at `t`. Consecutive
    /// identical levels coalesce.
    pub fn record_level(&mut self, t: SimTime, mw: f64) {
        if let Some((last_t, last_mw)) = self.levels.last().copied() {
            if (last_mw - mw).abs() < 1e-12 {
                return;
            }
            debug_assert!(t >= last_t, "waveform driven backwards");
            if last_t == t {
                // Same-instant change: overwrite the zero-length step.
                self.levels.pop();
                if let Some((_, prev)) = self.levels.last() {
                    if (prev - mw).abs() < 1e-12 {
                        return;
                    }
                }
            }
        }
        self.levels.push((t, mw));
    }

    /// Records an instantaneous energy impulse (wake transition or
    /// component activation) of `mj` at `t`.
    pub fn record_impulse(&mut self, t: SimTime, mj: f64) {
        self.impulses.push((t, mj));
    }

    /// The step levels `(start, mW)` in time order.
    pub fn levels(&self) -> &[(SimTime, f64)] {
        &self.levels
    }

    /// The impulses `(instant, mJ)` in time order.
    pub fn impulses(&self) -> &[(SimTime, f64)] {
        &self.impulses
    }

    /// The power level at `t` (0 before the first sample).
    pub fn level_at(&self, t: SimTime) -> f64 {
        match self.levels.partition_point(|(start, _)| *start <= t) {
            0 => 0.0,
            idx => self.levels[idx - 1].1,
        }
    }

    /// The highest recorded step level, in mW.
    pub fn peak_mw(&self) -> f64 {
        self.levels.iter().map(|(_, mw)| *mw).fold(0.0, f64::max)
    }

    /// Integrates the waveform from its first sample to `until`,
    /// including impulses at or before `until`. Equals the
    /// [`EnergyMeter`](crate::energy::EnergyMeter) total for the same run
    /// — the cross-check the integration tests enforce.
    pub fn energy_mj(&self, until: SimTime) -> f64 {
        let mut total: f64 = self
            .impulses
            .iter()
            .filter(|(t, _)| *t <= until)
            .map(|(_, mj)| *mj)
            .sum();
        for (i, (start, mw)) in self.levels.iter().enumerate() {
            if *start >= until {
                break;
            }
            let end = self
                .levels
                .get(i + 1)
                .map(|(t, _)| *t)
                .unwrap_or(until)
                .min(until);
            total += mw * end.saturating_since(*start).as_secs_f64();
        }
        total
    }

    /// Writes the waveform as CSV: `time_ms,kind,value` where kind is
    /// `level_mw` or `impulse_mj`, merged in time order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "time_ms,kind,value")?;
        let mut li = self.levels.iter().peekable();
        let mut ii = self.impulses.iter().peekable();
        loop {
            let take_level = match (li.peek(), ii.peek()) {
                (Some((lt, _)), Some((it, _))) => lt <= it,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_level {
                let (t, mw) = li.next().expect("peeked");
                writeln!(w, "{},level_mw,{mw}", t.as_millis())?;
            } else {
                let (t, mj) = ii.next().expect("peeked");
                writeln!(w, "{},impulse_mj,{mj}", t.as_millis())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_identical_levels() {
        let mut tr = PowerTrace::new();
        tr.record_level(SimTime::ZERO, 50.0);
        tr.record_level(SimTime::from_secs(1), 50.0);
        tr.record_level(SimTime::from_secs(2), 160.0);
        assert_eq!(tr.levels().len(), 2);
    }

    #[test]
    fn same_instant_change_keeps_the_last_level() {
        let mut tr = PowerTrace::new();
        tr.record_level(SimTime::ZERO, 50.0);
        tr.record_level(SimTime::from_secs(5), 160.0);
        tr.record_level(SimTime::from_secs(5), 310.0);
        assert_eq!(tr.levels().len(), 2);
        assert_eq!(tr.level_at(SimTime::from_secs(5)), 310.0);
        // Collapsing back to the previous level removes the step entirely.
        let mut tr = PowerTrace::new();
        tr.record_level(SimTime::ZERO, 50.0);
        tr.record_level(SimTime::from_secs(5), 160.0);
        tr.record_level(SimTime::from_secs(5), 50.0);
        assert_eq!(tr.levels().len(), 1);
    }

    #[test]
    fn level_lookup() {
        let mut tr = PowerTrace::new();
        assert_eq!(tr.level_at(SimTime::from_secs(1)), 0.0);
        tr.record_level(SimTime::from_secs(10), 50.0);
        tr.record_level(SimTime::from_secs(20), 160.0);
        assert_eq!(tr.level_at(SimTime::from_secs(9)), 0.0);
        assert_eq!(tr.level_at(SimTime::from_secs(10)), 50.0);
        assert_eq!(tr.level_at(SimTime::from_secs(19)), 50.0);
        assert_eq!(tr.level_at(SimTime::from_secs(25)), 160.0);
        assert_eq!(tr.peak_mw(), 160.0);
    }

    #[test]
    fn integral_with_partial_last_segment() {
        let mut tr = PowerTrace::new();
        tr.record_level(SimTime::ZERO, 100.0);
        tr.record_level(SimTime::from_secs(10), 200.0);
        // Integrate to 12 s: 10 s x 100 + 2 s x 200.
        assert!((tr.energy_mj(SimTime::from_secs(12)) - 1_400.0).abs() < 1e-9);
        // Integrate to before the second step.
        assert!((tr.energy_mj(SimTime::from_secs(5)) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn impulses_filter_by_time() {
        let mut tr = PowerTrace::new();
        tr.record_impulse(SimTime::from_secs(1), 100.0);
        tr.record_impulse(SimTime::from_secs(9), 200.0);
        assert!((tr.energy_mj(SimTime::from_secs(5)) - 100.0).abs() < 1e-9);
        assert!((tr.energy_mj(SimTime::from_secs(10)) - 300.0).abs() < 1e-9);
        assert_eq!(tr.impulses().len(), 2);
    }

    #[test]
    fn csv_is_time_merged() {
        let mut tr = PowerTrace::new();
        tr.record_level(SimTime::ZERO, 50.0);
        tr.record_impulse(SimTime::from_secs(1), 100.0);
        tr.record_level(SimTime::from_secs(2), 160.0);
        let mut buf = Vec::new();
        tr.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("level_mw"));
        assert!(lines[2].contains("impulse_mj"));
        assert!(lines[3].starts_with("2000,"));
    }
}
