//! Energy metering: the simulated Monsoon power monitor.
//!
//! The meter integrates piecewise-constant power exactly and keeps a
//! per-category breakdown matching the paper's Fig. 3 presentation:
//! sleep energy, wake-transition energy, awake-base (CPU/memory) energy,
//! and per-component wakelock energy.

use std::fmt;

use simty_core::hardware::{HardwareComponent, HardwareSet};
use simty_core::time::SimDuration;

use crate::power::PowerModel;

/// Accumulated energy by category, in millijoules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    sleep_mj: f64,
    transition_mj: f64,
    awake_base_mj: f64,
    component_mj: [f64; HardwareComponent::ALL.len()],
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Accrues sleep-state energy over `dt`.
    pub fn accrue_sleep(&mut self, model: &PowerModel, dt: SimDuration) {
        self.sleep_mj += model.sleep_power_mw * dt.as_secs_f64();
    }

    /// Accrues awake-state energy over `dt`: base power plus the active
    /// power of every component in `active`.
    pub fn accrue_awake(&mut self, model: &PowerModel, active: HardwareSet, dt: SimDuration) {
        let secs = dt.as_secs_f64();
        self.awake_base_mj += model.awake_base_power_mw * secs;
        for c in active {
            self.component_mj[PowerModel::index(c)] += model.component(c).active_power_mw * secs;
        }
    }

    /// Charges one sleep→awake transition.
    pub fn charge_wake_transition(&mut self, model: &PowerModel) {
        self.transition_mj += model.wake_transition_energy_mj;
    }

    /// Charges one component activation.
    pub fn charge_activation(&mut self, model: &PowerModel, c: HardwareComponent) {
        self.component_mj[PowerModel::index(c)] += model.component(c).activation_energy_mj;
    }

    /// The raw accumulators `(sleep, transition, awake_base, component)`,
    /// in mJ (checkpoint capture).
    pub fn parts(&self) -> (f64, f64, f64, [f64; HardwareComponent::ALL.len()]) {
        (
            self.sleep_mj,
            self.transition_mj,
            self.awake_base_mj,
            self.component_mj,
        )
    }

    /// Rebuilds a meter from persisted accumulators (checkpoint restore).
    /// Exact bit-for-bit restoration of the accumulators is what makes a
    /// resumed run's energy report byte-identical to the original.
    pub fn from_parts(
        sleep_mj: f64,
        transition_mj: f64,
        awake_base_mj: f64,
        component_mj: [f64; HardwareComponent::ALL.len()],
    ) -> Self {
        EnergyMeter {
            sleep_mj,
            transition_mj,
            awake_base_mj,
            component_mj,
        }
    }

    /// A snapshot of the totals.
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            sleep_mj: self.sleep_mj,
            transition_mj: self.transition_mj,
            awake_base_mj: self.awake_base_mj,
            component_mj: self.component_mj,
        }
    }
}

/// An immutable energy breakdown snapshot (all values in mJ).
///
/// # Examples
///
/// ```
/// use simty_device::energy::EnergyMeter;
///
/// let meter = EnergyMeter::new();
/// let b = meter.breakdown();
/// assert_eq!(b.total_mj(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy spent asleep.
    pub sleep_mj: f64,
    /// Energy spent on sleep→awake transitions.
    pub transition_mj: f64,
    /// Energy spent on the essential awake components (CPU, memory).
    pub awake_base_mj: f64,
    /// Energy per wakelockable component, indexed per
    /// [`HardwareComponent::ALL`].
    component_mj: [f64; HardwareComponent::ALL.len()],
}

impl EnergyBreakdown {
    /// Energy attributed to one component.
    pub fn component_mj(&self, c: HardwareComponent) -> f64 {
        self.component_mj[PowerModel::index(c)]
    }

    /// Total energy across all wakelockable components.
    pub fn hardware_mj(&self) -> f64 {
        self.component_mj.iter().sum()
    }

    /// "Energy consumed to keep the smartphone awake" (the paper's Fig. 3
    /// awake category): everything except sleep energy.
    pub fn awake_related_mj(&self) -> f64 {
        self.transition_mj + self.awake_base_mj + self.hardware_mj()
    }

    /// Grand total.
    pub fn total_mj(&self) -> f64 {
        self.sleep_mj + self.awake_related_mj()
    }

    /// Average power over a span (mW).
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn average_power_mw(&self, span: SimDuration) -> f64 {
        assert!(!span.is_zero(), "average power over a zero span");
        self.total_mj() / span.as_secs_f64()
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "energy breakdown (mJ):")?;
        writeln!(f, "  sleep       {:>12.1}", self.sleep_mj)?;
        writeln!(f, "  transitions {:>12.1}", self.transition_mj)?;
        writeln!(f, "  awake base  {:>12.1}", self.awake_base_mj)?;
        for c in HardwareComponent::ALL {
            let e = self.component_mj(c);
            if e > 0.0 {
                writeln!(f, "  {:<11} {e:>12.1}", c.name())?;
            }
        }
        write!(f, "  total       {:>12.1}", self.total_mj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrual_is_power_times_time() {
        let model = PowerModel::nexus5();
        let mut m = EnergyMeter::new();
        m.accrue_sleep(&model, SimDuration::from_secs(100));
        let b = m.breakdown();
        assert!((b.sleep_mj - 50.0 * 100.0).abs() < 1e-9);

        m.accrue_awake(
            &model,
            HardwareComponent::Wifi.into(),
            SimDuration::from_secs(2),
        );
        let b = m.breakdown();
        assert!((b.awake_base_mj - 320.0).abs() < 1e-9);
        assert!((b.component_mj(HardwareComponent::Wifi) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn charges_are_one_time() {
        let model = PowerModel::nexus5();
        let mut m = EnergyMeter::new();
        m.charge_wake_transition(&model);
        m.charge_activation(&model, HardwareComponent::Wifi);
        let b = m.breakdown();
        assert!((b.transition_mj - 100.0).abs() < 1e-9);
        assert!((b.component_mj(HardwareComponent::Wifi) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn totals_add_up() {
        let model = PowerModel::nexus5();
        let mut m = EnergyMeter::new();
        m.accrue_sleep(&model, SimDuration::from_secs(10));
        m.charge_wake_transition(&model);
        m.accrue_awake(
            &model,
            HardwareComponent::Speaker | HardwareComponent::Vibrator,
            SimDuration::from_secs(1),
        );
        let b = m.breakdown();
        let expected_awake = 100.0 + 160.0 + 10.0 + 20.0;
        let expected_sleep = 50.0 * 10.0;
        assert!((b.awake_related_mj() - expected_awake).abs() < 1e-9);
        assert!((b.total_mj() - (expected_sleep + expected_awake)).abs() < 1e-9);
        assert!((b.hardware_mj() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn average_power() {
        let model = PowerModel::nexus5();
        let mut m = EnergyMeter::new();
        m.accrue_sleep(&model, SimDuration::from_secs(100));
        let b = m.breakdown();
        assert!((b.average_power_mw(SimDuration::from_secs(100)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_total() {
        let b = EnergyMeter::new().breakdown();
        assert!(b.to_string().contains("total"));
    }
}
