//! # simty-device — the connected-standby device substrate
//!
//! The paper evaluates SIMTY on a physical LG Nexus 5 measured with a
//! Monsoon power monitor. This crate is the synthetic equivalent: a
//! [`Device`] state machine (asleep / waking / awake)
//! with a [`WakeLockTable`], an exact
//! [`EnergyMeter`] playing the role of the power
//! monitor, and a [`PowerModel`] calibrated to the
//! paper's three published measurements (180 mJ bare wakeup, 3 650 mJ WPS
//! positioning, 400 mJ calendar notification).
//!
//! # Examples
//!
//! ```
//! use simty_core::hardware::HardwareComponent;
//! use simty_core::time::{SimDuration, SimTime};
//! use simty_device::{Device, PowerModel};
//!
//! let mut device = Device::new(PowerModel::nexus5());
//! let ready = device.request_wake(SimTime::from_secs(60));
//! device.complete_wake(ready);
//! device.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
//! let end = device.next_internal_event().expect("task end is scheduled");
//! device.release_expired(end);
//! let sleep_at = device.earliest_sleep_time().expect("device is idle");
//! assert!(device.try_sleep(sleep_at));
//! println!("{}", device.energy());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod battery;
pub mod device;
pub mod energy;
pub mod monsoon;
pub mod power;
pub mod wakelock;

pub use battery::Battery;
pub use device::{Device, DevicePowerState};
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use monsoon::PowerTrace;
pub use power::{ComponentPower, PowerModel};
pub use wakelock::WakeLockTable;
