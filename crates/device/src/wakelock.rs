//! The wakelock table: which components are held active, and until when.
//!
//! Mirrors Android's hardware `WakeLock` API as the paper instruments it:
//! a task acquires locks on its hardware set right after its alarm is
//! delivered and holds them for the task duration. Locks on the same
//! component coalesce — the component stays active until the latest
//! expiry, and its activation cost is paid only on the inactive→active
//! edge (which is exactly the amortization hardware-similar alignment
//! exploits).

use simty_core::hardware::{HardwareComponent, HardwareSet};
use simty_core::time::SimTime;

/// Per-component wakelock expiries.
///
/// A component is active at time `t` while `t < expiry`. The owner must
/// call [`release_expired`](Self::release_expired) at (or after) each
/// expiry instant before querying the active set, which the simulator
/// guarantees by scheduling an event at every expiry.
///
/// # Examples
///
/// ```
/// use simty_core::hardware::HardwareComponent;
/// use simty_core::time::SimTime;
/// use simty_device::wakelock::WakeLockTable;
///
/// let mut table = WakeLockTable::new();
/// let newly = table.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(5));
/// assert!(newly.contains(HardwareComponent::Wifi));
/// assert_eq!(table.next_expiry(), Some(SimTime::from_secs(5)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WakeLockTable {
    expiry: [Option<SimTime>; HardwareComponent::ALL.len()],
    activations: [u64; HardwareComponent::ALL.len()],
}

impl WakeLockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        WakeLockTable::default()
    }

    /// The per-component expiries and activation counters, indexed per
    /// [`HardwareComponent::ALL`] (checkpoint capture).
    pub fn parts(
        &self,
    ) -> (
        [Option<SimTime>; HardwareComponent::ALL.len()],
        [u64; HardwareComponent::ALL.len()],
    ) {
        (self.expiry, self.activations)
    }

    /// Rebuilds a table from persisted expiries and activation counters
    /// (checkpoint restore).
    pub fn from_parts(
        expiry: [Option<SimTime>; HardwareComponent::ALL.len()],
        activations: [u64; HardwareComponent::ALL.len()],
    ) -> Self {
        WakeLockTable {
            expiry,
            activations,
        }
    }

    /// Acquires (or extends) locks on every component in `set` until
    /// `until`, returning the components that were newly activated —
    /// the caller charges their activation energy.
    pub fn acquire(&mut self, set: HardwareSet, until: SimTime) -> HardwareSet {
        let mut newly = HardwareSet::empty();
        for c in set {
            let idx = Self::index(c);
            match self.expiry[idx] {
                Some(existing) => {
                    // Coalesce: keep the later expiry; no activation cost.
                    self.expiry[idx] = Some(existing.max(until));
                }
                None => {
                    self.expiry[idx] = Some(until);
                    self.activations[idx] += 1;
                    newly.insert(c);
                }
            }
        }
        newly
    }

    /// The set of currently active components.
    pub fn active(&self) -> HardwareSet {
        HardwareComponent::ALL
            .iter()
            .copied()
            .filter(|c| self.expiry[Self::index(*c)].is_some())
            .collect()
    }

    /// Whether no component is held.
    pub fn is_idle(&self) -> bool {
        self.expiry.iter().all(Option::is_none)
    }

    /// The earliest expiry among the active components.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.expiry.iter().flatten().copied().min()
    }

    /// Releases every lock whose expiry is at or before `now`, returning
    /// the deactivated components.
    pub fn release_expired(&mut self, now: SimTime) -> HardwareSet {
        let mut released = HardwareSet::empty();
        for c in HardwareComponent::ALL {
            let idx = Self::index(c);
            if let Some(expiry) = self.expiry[idx] {
                if expiry <= now {
                    self.expiry[idx] = None;
                    released.insert(c);
                }
            }
        }
        released
    }

    /// Drops every lock immediately (used when injecting faults such as a
    /// user force-stopping an app).
    pub fn release_all(&mut self) -> HardwareSet {
        let active = self.active();
        self.expiry = Default::default();
        active
    }

    /// Releases one component immediately, regardless of its expiry.
    /// Returns whether it was active. Used by the per-offender failure
    /// remedy to drop exactly the locks no surviving task still claims.
    pub fn release_component(&mut self, c: HardwareComponent) -> bool {
        self.expiry[Self::index(c)].take().is_some()
    }

    /// Clamps an active component's expiry down to `until` (never
    /// extends, never reactivates). No-op if the component is inactive or
    /// already expires earlier. Used when an offender's share of a
    /// coalesced lock is revoked but other holders keep the component.
    pub fn clamp_expiry(&mut self, c: HardwareComponent, until: SimTime) {
        let idx = Self::index(c);
        if let Some(existing) = self.expiry[idx] {
            self.expiry[idx] = Some(existing.min(until));
        }
    }

    /// How many times `c` transitioned from inactive to active — the
    /// numerator of the paper's Table 4 for that hardware row.
    pub fn activation_count(&self, c: HardwareComponent) -> u64 {
        self.activations[Self::index(c)]
    }

    fn index(c: HardwareComponent) -> usize {
        HardwareComponent::ALL
            .iter()
            .position(|x| *x == c)
            .expect("component is in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_lifecycle() {
        let mut t = WakeLockTable::new();
        assert!(t.is_idle());
        let newly = t.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(10));
        assert_eq!(newly, HardwareComponent::Wifi.into());
        assert!(!t.is_idle());
        assert_eq!(t.active(), HardwareComponent::Wifi.into());
        let released = t.release_expired(SimTime::from_secs(10));
        assert_eq!(released, HardwareComponent::Wifi.into());
        assert!(t.is_idle());
    }

    #[test]
    fn overlapping_acquires_coalesce_without_reactivation() {
        let mut t = WakeLockTable::new();
        t.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(10));
        // Second task extends the lock; no new activation.
        let newly = t.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(15));
        assert!(newly.is_empty());
        assert_eq!(t.activation_count(HardwareComponent::Wifi), 1);
        // Not released at the first task's end.
        assert!(t.release_expired(SimTime::from_secs(10)).is_empty());
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(15)));
    }

    #[test]
    fn extension_never_shortens() {
        let mut t = WakeLockTable::new();
        t.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(20));
        t.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(10));
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(20)));
    }

    #[test]
    fn activation_counts_per_component() {
        let mut t = WakeLockTable::new();
        for round in 1..=3u64 {
            t.acquire(
                HardwareComponent::Wifi | HardwareComponent::Cellular,
                SimTime::from_secs(round * 10),
            );
            t.release_expired(SimTime::from_secs(round * 10));
        }
        assert_eq!(t.activation_count(HardwareComponent::Wifi), 3);
        assert_eq!(t.activation_count(HardwareComponent::Cellular), 3);
        assert_eq!(t.activation_count(HardwareComponent::Gps), 0);
    }

    #[test]
    fn next_expiry_is_the_minimum() {
        let mut t = WakeLockTable::new();
        t.acquire(HardwareComponent::Wifi.into(), SimTime::from_secs(30));
        t.acquire(HardwareComponent::Vibrator.into(), SimTime::from_secs(5));
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn release_all_drops_everything() {
        let mut t = WakeLockTable::new();
        t.acquire(
            HardwareComponent::Wifi | HardwareComponent::Gps,
            SimTime::from_secs(30),
        );
        let released = t.release_all();
        assert_eq!(released.len(), 2);
        assert!(t.is_idle());
    }
}
