//! The device state machine: asleep / waking / awake, with exact energy
//! accounting.
//!
//! The device follows the aggressive sleeping philosophy of mobile
//! systems (§2.1): it is asleep unless awakened by the real-time clock
//! (wakeup alarms) or an external event, stays awake while any task holds
//! it busy, lingers briefly, and falls back asleep.
//!
//! The owner (the simulator engine) must call the mutating methods in
//! nondecreasing time order; every method first integrates energy up to
//! the call instant, so the meter is exact as long as the owner calls in
//! at every instant the active component set changes (which the engine
//! guarantees by scheduling an event per wakelock expiry).

use std::fmt;

use simty_core::hardware::{HardwareComponent, HardwareSet};
use simty_core::time::{SimDuration, SimTime};

use crate::energy::{EnergyBreakdown, EnergyMeter};
use crate::monsoon::PowerTrace;
use crate::power::PowerModel;
use crate::wakelock::WakeLockTable;

/// The device's power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePowerState {
    /// Dormant: only the sleep-floor power is drawn.
    Asleep,
    /// Transitioning out of sleep after an RTC interrupt; alarms can be
    /// delivered once the transition completes at `until`.
    Waking {
        /// When the transition completes.
        until: SimTime,
    },
    /// Fully awake: base power plus any wakelocked components.
    Awake,
}

/// The complete resumable state of a [`Device`] (checkpoint capture),
/// minus the power model, which lives in the simulation config.
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    /// The power state at capture time.
    pub state: DevicePowerState,
    /// The energy accumulators.
    pub meter: EnergyMeter,
    /// The wakelock table.
    pub locks: WakeLockTable,
    /// The instant up to which energy has been integrated.
    pub clock: SimTime,
    /// The CPU-busy deadline.
    pub cpu_busy_until: SimTime,
    /// When the device last became idle, if it currently is.
    pub idle_since: Option<SimTime>,
    /// Sleep→awake transitions so far.
    pub wake_count: u64,
    /// Total time spent waking or awake.
    pub awake_time: SimDuration,
    /// The recorded power waveform, if a monitor was attached.
    pub monitor: Option<PowerTrace>,
}

/// A simulated smartphone in connected standby.
///
/// # Examples
///
/// ```
/// use simty_core::time::SimTime;
/// use simty_device::device::Device;
/// use simty_device::power::PowerModel;
///
/// let mut device = Device::new(PowerModel::nexus5());
/// let ready = device.request_wake(SimTime::from_secs(60));
/// device.complete_wake(ready);
/// assert!(device.is_awake());
/// assert_eq!(device.wake_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    model: PowerModel,
    state: DevicePowerState,
    meter: EnergyMeter,
    locks: WakeLockTable,
    clock: SimTime,
    cpu_busy_until: SimTime,
    idle_since: Option<SimTime>,
    wake_count: u64,
    awake_time: SimDuration,
    monitor: Option<PowerTrace>,
}

impl Device {
    /// Creates a device, asleep at t = 0.
    pub fn new(model: PowerModel) -> Self {
        Device {
            model,
            state: DevicePowerState::Asleep,
            meter: EnergyMeter::new(),
            locks: WakeLockTable::new(),
            clock: SimTime::ZERO,
            cpu_busy_until: SimTime::ZERO,
            idle_since: None,
            wake_count: 0,
            awake_time: SimDuration::ZERO,
            monitor: None,
        }
    }

    /// Captures the device's complete resumable state.
    pub fn snapshot(&self) -> DeviceSnapshot {
        DeviceSnapshot {
            state: self.state,
            meter: self.meter.clone(),
            locks: self.locks.clone(),
            clock: self.clock,
            cpu_busy_until: self.cpu_busy_until,
            idle_since: self.idle_since,
            wake_count: self.wake_count,
            awake_time: self.awake_time,
            monitor: self.monitor.clone(),
        }
    }

    /// Rebuilds a device from a persisted snapshot under `model`
    /// (checkpoint restore).
    pub fn restore(model: PowerModel, snapshot: DeviceSnapshot) -> Self {
        Device {
            model,
            state: snapshot.state,
            meter: snapshot.meter,
            locks: snapshot.locks,
            clock: snapshot.clock,
            cpu_busy_until: snapshot.cpu_busy_until,
            idle_since: snapshot.idle_since,
            wake_count: snapshot.wake_count,
            awake_time: snapshot.awake_time,
            monitor: snapshot.monitor,
        }
    }

    /// Hard-kills the device at `now`: every wakelock drops, the CPU-busy
    /// deadline clears, and the device falls straight to the sleep-floor
    /// power state (the outage accrues sleep-floor power, modelling the
    /// powered-off baseline). Returns the components that were active.
    ///
    /// No wake-transition energy is charged and no activation state
    /// survives — boot-time re-acquisition pays full activation costs,
    /// which is exactly the recovery overhead a reboot plan measures.
    pub fn reboot(&mut self, now: SimTime) -> HardwareSet {
        self.advance_to(now);
        let released = self.locks.release_all();
        self.cpu_busy_until = now;
        self.idle_since = None;
        self.state = DevicePowerState::Asleep;
        self.sample_monitor(now);
        released
    }

    /// Attaches a simulated Monsoon power monitor, recording the power
    /// waveform from the current instant on.
    pub fn attach_monitor(&mut self) {
        let mut trace = PowerTrace::new();
        trace.record_level(self.clock, self.current_power_mw());
        self.monitor = Some(trace);
    }

    /// The recorded power waveform, if a monitor is attached.
    pub fn monitor(&self) -> Option<&PowerTrace> {
        self.monitor.as_ref()
    }

    /// The instantaneous power draw (mW): the sleep floor when asleep,
    /// otherwise the awake base plus every active component.
    pub fn current_power_mw(&self) -> f64 {
        match self.state {
            DevicePowerState::Asleep => self.model.sleep_power_mw,
            DevicePowerState::Waking { .. } | DevicePowerState::Awake => {
                self.model.awake_base_power_mw
                    + self
                        .locks
                        .active()
                        .iter()
                        .map(|c| self.model.component(c).active_power_mw)
                        .sum::<f64>()
            }
        }
    }

    fn sample_monitor(&mut self, now: SimTime) {
        let level = self.current_power_mw();
        if let Some(m) = &mut self.monitor {
            m.record_level(now, level);
        }
    }

    fn impulse_monitor(&mut self, now: SimTime, mj: f64) {
        if let Some(m) = &mut self.monitor {
            m.record_impulse(now, mj);
        }
    }

    /// The power model in force.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The current power state.
    pub fn state(&self) -> DevicePowerState {
        self.state
    }

    /// Whether the device is fully awake (able to deliver alarms).
    pub fn is_awake(&self) -> bool {
        matches!(self.state, DevicePowerState::Awake)
    }

    /// Whether the device is asleep.
    pub fn is_asleep(&self) -> bool {
        matches!(self.state, DevicePowerState::Asleep)
    }

    /// The instant up to which energy has been integrated.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of sleep→awake transitions so far — the paper's CPU wakeup
    /// count (Table 4).
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// Total time spent waking or awake.
    pub fn awake_time(&self) -> SimDuration {
        self.awake_time
    }

    /// Number of inactive→active transitions for a component — the
    /// paper's per-hardware wakeup count (Table 4).
    pub fn activation_count(&self, c: HardwareComponent) -> u64 {
        self.locks.activation_count(c)
    }

    /// The currently active component set.
    pub fn active_components(&self) -> HardwareSet {
        self.locks.active()
    }

    /// The energy breakdown so far.
    pub fn energy(&self) -> EnergyBreakdown {
        self.meter.breakdown()
    }

    /// Integrates energy up to `now` without changing state.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the device clock.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now
            .checked_since(self.clock)
            .expect("device driven backwards in time");
        if dt.is_zero() {
            return;
        }
        match self.state {
            DevicePowerState::Asleep => self.meter.accrue_sleep(&self.model, dt),
            DevicePowerState::Waking { .. } | DevicePowerState::Awake => {
                self.meter.accrue_awake(&self.model, self.locks.active(), dt);
                self.awake_time += dt;
            }
        }
        self.clock = now;
    }

    /// Requests that the device be awake, returning the instant it will
    /// be ready to deliver alarms: `now` if already awake, the pending
    /// transition end if waking, or `now + wake_latency` after paying the
    /// transition energy if asleep.
    pub fn request_wake(&mut self, now: SimTime) -> SimTime {
        self.advance_to(now);
        match self.state {
            DevicePowerState::Awake => now,
            DevicePowerState::Waking { until } => until,
            DevicePowerState::Asleep => {
                self.meter.charge_wake_transition(&self.model);
                self.impulse_monitor(now, self.model.wake_transition_energy_mj);
                self.wake_count += 1;
                let until = now + self.model.wake_latency;
                self.state = DevicePowerState::Waking { until };
                self.sample_monitor(now);
                until
            }
        }
    }

    /// Completes a pending wake transition. No-op unless the device is in
    /// [`DevicePowerState::Waking`] and `now` has reached its end.
    pub fn complete_wake(&mut self, now: SimTime) {
        self.advance_to(now);
        if let DevicePowerState::Waking { until } = self.state {
            if now >= until {
                self.state = DevicePowerState::Awake;
                self.refresh_idle(now);
            }
        }
    }

    /// Runs a delivered task: holds the CPU busy and wakelocks `set`
    /// until `now + duration`, charging activation energy for components
    /// that were inactive. Returns the components this task newly
    /// activated (whose activation energy it triggered).
    ///
    /// # Panics
    ///
    /// Panics if the device is not awake — alarms are only delivered to
    /// an awake device.
    pub fn run_task(&mut self, set: HardwareSet, duration: SimDuration, now: SimTime) -> HardwareSet {
        self.advance_to(now);
        assert!(
            self.is_awake(),
            "task delivered while the device is not awake"
        );
        let until = now + duration;
        self.cpu_busy_until = self.cpu_busy_until.max(until);
        let newly = self.locks.acquire(set, until);
        for c in newly {
            self.meter.charge_activation(&self.model, c);
            self.impulse_monitor(now, self.model.component(c).activation_energy_mj);
        }
        self.idle_since = None;
        self.sample_monitor(now);
        newly
    }

    /// Releases wakelocks that expired at or before `now`, returning the
    /// deactivated components.
    pub fn release_expired(&mut self, now: SimTime) -> HardwareSet {
        self.advance_to(now);
        let released = self.locks.release_expired(now);
        self.refresh_idle(now);
        self.sample_monitor(now);
        released
    }

    /// The earliest future instant the device has work scheduled on its
    /// own (a pending wake transition, a busy CPU, or a wakelock expiry).
    pub fn next_internal_event(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > self.clock {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        if let DevicePowerState::Waking { until } = self.state {
            consider(until);
        }
        if let Some(t) = self.locks.next_expiry() {
            consider(t);
        }
        if self.cpu_busy_until > self.clock {
            consider(self.cpu_busy_until);
        }
        next
    }

    /// When the device may fall asleep: `idle_since + sleep_linger`, if it
    /// is awake and idle.
    pub fn earliest_sleep_time(&self) -> Option<SimTime> {
        match (self.state, self.idle_since) {
            (DevicePowerState::Awake, Some(since)) => Some(since + self.model.sleep_linger),
            _ => None,
        }
    }

    /// Attempts to fall asleep at `now`; succeeds only if the device is
    /// awake, idle, and has lingered long enough.
    pub fn try_sleep(&mut self, now: SimTime) -> bool {
        self.advance_to(now);
        match self.earliest_sleep_time() {
            Some(t) if now >= t => {
                self.state = DevicePowerState::Asleep;
                self.idle_since = None;
                self.sample_monitor(now);
                true
            }
            _ => false,
        }
    }

    /// Extends already-held wakelocks on `set` until at least `until`
    /// without marking the CPU busy — failure injection: a leaked lock
    /// outliving its task (the no-sleep bugs of the paper's §1).
    /// Components in `set` that happen to be inactive are activated and
    /// charged like a normal acquire.
    pub fn leak_locks(&mut self, set: HardwareSet, until: SimTime, now: SimTime) {
        self.advance_to(now);
        let newly = self.locks.acquire(set, until);
        for c in newly {
            self.meter.charge_activation(&self.model, c);
            self.impulse_monitor(now, self.model.component(c).activation_energy_mj);
        }
        if !set.is_empty() {
            self.idle_since = None;
        }
        self.sample_monitor(now);
    }

    /// Rescopes the lock table and the CPU-busy deadline to the given
    /// surviving holds — the per-offender failure remedy: one app's
    /// leaked locks are revoked while every other task keeps its own.
    ///
    /// Each surviving hold is a hardware set plus the instant it lets go.
    /// Active components claimed by no surviving hold are released now
    /// and returned; claimed components have their expiries clamped down
    /// to the latest surviving claim. The CPU-busy deadline is likewise
    /// clamped to the survivors (never extended).
    pub fn rescope_holds(
        &mut self,
        survivors: &[(HardwareSet, SimTime)],
        now: SimTime,
    ) -> HardwareSet {
        self.advance_to(now);
        let mut released = HardwareSet::empty();
        for c in self.locks.active() {
            let latest = survivors
                .iter()
                .filter(|(set, until)| set.contains(c) && *until > now)
                .map(|(_, until)| *until)
                .max();
            match latest {
                Some(t) => self.locks.clamp_expiry(c, t),
                None => {
                    self.locks.release_component(c);
                    released.insert(c);
                }
            }
        }
        let mut cpu_until = now;
        for (_, until) in survivors {
            if *until > now {
                cpu_until = cpu_until.max(*until);
            }
        }
        self.cpu_busy_until = self.cpu_busy_until.min(cpu_until).max(now);
        self.refresh_idle(now);
        self.sample_monitor(now);
        released
    }

    /// Force-releases every wakelock (failure injection: e.g. the user
    /// force-stops all apps). The CPU busy deadline is cleared too.
    pub fn force_release_all(&mut self, now: SimTime) -> HardwareSet {
        self.advance_to(now);
        let released = self.locks.release_all();
        self.cpu_busy_until = now;
        self.refresh_idle(now);
        self.sample_monitor(now);
        released
    }

    fn refresh_idle(&mut self, now: SimTime) {
        if self.is_awake() && self.locks.is_idle() && now >= self.cpu_busy_until {
            if self.idle_since.is_none() {
                self.idle_since = Some(now);
            }
        } else {
            self.idle_since = None;
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device@{} {:?}, {} wakeups, active {}",
            self.clock,
            self.state,
            self.wake_count,
            self.locks.active()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(PowerModel::nexus5())
    }

    /// Walks a device through one bare wakeup cycle and returns it.
    fn bare_cycle(start_s: u64) -> Device {
        let mut d = device();
        let t0 = SimTime::from_secs(start_s);
        let ready = d.request_wake(t0);
        d.complete_wake(ready);
        let sleep_at = d.earliest_sleep_time().unwrap();
        assert!(d.try_sleep(sleep_at));
        d
    }

    #[test]
    fn bare_wakeup_costs_180_mj_on_top_of_sleep() {
        // 60 s asleep, then a bare wake/sleep cycle.
        let d = bare_cycle(60);
        let b = d.energy();
        assert!((b.sleep_mj - 50.0 * 60.0).abs() < 1e-9);
        assert!(
            (b.awake_related_mj() - 180.0).abs() < 1e-6,
            "bare wakeup cost {}",
            b.awake_related_mj()
        );
        assert_eq!(d.wake_count(), 1);
    }

    #[test]
    fn wps_task_costs_3650_mj() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(
            HardwareComponent::Wps.into(),
            SimDuration::from_secs(8),
            ready,
        );
        let end = d.next_internal_event().unwrap();
        d.release_expired(end);
        let sleep_at = d.earliest_sleep_time().unwrap();
        assert!(d.try_sleep(sleep_at));
        let awake = d.energy().awake_related_mj();
        assert!((awake - 3650.0).abs() < 1e-6, "got {awake}");
    }

    #[test]
    fn aligned_tasks_share_wake_and_activation_costs() {
        // Two identical Wi-Fi tasks delivered at the same wakeup must cost
        // far less than twice a solo delivery.
        let solo = {
            let mut d = device();
            let ready = d.request_wake(SimTime::from_secs(10));
            d.complete_wake(ready);
            d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
            d.release_expired(d.next_internal_event().unwrap());
            assert!(d.try_sleep(d.earliest_sleep_time().unwrap()));
            d.energy().awake_related_mj()
        };
        let aligned = {
            let mut d = device();
            let ready = d.request_wake(SimTime::from_secs(10));
            d.complete_wake(ready);
            d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
            d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
            d.release_expired(d.next_internal_event().unwrap());
            assert!(d.try_sleep(d.earliest_sleep_time().unwrap()));
            d.energy().awake_related_mj()
        };
        // Perfect alignment: the pair costs the same as one delivery.
        assert!((aligned - solo).abs() < 1e-6);
        assert!(aligned < 2.0 * solo - 100.0);
    }

    #[test]
    fn request_wake_while_waking_returns_pending_deadline() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        let again = d.request_wake(SimTime::from_millis(10_100));
        assert_eq!(ready, again);
        assert_eq!(d.wake_count(), 1);
    }

    #[test]
    fn request_wake_while_awake_is_free() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        let e_before = d.energy().transition_mj;
        let again = d.request_wake(ready);
        assert_eq!(again, ready);
        assert_eq!(d.energy().transition_mj, e_before);
        assert_eq!(d.wake_count(), 1);
    }

    #[test]
    fn cannot_sleep_while_task_is_running() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(HardwareSet::empty(), SimDuration::from_secs(5), ready);
        assert_eq!(d.earliest_sleep_time(), None);
        assert!(!d.try_sleep(ready + SimDuration::from_secs(2)));
        // After the CPU-busy deadline the device becomes idle.
        let end = d.next_internal_event().unwrap();
        assert_eq!(end, ready + SimDuration::from_secs(5));
        d.release_expired(end);
        assert!(d.earliest_sleep_time().is_some());
    }

    #[test]
    #[should_panic(expected = "not awake")]
    fn task_delivery_requires_awake_device() {
        let mut d = device();
        d.run_task(HardwareSet::empty(), SimDuration::from_secs(1), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "backwards in time")]
    fn advance_is_monotonic() {
        let mut d = device();
        d.advance_to(SimTime::from_secs(10));
        d.advance_to(SimTime::from_secs(5));
    }

    #[test]
    fn overlapping_tasks_activate_components_once() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
        d.run_task(
            HardwareComponent::Wifi.into(),
            SimDuration::from_secs(5),
            ready + SimDuration::from_secs(1),
        );
        assert_eq!(d.activation_count(HardwareComponent::Wifi), 1);
        // The lock survives the first task's end.
        let released = d.release_expired(ready + SimDuration::from_secs(3));
        assert!(released.is_empty());
        let released = d.release_expired(ready + SimDuration::from_secs(6));
        assert_eq!(released, HardwareComponent::Wifi.into());
    }

    #[test]
    fn force_release_clears_everything() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Gps.into(), SimDuration::from_secs(30), ready);
        let released = d.force_release_all(ready + SimDuration::from_secs(1));
        assert_eq!(released, HardwareComponent::Gps.into());
        assert!(d.earliest_sleep_time().is_some());
    }

    #[test]
    fn rescope_releases_only_the_unclaimed_components() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        // Offender holds GPS for 600 s; a bystander holds Wi-Fi for 5 s.
        d.run_task(HardwareComponent::Gps.into(), SimDuration::from_secs(600), ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(5), ready);
        let now = ready + SimDuration::from_secs(1);
        let survivor = (
            HardwareSet::from(HardwareComponent::Wifi),
            ready + SimDuration::from_secs(5),
        );
        let released = d.rescope_holds(&[survivor], now);
        assert_eq!(released, HardwareComponent::Gps.into());
        assert_eq!(d.active_components(), HardwareComponent::Wifi.into());
        // CPU-busy deadline shrinks to the survivor's end, so the device
        // becomes idle right after it.
        let end = d.next_internal_event().unwrap();
        assert_eq!(end, ready + SimDuration::from_secs(5));
        d.release_expired(end);
        assert!(d.earliest_sleep_time().is_some());
    }

    #[test]
    fn rescope_clamps_shared_components_to_the_surviving_claim() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        // Both tasks hold Wi-Fi; the offender's claim reaches 600 s.
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(600), ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(5), ready);
        let survivor = (
            HardwareSet::from(HardwareComponent::Wifi),
            ready + SimDuration::from_secs(5),
        );
        d.rescope_holds(&[survivor], ready + SimDuration::from_secs(1));
        // Still active, but now expiring with the survivor.
        assert_eq!(d.active_components(), HardwareComponent::Wifi.into());
        let released = d.release_expired(ready + SimDuration::from_secs(5));
        assert_eq!(released, HardwareComponent::Wifi.into());
    }

    #[test]
    fn leaked_locks_outlive_the_task_without_cpu_busy() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(2), ready);
        d.leak_locks(
            HardwareComponent::Wifi.into(),
            ready + SimDuration::from_secs(30),
            ready,
        );
        // One activation only — the leak extends the existing lock.
        assert_eq!(d.activation_count(HardwareComponent::Wifi), 1);
        assert!(d.release_expired(ready + SimDuration::from_secs(2)).is_empty());
        // The device cannot sleep while the leak persists.
        assert_eq!(d.earliest_sleep_time(), None);
        let released = d.release_expired(ready + SimDuration::from_secs(30));
        assert_eq!(released, HardwareComponent::Wifi.into());
    }

    #[test]
    fn monitor_waveform_integral_matches_the_meter() {
        let mut d = device();
        d.attach_monitor();
        // A full cycle with a Wi-Fi task.
        let ready = d.request_wake(SimTime::from_secs(30));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
        let end = d.next_internal_event().unwrap();
        d.release_expired(end);
        assert!(d.try_sleep(d.earliest_sleep_time().unwrap()));
        d.advance_to(SimTime::from_secs(60));
        let meter_total = d.energy().total_mj();
        let waveform_total = d.monitor().unwrap().energy_mj(d.clock());
        assert!(
            (meter_total - waveform_total).abs() < 1e-6,
            "meter {meter_total} vs waveform {waveform_total}"
        );
        // The waveform peaks at base + Wi-Fi power.
        assert!((d.monitor().unwrap().peak_mw() - 310.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_records_impulses_for_transitions_and_activations() {
        let mut d = device();
        d.attach_monitor();
        let ready = d.request_wake(SimTime::from_secs(1));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(1), ready);
        let impulses = d.monitor().unwrap().impulses();
        assert_eq!(impulses.len(), 2);
        assert!((impulses[0].1 - 100.0).abs() < 1e-9); // wake transition
        assert!((impulses[1].1 - 200.0).abs() < 1e-9); // wifi activation
    }

    #[test]
    fn snapshot_restore_roundtrip_is_exact() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Wifi.into(), SimDuration::from_secs(3), ready);
        let mut r = Device::restore(PowerModel::nexus5(), d.snapshot());
        let end = d.next_internal_event().unwrap();
        assert_eq!(r.next_internal_event(), Some(end));
        d.release_expired(end);
        r.release_expired(end);
        assert!(d.try_sleep(d.earliest_sleep_time().unwrap()));
        assert!(r.try_sleep(r.earliest_sleep_time().unwrap()));
        // Bit-exact energy: the restored run must be indistinguishable.
        assert_eq!(
            d.energy().total_mj().to_bits(),
            r.energy().total_mj().to_bits()
        );
        assert_eq!(d.wake_count(), r.wake_count());
        assert_eq!(d.awake_time(), r.awake_time());
    }

    #[test]
    fn reboot_drops_everything_and_sleeps() {
        let mut d = device();
        let ready = d.request_wake(SimTime::from_secs(10));
        d.complete_wake(ready);
        d.run_task(HardwareComponent::Gps.into(), SimDuration::from_secs(600), ready);
        let released = d.reboot(ready + SimDuration::from_secs(1));
        assert_eq!(released, HardwareComponent::Gps.into());
        assert!(d.is_asleep());
        assert_eq!(d.next_internal_event(), None);
        // The outage accrues sleep-floor power only.
        let before = d.energy().sleep_mj;
        d.advance_to(ready + SimDuration::from_secs(11));
        assert!((d.energy().sleep_mj - before - 500.0).abs() < 1e-9);
        // No transition was charged by the kill itself.
        assert!((d.energy().transition_mj - 100.0).abs() < 1e-9);
    }

    #[test]
    fn awake_time_is_tracked() {
        let d = bare_cycle(0);
        // latency (250 ms) + linger (250 ms).
        assert_eq!(d.awake_time(), SimDuration::from_millis(500));
    }
}
