//! Power models: per-component power profiles and device-level constants.
//!
//! The model is *calibrated against the paper's own Monsoon measurements*
//! (§2.2) rather than against the physical Nexus 5 we do not have:
//!
//! * awakening the smartphone without wakelocking extra hardware costs
//!   **180 mJ** (wake-transition energy plus the awake-base power over the
//!   wake latency and sleep linger);
//! * one WPS positioning delivery (Wi-Fi + cellular scan, 8 s task) costs
//!   **3 650 mJ**;
//! * one calendar notification (speaker + vibrator, 1 s task) costs
//!   **400 mJ**.
//!
//! [`PowerModel::nexus5`] reproduces these three anchors exactly; the unit
//! tests pin them down.

use simty_core::hardware::HardwareComponent;
use simty_core::time::SimDuration;

/// Power profile of a single wakelockable component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentPower {
    /// One-time energy cost of activating the component (mJ). Paid every
    /// time the component transitions from inactive to active — this is
    /// the overhead that hardware-similar alignment amortizes (§3.1.1).
    pub activation_energy_mj: f64,
    /// Power drawn while the component is wakelocked (mW).
    pub active_power_mw: f64,
}

/// Device-level power model used by the simulator's energy integrator.
///
/// # Examples
///
/// ```
/// use simty_device::power::PowerModel;
/// use simty_core::hardware::HardwareComponent;
///
/// let model = PowerModel::nexus5();
/// assert!((model.bare_wakeup_energy_mj() - 180.0).abs() < 1e-6);
/// assert!(model.component(HardwareComponent::Wifi).active_power_mw > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Power drawn asleep in connected standby (mW): the irreducible floor
    /// the paper attributes to low-power hardware design.
    pub sleep_power_mw: f64,
    /// Power drawn by the essential components (CPU, memory) whenever the
    /// device is awake or waking (mW).
    pub awake_base_power_mw: f64,
    /// One-time energy cost of a sleep→awake transition (mJ).
    pub wake_transition_energy_mj: f64,
    /// Latency from the RTC interrupt until alarms can be delivered. This
    /// is the mechanism behind the paper's observation that α = 0 alarms
    /// are delivered "slightly later than expected" even under NATIVE
    /// (0.4–0.6 % normalized delay, §4.2).
    pub wake_latency: SimDuration,
    /// How long the device lingers awake after the last wakelock is
    /// released before going back to sleep.
    pub sleep_linger: SimDuration,
    components: [ComponentPower; HardwareComponent::ALL.len()],
}

impl PowerModel {
    /// The model calibrated to the paper's LG Nexus 5 measurements.
    pub fn nexus5() -> Self {
        let mut components = [ComponentPower {
            activation_energy_mj: 0.0,
            active_power_mw: 0.0,
        }; HardwareComponent::ALL.len()];
        let mut set = |c: HardwareComponent, act: f64, pow: f64| {
            components[Self::index(c)] = ComponentPower {
                activation_energy_mj: act,
                active_power_mw: pow,
            };
        };
        set(HardwareComponent::Wifi, 200.0, 150.0);
        set(HardwareComponent::Cellular, 150.0, 80.0);
        set(HardwareComponent::Gps, 300.0, 250.0);
        set(HardwareComponent::Wps, 350.0, 230.0);
        set(HardwareComponent::Accelerometer, 5.0, 15.0);
        set(HardwareComponent::Speaker, 10.0, 10.0);
        set(HardwareComponent::Vibrator, 20.0, 20.0);
        set(HardwareComponent::Screen, 50.0, 400.0);
        PowerModel {
            // The paper does not publish the absolute sleep-floor power, but
            // its Fig. 3 shows sleep accounting for a large share of total
            // standby energy (total savings of 20-25 % against awake savings
            // of >33 %). 50 mW reproduces that share; it also matches the
            // paper's remark that the sleep mode alone "accounts for a
            // significant proportion of the total energy consumption".
            sleep_power_mw: 50.0,
            awake_base_power_mw: 160.0,
            wake_transition_energy_mj: 100.0,
            wake_latency: SimDuration::from_millis(250),
            sleep_linger: SimDuration::from_millis(250),
            components,
        }
    }

    /// The profile of one component.
    pub fn component(&self, c: HardwareComponent) -> ComponentPower {
        self.components[Self::index(c)]
    }

    /// Overrides one component's profile (for sensitivity studies).
    pub fn set_component(&mut self, c: HardwareComponent, profile: ComponentPower) {
        self.components[Self::index(c)] = profile;
    }

    /// Energy to awaken the device and let it fall back asleep without any
    /// task: transition energy plus base power over latency + linger.
    /// The paper measures this as 180 mJ.
    pub fn bare_wakeup_energy_mj(&self) -> f64 {
        self.wake_transition_energy_mj
            + self.awake_base_power_mw
                * (self.wake_latency.as_secs_f64() + self.sleep_linger.as_secs_f64())
    }

    /// Energy of a solo delivery that wakes the device from sleep, runs a
    /// task wakelocking `set` for `task` seconds, and sleeps again.
    /// Used for calibration checks and the Fig. 2 analytic replay.
    pub fn solo_delivery_energy_mj(
        &self,
        set: simty_core::hardware::HardwareSet,
        task: SimDuration,
    ) -> f64 {
        let awake = self.wake_latency.as_secs_f64()
            + task.as_secs_f64()
            + self.sleep_linger.as_secs_f64();
        let mut total = self.wake_transition_energy_mj + self.awake_base_power_mw * awake;
        for c in set {
            let p = self.component(c);
            total += p.activation_energy_mj + p.active_power_mw * task.as_secs_f64();
        }
        total
    }

    pub(crate) fn index(c: HardwareComponent) -> usize {
        HardwareComponent::ALL
            .iter()
            .position(|x| *x == c)
            .expect("component is in ALL")
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::nexus5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simty_core::hardware::HardwareSet;

    #[test]
    fn bare_wakeup_matches_the_paper() {
        // §2.2: "the energy required simply to awaken the smartphone,
        // without wakelocking extra hardware components, is 180 mJ".
        let m = PowerModel::nexus5();
        assert!((m.bare_wakeup_energy_mj() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn wps_delivery_matches_the_paper() {
        // §2.2: "each alarm delivery for location positioning consumes
        // 3,650 mJ" (WPS positioning, 8 s task).
        let m = PowerModel::nexus5();
        let e = m.solo_delivery_energy_mj(
            HardwareSet::single(HardwareComponent::Wps),
            SimDuration::from_secs(8),
        );
        assert!((e - 3650.0).abs() < 1e-6, "got {e}");
    }

    #[test]
    fn calendar_notification_matches_the_paper() {
        // §2.2: "the alarm delivery for calendar notification consumes
        // 400 mJ" (speaker + vibrator for one second).
        let m = PowerModel::nexus5();
        let notify = HardwareComponent::Speaker | HardwareComponent::Vibrator;
        let e = m.solo_delivery_energy_mj(notify, SimDuration::from_secs(1));
        assert!((e - 400.0).abs() < 1e-6, "got {e}");
    }

    #[test]
    fn empty_set_solo_delivery_reduces_to_bare_wakeup() {
        let m = PowerModel::nexus5();
        let e = m.solo_delivery_energy_mj(HardwareSet::empty(), SimDuration::ZERO);
        assert!((e - m.bare_wakeup_energy_mj()).abs() < 1e-9);
    }

    #[test]
    fn set_component_overrides() {
        let mut m = PowerModel::nexus5();
        m.set_component(
            HardwareComponent::Wifi,
            ComponentPower {
                activation_energy_mj: 1.0,
                active_power_mw: 2.0,
            },
        );
        assert_eq!(m.component(HardwareComponent::Wifi).active_power_mw, 2.0);
    }
}
