//! Alarm similarity metrics (§3.1) and entry preferability (Table 1).
//!
//! Two metrics govern SIMTY's alignment decisions:
//!
//! * [`HardwareSimilarity`] reflects the *degree of energy savings* obtained
//!   by aligning two alarms: *high* when their wakelocked hardware sets are
//!   identical and non-empty, *medium* when the sets are non-empty and
//!   partially identical, *low* otherwise.
//! * [`TimeSimilarity`] reflects the *impact on user experience*: *high*
//!   when window intervals overlap, *medium* when only the grace intervals
//!   overlap, *low* otherwise.
//!
//! [`Preferability`] combines the two per the paper's Table 1: applicable
//! entries are ranked 1 (best) through 6, and inapplicable ones are `∞`.
//!
//! # Examples
//!
//! ```
//! use simty_core::hardware::{HardwareComponent, HardwareSet};
//! use simty_core::similarity::{hardware_similarity, HardwareSimilarity};
//!
//! let wifi = HardwareSet::single(HardwareComponent::Wifi);
//! let wps = HardwareComponent::Wifi | HardwareComponent::Cellular;
//! assert_eq!(hardware_similarity(wifi, wifi), HardwareSimilarity::High);
//! assert_eq!(hardware_similarity(wifi, wps), HardwareSimilarity::Medium);
//! assert_eq!(hardware_similarity(wifi, HardwareSet::empty()), HardwareSimilarity::Low);
//! ```

use std::cmp::Ordering;
use std::fmt;

use crate::hardware::{HardwareComponent, HardwareSet};
use crate::time::Interval;

/// Three-level hardware similarity between two wakelocked hardware sets
/// (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HardwareSimilarity {
    /// The sets are completely identical and not empty: aligning nearly
    /// halves the two alarms' energy.
    High,
    /// Both sets are non-empty and partially identical: energy is partially
    /// reduced.
    Medium,
    /// Mutually exclusive or empty sets: only the bare wakeup energy is
    /// saved.
    Low,
}

impl HardwareSimilarity {
    /// Rank within Table 1's columns: 0 = high, 1 = medium, 2 = low.
    pub fn rank(self) -> u8 {
        match self {
            HardwareSimilarity::High => 0,
            HardwareSimilarity::Medium => 1,
            HardwareSimilarity::Low => 2,
        }
    }
}

impl fmt::Display for HardwareSimilarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HardwareSimilarity::High => "high",
            HardwareSimilarity::Medium => "medium",
            HardwareSimilarity::Low => "low",
        })
    }
}

/// Classifies the hardware similarity between two hardware sets using the
/// paper's canonical three-level scheme (§3.1.1).
pub fn hardware_similarity(a: HardwareSet, b: HardwareSet) -> HardwareSimilarity {
    if a == b && !a.is_empty() {
        HardwareSimilarity::High
    } else if !a.is_empty() && !b.is_empty() && !a.intersection(b).is_empty() {
        HardwareSimilarity::Medium
    } else {
        HardwareSimilarity::Low
    }
}

/// Alternative hardware-similarity granularities sketched in §3.1.1.
///
/// The paper argues for three levels but notes that a two-level distinction
/// (share any component or not) and a four-level distinction (medium split
/// by whether the shared components are energy hungry) are also sensible.
/// All three are implemented so the design choice can be ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HardwareGranularity {
    /// Share at least one identical component (rank 0) or not (rank 1).
    Two,
    /// The canonical high / medium / low scheme.
    #[default]
    Three,
    /// High / medium-hungry / medium-modest / low, where *medium-hungry*
    /// means the shared components include at least one energy-hungry one.
    Four,
}

impl HardwareGranularity {
    /// Components the four-level scheme treats as energy hungry on the
    /// Nexus 5 class of device: radios, positioning, and the screen.
    pub fn default_energy_hungry() -> HardwareSet {
        HardwareComponent::Wifi
            | HardwareComponent::Cellular
            | HardwareComponent::Gps
            | HardwareComponent::Wps
            | HardwareComponent::Screen
    }

    /// Number of similarity levels (= exclusive upper bound of
    /// [`rank`](Self::rank)).
    pub fn levels(self) -> u8 {
        match self {
            HardwareGranularity::Two => 2,
            HardwareGranularity::Three => 3,
            HardwareGranularity::Four => 4,
        }
    }

    /// Ranks the similarity between two hardware sets; lower is more
    /// similar. `energy_hungry` only matters for [`Four`](Self::Four).
    pub fn rank(self, a: HardwareSet, b: HardwareSet, energy_hungry: HardwareSet) -> u8 {
        let shared = a.intersection(b);
        match self {
            HardwareGranularity::Two => u8::from(shared.is_empty()),
            HardwareGranularity::Three => hardware_similarity(a, b).rank(),
            HardwareGranularity::Four => match hardware_similarity(a, b) {
                HardwareSimilarity::High => 0,
                HardwareSimilarity::Medium => {
                    if shared.intersection(energy_hungry).is_empty() {
                        2
                    } else {
                        1
                    }
                }
                HardwareSimilarity::Low => 3,
            },
        }
    }
}

impl fmt::Display for HardwareGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HardwareGranularity::Two => "2-level",
            HardwareGranularity::Three => "3-level",
            HardwareGranularity::Four => "4-level",
        })
    }
}

/// Three-level time similarity between an alarm and a queue entry (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeSimilarity {
    /// The window intervals overlap: the pair can be delivered together
    /// without exceeding either window.
    High,
    /// The grace intervals overlap but the window intervals do not:
    /// delivering together postpones at least one alarm beyond its window
    /// (tolerable only for imperceptible alarms).
    Medium,
    /// Not even the grace intervals overlap.
    Low,
}

impl TimeSimilarity {
    /// Rank within Table 1's rows: 0 = high, 1 = medium, 2 = low.
    pub fn rank(self) -> u8 {
        match self {
            TimeSimilarity::High => 0,
            TimeSimilarity::Medium => 1,
            TimeSimilarity::Low => 2,
        }
    }
}

impl fmt::Display for TimeSimilarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimeSimilarity::High => "high",
            TimeSimilarity::Medium => "medium",
            TimeSimilarity::Low => "low",
        })
    }
}

/// Classifies time similarity from window and grace intervals.
///
/// The entry-side window may be `None`: an entry formed by grace-only
/// alignment can have an empty window intersection, in which case no alarm
/// can reach *high* time similarity with it.
pub fn time_similarity(
    alarm_window: Interval,
    alarm_grace: Interval,
    entry_window: Option<Interval>,
    entry_grace: Interval,
) -> TimeSimilarity {
    if entry_window.is_some_and(|w| w.overlaps(alarm_window)) {
        TimeSimilarity::High
    } else if entry_grace.overlaps(alarm_grace) {
        TimeSimilarity::Medium
    } else {
        TimeSimilarity::Low
    }
}

/// The applicability/preferability of a queue entry for a new alarm,
/// per the paper's Table 1.
///
/// | time \ hw | high | medium | low |
/// |-----------|------|--------|-----|
/// | high      | 1    | 3      | 5   |
/// | medium    | 2    | 4      | 6   |
/// | low       | ∞    | ∞      | ∞   |
///
/// Lower ranks are preferred; [`Preferability::NotApplicable`] (`∞`) means
/// the entry cannot host the alarm. The ordering implements "prefer higher
/// hardware similarity, then higher time similarity".
///
/// # Examples
///
/// ```
/// use simty_core::similarity::{HardwareSimilarity, Preferability, TimeSimilarity};
///
/// let best = Preferability::from_similarities(HardwareSimilarity::High, TimeSimilarity::High);
/// let worst = Preferability::from_similarities(HardwareSimilarity::Low, TimeSimilarity::Medium);
/// assert_eq!(best, Preferability::Rank(1));
/// assert_eq!(worst, Preferability::Rank(6));
/// assert!(best < worst);
/// assert!(worst < Preferability::NotApplicable);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preferability {
    /// Applicable, with Table 1 rank `1..=6` (1 is most preferable).
    Rank(u8),
    /// `∞` — the entry is not applicable (low time similarity).
    NotApplicable,
}

impl Preferability {
    /// Computes the Table 1 cell for a hardware/time similarity pair.
    pub fn from_similarities(hw: HardwareSimilarity, time: TimeSimilarity) -> Preferability {
        match time {
            TimeSimilarity::Low => Preferability::NotApplicable,
            _ => Preferability::Rank(hw.rank() * 2 + time.rank() + 1),
        }
    }

    /// Generalization of Table 1 to an arbitrary hardware-similarity
    /// granularity: rank = `hw_rank * 2 + time_rank + 1`, so hardware
    /// similarity still dominates and time similarity breaks ties.
    ///
    /// Returns [`Preferability::NotApplicable`] when time similarity is low.
    pub fn from_ranks(hw_rank: u8, time: TimeSimilarity) -> Preferability {
        match time {
            TimeSimilarity::Low => Preferability::NotApplicable,
            _ => Preferability::Rank(hw_rank * 2 + time.rank() + 1),
        }
    }

    /// Whether the entry is applicable at all.
    pub fn is_applicable(self) -> bool {
        matches!(self, Preferability::Rank(_))
    }
}

impl PartialOrd for Preferability {
    fn partial_cmp(&self, other: &Preferability) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Preferability {
    fn cmp(&self, other: &Preferability) -> Ordering {
        match (self, other) {
            (Preferability::Rank(a), Preferability::Rank(b)) => a.cmp(b),
            (Preferability::Rank(_), Preferability::NotApplicable) => Ordering::Less,
            (Preferability::NotApplicable, Preferability::Rank(_)) => Ordering::Greater,
            (Preferability::NotApplicable, Preferability::NotApplicable) => Ordering::Equal,
        }
    }
}

impl fmt::Display for Preferability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Preferability::Rank(r) => write!(f, "{r}"),
            Preferability::NotApplicable => f.write_str("∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn iv(start: u64, end: u64) -> Interval {
        Interval::new(SimTime::from_secs(start), SimTime::from_secs(end))
    }

    #[test]
    fn hardware_similarity_three_levels() {
        let wifi = HardwareSet::single(HardwareComponent::Wifi);
        let wps = HardwareComponent::Wifi | HardwareComponent::Cellular;
        let accel = HardwareSet::single(HardwareComponent::Accelerometer);
        let empty = HardwareSet::empty();

        assert_eq!(hardware_similarity(wps, wps), HardwareSimilarity::High);
        assert_eq!(hardware_similarity(wifi, wps), HardwareSimilarity::Medium);
        assert_eq!(hardware_similarity(wps, wifi), HardwareSimilarity::Medium);
        // Mutually exclusive sets: low.
        assert_eq!(hardware_similarity(wifi, accel), HardwareSimilarity::Low);
        // Any empty set: low — even two identical empty sets (§3.1.1 requires
        // "completely identical AND not empty" for high).
        assert_eq!(hardware_similarity(empty, empty), HardwareSimilarity::Low);
        assert_eq!(hardware_similarity(wifi, empty), HardwareSimilarity::Low);
    }

    #[test]
    fn hardware_similarity_is_symmetric() {
        let sets = [
            HardwareSet::empty(),
            HardwareSet::single(HardwareComponent::Wifi),
            HardwareComponent::Wifi | HardwareComponent::Cellular,
            HardwareSet::single(HardwareComponent::Vibrator),
        ];
        for a in sets {
            for b in sets {
                assert_eq!(hardware_similarity(a, b), hardware_similarity(b, a));
            }
        }
    }

    #[test]
    fn two_level_granularity() {
        let wifi = HardwareSet::single(HardwareComponent::Wifi);
        let wps = HardwareComponent::Wifi | HardwareComponent::Cellular;
        let accel = HardwareSet::single(HardwareComponent::Accelerometer);
        let g = HardwareGranularity::Two;
        let hungry = HardwareGranularity::default_energy_hungry();
        assert_eq!(g.rank(wifi, wps, hungry), 0);
        assert_eq!(g.rank(wifi, accel, hungry), 1);
        assert_eq!(g.levels(), 2);
    }

    #[test]
    fn four_level_granularity_splits_medium_by_hunger() {
        let g = HardwareGranularity::Four;
        let hungry = HardwareGranularity::default_energy_hungry();
        let wifi_acc = HardwareComponent::Wifi | HardwareComponent::Accelerometer;
        let wifi_spk = HardwareComponent::Wifi | HardwareComponent::Speaker;
        let acc_spk = HardwareComponent::Accelerometer | HardwareComponent::Speaker;
        let acc = HardwareSet::single(HardwareComponent::Accelerometer);
        // Shared component is Wi-Fi (hungry) -> rank 1.
        assert_eq!(g.rank(wifi_acc, wifi_spk, hungry), 1);
        // Shared component is the accelerometer (modest) -> rank 2.
        assert_eq!(g.rank(acc_spk, acc, hungry), 2);
        // Identical non-empty -> 0; disjoint -> 3.
        assert_eq!(g.rank(acc, acc, hungry), 0);
        assert_eq!(g.rank(acc, HardwareSet::single(HardwareComponent::Wifi), hungry), 3);
    }

    #[test]
    fn three_level_granularity_matches_canonical() {
        let g = HardwareGranularity::Three;
        let hungry = HardwareGranularity::default_energy_hungry();
        let wifi = HardwareSet::single(HardwareComponent::Wifi);
        let wps = HardwareComponent::Wifi | HardwareComponent::Cellular;
        assert_eq!(g.rank(wifi, wifi, hungry), 0);
        assert_eq!(g.rank(wifi, wps, hungry), 1);
        assert_eq!(g.rank(wifi, HardwareSet::empty(), hungry), 2);
    }

    #[test]
    fn time_similarity_levels() {
        // Windows overlap -> high.
        assert_eq!(
            time_similarity(iv(0, 10), iv(0, 50), Some(iv(5, 20)), iv(5, 60)),
            TimeSimilarity::High
        );
        // Only graces overlap -> medium.
        assert_eq!(
            time_similarity(iv(0, 10), iv(0, 50), Some(iv(20, 30)), iv(20, 60)),
            TimeSimilarity::Medium
        );
        // Nothing overlaps -> low.
        assert_eq!(
            time_similarity(iv(0, 10), iv(0, 20), Some(iv(30, 40)), iv(30, 50)),
            TimeSimilarity::Low
        );
        // Entry window empty: high is impossible.
        assert_eq!(
            time_similarity(iv(0, 10), iv(0, 50), None, iv(5, 60)),
            TimeSimilarity::Medium
        );
    }

    #[test]
    fn preferability_matches_table_1() {
        use HardwareSimilarity as H;
        use TimeSimilarity as T;
        let cell = |h, t| Preferability::from_similarities(h, t);
        assert_eq!(cell(H::High, T::High), Preferability::Rank(1));
        assert_eq!(cell(H::High, T::Medium), Preferability::Rank(2));
        assert_eq!(cell(H::Medium, T::High), Preferability::Rank(3));
        assert_eq!(cell(H::Medium, T::Medium), Preferability::Rank(4));
        assert_eq!(cell(H::Low, T::High), Preferability::Rank(5));
        assert_eq!(cell(H::Low, T::Medium), Preferability::Rank(6));
        for h in [H::High, H::Medium, H::Low] {
            assert_eq!(cell(h, T::Low), Preferability::NotApplicable);
        }
    }

    #[test]
    fn preferability_ordering_prefers_hardware_then_time() {
        let ranks: Vec<Preferability> = (1..=6).map(Preferability::Rank).collect();
        for w in ranks.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(Preferability::Rank(6) < Preferability::NotApplicable);
        assert_eq!(
            Preferability::NotApplicable.cmp(&Preferability::NotApplicable),
            Ordering::Equal
        );
    }

    #[test]
    fn preferability_display() {
        assert_eq!(Preferability::Rank(3).to_string(), "3");
        assert_eq!(Preferability::NotApplicable.to_string(), "∞");
    }
}
