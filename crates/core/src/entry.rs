//! Queue entries: groups of alarms that are delivered together.
//!
//! An entry carries the five attributes the paper defines (§3.2.1):
//!
//! 1. **window interval** — the intersection of its members' window intervals
//!    (possibly empty after a grace-only alignment);
//! 2. **grace interval** — the intersection of its members' grace intervals;
//! 3. **hardware set** — the union of its members' *known* hardware sets;
//! 4. **perceptibility** — perceptible iff any member is perceptible;
//! 5. **delivery time** — the earliest point of the window interval for a
//!    perceptible entry, of the grace interval for an imperceptible one
//!    (under the perceptibility-aware discipline; NATIVE always uses the
//!    window).

use std::fmt;

use crate::alarm::{Alarm, AlarmId};
use crate::hardware::HardwareSet;
use crate::similarity::{time_similarity, TimeSimilarity};
use crate::time::{Interval, SimDuration, SimTime};

/// How an entry's delivery time is derived from its intervals.
///
/// NATIVE and EXACT always deliver at the start of the (window)
/// intersection; SIMTY delivers imperceptible entries at the start of the
/// *grace* intersection instead, which is what lets later alarms join them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeliveryDiscipline {
    /// Deliver at the start of the window intersection (Android NATIVE).
    #[default]
    Window,
    /// Deliver perceptible entries at the window start and imperceptible
    /// entries at the grace start (SIMTY, §3.2.1).
    PerceptibilityAware,
    /// Deliver only on a fixed time grid: every entry is postponed to the
    /// first multiple of the quantum at or after its members' latest
    /// nominal time. Models the "immediate remedy" the paper cites from
    /// Lin et al. \[5\], which forcibly aligns background activities within
    /// fixed intervals regardless of windows.
    Quantized {
        /// The wakeup grid period.
        quantum: SimDuration,
    },
    /// Deliver only in escalating maintenance windows (Doze-style): the
    /// first `windows_per_level` windows sit `base` apart, the next batch
    /// twice that, doubling up to `max_quantum`. Entries are postponed to
    /// the first window at or after their members' latest nominal time.
    Escalating {
        /// Spacing of the earliest maintenance windows.
        base: SimDuration,
        /// The spacing cap after repeated escalation.
        max_quantum: SimDuration,
        /// How many windows elapse before each doubling.
        windows_per_level: u32,
    },
}

/// The first maintenance window at or after `t` on an escalating grid
/// (see [`DeliveryDiscipline::Escalating`]).
pub fn escalating_window_after(
    t: SimTime,
    base: SimDuration,
    max_quantum: SimDuration,
    windows_per_level: u32,
) -> SimTime {
    let target = t.as_millis();
    let mut window = 0u64;
    let mut quantum = base.as_millis().max(1);
    loop {
        for _ in 0..windows_per_level.max(1) {
            if window >= target {
                return SimTime::from_millis(window);
            }
            window += quantum;
        }
        if quantum < max_quantum.as_millis() {
            quantum = (quantum * 2).min(max_quantum.as_millis());
        }
    }
}

/// A batch of alarms scheduled for joint delivery.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::entry::{DeliveryDiscipline, QueueEntry};
/// use simty_core::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), simty_core::error::BuildAlarmError> {
/// let a = Alarm::builder("a")
///     .nominal(SimTime::from_secs(10))
///     .repeating_static(SimDuration::from_secs(100))
///     .window_fraction(0.75)
///     .build()?;
/// let entry = QueueEntry::new(a, DeliveryDiscipline::Window);
/// assert_eq!(entry.delivery_time(), SimTime::from_secs(10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QueueEntry {
    alarms: Vec<Alarm>,
    window: Option<Interval>,
    grace: Option<Interval>,
    hardware: HardwareSet,
    perceptible: bool,
    latest_nominal: SimTime,
    delivery: SimTime,
    discipline: DeliveryDiscipline,
}

impl QueueEntry {
    /// Creates an entry containing a single alarm.
    pub fn new(alarm: Alarm, discipline: DeliveryDiscipline) -> Self {
        let mut entry = QueueEntry {
            alarms: vec![alarm],
            window: None,
            grace: None,
            hardware: HardwareSet::empty(),
            perceptible: false,
            latest_nominal: SimTime::ZERO,
            delivery: SimTime::ZERO,
            discipline,
        };
        entry.recompute();
        entry
    }

    /// The member alarms, in insertion order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Number of member alarms.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// Whether the entry has no members (only transiently true during
    /// removal; empty entries are dropped from the queue).
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// Attribute 1: the intersection of member window intervals, or `None`
    /// if it is empty (possible after grace-only alignments).
    pub fn window(&self) -> Option<Interval> {
        self.window
    }

    /// Attribute 2: the intersection of member grace intervals, or `None`
    /// if it is empty (only possible if a policy ignores time similarity).
    pub fn grace(&self) -> Option<Interval> {
        self.grace
    }

    /// Attribute 3: the union of member *known* hardware sets.
    pub fn hardware(&self) -> HardwareSet {
        self.hardware
    }

    /// Attribute 4: whether any member is perceptible.
    pub fn is_perceptible(&self) -> bool {
        self.perceptible
    }

    /// The delivery discipline this entry was created under.
    pub fn discipline(&self) -> DeliveryDiscipline {
        self.discipline
    }

    /// Attribute 5: the scheduled delivery time.
    ///
    /// Cached on every membership change (this sits on the queue's
    /// ordering hot path — every binary-search comparison reads it).
    /// Falls back to the latest member nominal time if the governing
    /// intersection is empty, so a mis-batched entry still has a defined
    /// (and experience-safe, since it is some member's nominal) time.
    pub fn delivery_time(&self) -> SimTime {
        self.delivery
    }

    /// Recomputes the delivery time from the current intervals (the
    /// Quantized/Escalating grids make this non-trivial, which is why the
    /// result is cached rather than derived per call).
    fn compute_delivery_time(&self) -> SimTime {
        let window_start = self.window.map(Interval::start);
        let grace_start = self.grace.map(Interval::start);
        let fallback = self.latest_nominal;
        match self.discipline {
            DeliveryDiscipline::Window => window_start.or(grace_start).unwrap_or(fallback),
            DeliveryDiscipline::PerceptibilityAware => {
                if self.perceptible {
                    window_start.or(grace_start).unwrap_or(fallback)
                } else {
                    grace_start.unwrap_or(fallback)
                }
            }
            DeliveryDiscipline::Quantized { quantum } => {
                let q = quantum.as_millis().max(1);
                let base = self.latest_nominal.as_millis();
                SimTime::from_millis(base.div_ceil(q) * q)
            }
            DeliveryDiscipline::Escalating {
                base,
                max_quantum,
                windows_per_level,
            } => escalating_window_after(
                self.latest_nominal,
                base,
                max_quantum,
                windows_per_level,
            ),
        }
    }

    /// Time similarity between a candidate alarm and this entry (§3.1.2),
    /// computed against the entry's intersected intervals.
    pub fn time_similarity_to(&self, alarm: &Alarm) -> TimeSimilarity {
        let entry_grace = match self.grace {
            Some(g) => g,
            // Degenerate entry: compare against the fallback point so the
            // classification stays total.
            None => Interval::point(self.latest_nominal),
        };
        time_similarity(
            alarm.window_interval(),
            alarm.grace_interval(),
            self.window,
            entry_grace,
        )
    }

    /// Whether the given alarm is a member.
    pub fn contains(&self, id: AlarmId) -> bool {
        self.alarms.iter().any(|a| a.id() == id)
    }

    /// Adds an alarm and updates the entry attributes.
    pub fn push(&mut self, alarm: Alarm) {
        self.alarms.push(alarm);
        self.recompute();
    }

    /// Removes the alarm with `id`, returning it and updating the entry
    /// attributes. Returns `None` if the alarm is not a member.
    pub fn remove(&mut self, id: AlarmId) -> Option<Alarm> {
        let idx = self.alarms.iter().position(|a| a.id() == id)?;
        let alarm = self.alarms.remove(idx);
        if !self.alarms.is_empty() {
            self.recompute();
        }
        Some(alarm)
    }

    /// Consumes the entry, yielding its members.
    pub fn into_alarms(self) -> Vec<Alarm> {
        self.alarms
    }

    fn recompute(&mut self) {
        debug_assert!(!self.alarms.is_empty(), "recompute on an empty entry");
        let mut window = Some(self.alarms[0].window_interval());
        let mut grace = Some(self.alarms[0].grace_interval());
        let mut hardware = self.alarms[0].known_hardware();
        let mut perceptible = self.alarms[0].is_perceptible();
        let mut latest_nominal = self.alarms[0].nominal();
        for alarm in &self.alarms[1..] {
            window = window.and_then(|w| w.intersection(alarm.window_interval()));
            grace = grace.and_then(|g| g.intersection(alarm.grace_interval()));
            hardware |= alarm.known_hardware();
            perceptible |= alarm.is_perceptible();
            latest_nominal = latest_nominal.max(alarm.nominal());
        }
        self.window = window;
        self.grace = grace;
        self.hardware = hardware;
        self.perceptible = perceptible;
        self.latest_nominal = latest_nominal;
        self.delivery = self.compute_delivery_time();
    }
}

impl fmt::Display for QueueEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entry@{} [{} alarm(s), hw {}, {}]",
            self.delivery_time(),
            self.alarms.len(),
            self.hardware,
            if self.perceptible {
                "perceptible"
            } else {
                "imperceptible"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareComponent;
    use crate::time::SimDuration;

    fn alarm(label: &str, nominal_s: u64, repeat_s: u64, alpha: f64, beta: f64) -> Alarm {
        Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(repeat_s))
            .window_fraction(alpha)
            .grace_fraction(beta)
            .hardware(HardwareComponent::Wifi.into())
            .build()
            .unwrap()
    }

    fn known(mut a: Alarm) -> Alarm {
        a.mark_hardware_known();
        a
    }

    #[test]
    fn single_alarm_entry_mirrors_the_alarm() {
        let a = alarm("a", 100, 200, 0.75, 0.96);
        let e = QueueEntry::new(a.clone(), DeliveryDiscipline::Window);
        assert_eq!(e.window(), Some(a.window_interval()));
        assert_eq!(e.grace(), Some(a.grace_interval()));
        assert_eq!(e.delivery_time(), SimTime::from_secs(100));
        assert!(e.is_perceptible()); // hardware unknown -> perceptible
        assert!(e.hardware().is_empty()); // known hardware only
    }

    #[test]
    fn attributes_are_intersections_and_unions() {
        // a: window [100, 250], grace [100, 292]; b: window [200, 275], grace [200, 296].
        let a = known(alarm("a", 100, 200, 0.75, 0.96));
        let b = known(alarm("b", 200, 100, 0.75, 0.96));
        let mut e = QueueEntry::new(a, DeliveryDiscipline::PerceptibilityAware);
        e.push(b);
        assert_eq!(
            e.window(),
            Some(Interval::new(SimTime::from_secs(200), SimTime::from_secs(250)))
        );
        assert_eq!(
            e.grace(),
            Some(Interval::new(SimTime::from_secs(200), SimTime::from_secs(292)))
        );
        assert_eq!(e.hardware(), HardwareComponent::Wifi.into());
        assert!(!e.is_perceptible());
    }

    #[test]
    fn perceptible_entry_delivers_at_window_start() {
        let mut a = Alarm::builder("cal")
            .nominal(SimTime::from_secs(50))
            .repeating_static(SimDuration::from_secs(1800))
            .window(SimDuration::from_secs(10))
            .grace(SimDuration::from_secs(100))
            .hardware(HardwareComponent::Vibrator.into())
            .build()
            .unwrap();
        a.mark_hardware_known();
        let e = QueueEntry::new(a, DeliveryDiscipline::PerceptibilityAware);
        assert!(e.is_perceptible());
        assert_eq!(e.delivery_time(), SimTime::from_secs(50));
    }

    #[test]
    fn imperceptible_entry_delivers_at_grace_start_under_simty() {
        let a = known(alarm("a", 100, 200, 0.1, 0.96));
        let b = known(alarm("b", 150, 200, 0.1, 0.96));
        let mut e = QueueEntry::new(a, DeliveryDiscipline::PerceptibilityAware);
        e.push(b);
        // Windows [100,120] and [150,170] are disjoint -> window is None.
        assert_eq!(e.window(), None);
        // Graces [100,292] ∩ [150,342] = [150,292]; delivery at its start.
        assert_eq!(e.delivery_time(), SimTime::from_secs(150));
    }

    #[test]
    fn window_discipline_ignores_perceptibility() {
        let a = known(alarm("a", 100, 200, 0.75, 0.96));
        let e = QueueEntry::new(a, DeliveryDiscipline::Window);
        assert!(!e.is_perceptible());
        // Imperceptible, but NATIVE still delivers at the window start.
        assert_eq!(e.delivery_time(), SimTime::from_secs(100));
    }

    #[test]
    fn remove_restores_remaining_members_attributes() {
        let a = known(alarm("a", 100, 200, 0.75, 0.96));
        let b = known(alarm("b", 200, 100, 0.75, 0.96));
        let b_id = b.id();
        let mut e = QueueEntry::new(a.clone(), DeliveryDiscipline::Window);
        e.push(b);
        let removed = e.remove(b_id).unwrap();
        assert_eq!(removed.id(), b_id);
        assert_eq!(e.len(), 1);
        assert_eq!(e.window(), Some(a.window_interval()));
        assert!(e.remove(b_id).is_none());
    }

    #[test]
    fn time_similarity_against_entry() {
        let a = known(alarm("a", 100, 200, 0.75, 0.96)); // window [100,250]
        let e = QueueEntry::new(a, DeliveryDiscipline::PerceptibilityAware);
        let overlapping = known(alarm("b", 200, 100, 0.75, 0.96)); // window [200,275]
        let grace_only = known(alarm("c", 260, 100, 0.1, 0.3)); // window [260,270], grace [260,290]
        let disjoint = known(alarm("d", 400, 100, 0.1, 0.3));
        assert_eq!(e.time_similarity_to(&overlapping), TimeSimilarity::High);
        assert_eq!(e.time_similarity_to(&grace_only), TimeSimilarity::Medium);
        assert_eq!(e.time_similarity_to(&disjoint), TimeSimilarity::Low);
    }

    #[test]
    fn contains_and_into_alarms() {
        let a = known(alarm("a", 100, 200, 0.75, 0.96));
        let id = a.id();
        let e = QueueEntry::new(a, DeliveryDiscipline::Window);
        assert!(e.contains(id));
        let alarms = e.into_alarms();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].id(), id);
    }
}
