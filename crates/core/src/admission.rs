//! Per-app registration admission control.
//!
//! The paper's manager assumes well-behaved resident apps; a production
//! wakeup service does not get that luxury. [`AdmissionController`] puts a
//! deterministic token bucket in front of registration, keyed by app label
//! and split by [`AppClass`]: perceptible registrations (the ones a user
//! would notice losing) get their own, typically more generous, budget,
//! while deferrable (imperceptible) registrations can additionally be
//! *deferred* — pushed later by whole replenish periods — before they are
//! rejected outright. Apps that keep hammering a dry bucket are *demoted*:
//! the simulator composes this with the PR 2 quarantine ledger, so a
//! storming app's alarms lose their window guarantee exactly like a
//! watchdog offender's.
//!
//! All bucket arithmetic is integer millisecond math on the simulation
//! clock — no floats, no wall clock — so decisions replay bit-for-bit and
//! the whole controller round-trips through `simty-checkpoint/v1`.
//!
//! Bucket state is keyed by app *label* and never forgotten: cancelling
//! every alarm and re-registering under the same label continues from the
//! same bucket (and the same demotion), mirroring the sticky-quarantine
//! rule — quota debt cannot be laundered.
//!
//! # Examples
//!
//! ```
//! use simty_core::admission::{AdmissionConfig, AdmissionController, AppClass, AdmissionDecision};
//! use simty_core::time::SimTime;
//!
//! let mut ctl = AdmissionController::new(AdmissionConfig::default());
//! let burst = ctl.config().deferrable.burst;
//! // The bucket starts full: the first `burst` registrations sail through.
//! for _ in 0..burst {
//!     let a = ctl.decide("mail", AppClass::Deferrable, SimTime::ZERO);
//!     assert_eq!(a.decision, AdmissionDecision::Admit);
//! }
//! // The next one is deferred into the future instead of admitted now.
//! let a = ctl.decide("mail", AppClass::Deferrable, SimTime::ZERO);
//! assert!(matches!(a.decision, AdmissionDecision::Defer { .. }));
//! ```

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// The admission class of a registration.
///
/// Derived from [`Alarm::is_perceptible`](crate::alarm::Alarm::is_perceptible)
/// at the registration instant: an alarm the manager must treat as
/// perceptible (one-shot, unknown hardware, or perceptible hardware)
/// charges the perceptible budget; a known-imperceptible alarm is
/// deferrable work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// The user would notice this registration being dropped or deferred.
    Perceptible,
    /// Postponable background work: may be deferred by whole replenish
    /// periods, and is the class the degradation governor sheds first.
    Deferrable,
}

impl AppClass {
    /// The class's display name (used in metric labels).
    pub fn name(self) -> &'static str {
        match self {
            AppClass::Perceptible => "perceptible",
            AppClass::Deferrable => "deferrable",
        }
    }
}

/// One class's token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassQuota {
    /// How often the bucket earns one token.
    pub replenish_every: SimDuration,
    /// Bucket capacity; also the initial fill, so an app may burst this
    /// many registrations before the rate limit bites.
    pub burst: u32,
}

/// Controller-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Budget for perceptible registrations (never deferred — rejected
    /// outright when dry, because silently sliding a perceptible alarm
    /// would break the window guarantee the user perceives).
    pub perceptible: ClassQuota,
    /// Budget for deferrable (imperceptible) registrations.
    pub deferrable: ClassQuota,
    /// How many whole replenish periods a deferrable registration may be
    /// pushed into the future before the controller gives up and rejects.
    pub defer_limit: u32,
    /// After this many *consecutive* rejections, the app is demoted
    /// (sticky for the rest of the run; the simulator quarantines it).
    pub demote_after: u32,
}

impl Default for AdmissionConfig {
    /// A budget generous enough that the paper's 18-app workload never
    /// notices it, while a storm (tens of registrations per minute from
    /// one label) drains it within a couple of periods.
    fn default() -> Self {
        AdmissionConfig {
            perceptible: ClassQuota {
                replenish_every: SimDuration::from_secs(30),
                burst: 16,
            },
            deferrable: ClassQuota {
                replenish_every: SimDuration::from_secs(60),
                burst: 8,
            },
            defer_limit: 4,
            demote_after: 8,
        }
    }
}

/// What to do with one registration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Register now; a token was consumed.
    Admit,
    /// Register, but not before `until`: the caller shifts the alarm's
    /// nominal delivery time to at least that instant.
    Defer {
        /// Earliest admissible nominal delivery time.
        until: SimTime,
    },
    /// Do not register; the app's budget is dry and the defer horizon is
    /// exhausted (or the class never defers).
    Reject {
        /// How long until the bucket earns its next token.
        retry_after: SimDuration,
    },
}

/// The outcome of [`AdmissionController::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// What to do with the registration.
    pub decision: AdmissionDecision,
    /// Whether the app is (now) demoted. The caller stamps demoted apps
    /// into the quarantine ledger so their alarms read imperceptible.
    pub demoted: bool,
    /// Whether *this* decision crossed the demotion threshold (fires
    /// exactly once per app; the caller's cue to quarantine and count).
    pub newly_demoted: bool,
}

/// One class's bucket for one app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    /// Tokens currently available.
    pub tokens: u32,
    /// The instant the bucket last earned (or was created/saturated at);
    /// refill credit accrues from here in whole periods.
    pub last_refill: SimTime,
}

impl TokenBucket {
    fn full(quota: ClassQuota, now: SimTime) -> TokenBucket {
        TokenBucket {
            tokens: quota.burst,
            last_refill: now,
        }
    }

    /// Credits every whole replenish period elapsed since `last_refill`,
    /// capping at the burst size. Integer math only: `last_refill`
    /// advances by exactly the credited periods (or snaps to `now` when
    /// the bucket saturates), so the same call sequence always produces
    /// the same token stream.
    fn refill(&mut self, quota: ClassQuota, now: SimTime) {
        let period = quota.replenish_every.as_millis();
        if period == 0 {
            self.tokens = quota.burst;
            self.last_refill = now;
            return;
        }
        let elapsed = now.saturating_since(self.last_refill).as_millis();
        let earned = elapsed / period;
        if earned == 0 {
            return;
        }
        let tokens = u64::from(self.tokens) + earned;
        if tokens >= u64::from(quota.burst) {
            self.tokens = quota.burst;
            self.last_refill = now;
        } else {
            self.tokens = tokens as u32;
            self.last_refill += SimDuration::from_millis(earned * period);
        }
    }
}

/// Everything the controller tracks for one app label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppAdmission {
    /// Perceptible-class bucket.
    pub perceptible: TokenBucket,
    /// Deferrable-class bucket.
    pub deferrable: TokenBucket,
    /// The latest nominal time already handed out to a deferral; stacked
    /// deferrals queue behind it, one replenish period apart.
    pub defer_horizon: SimTime,
    /// Consecutive rejections (admissions reset it).
    pub rejections: u32,
    /// Sticky demotion flag.
    pub demoted: bool,
}

/// The deterministic per-app registration rate limiter (see the
/// [module documentation](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionController {
    config: AdmissionConfig,
    apps: BTreeMap<String, AppAdmission>,
}

impl AdmissionController {
    /// Creates a controller with the given budgets.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            apps: BTreeMap::new(),
        }
    }

    /// The governing configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides one registration attempt for `app` at `now`.
    ///
    /// Demoted apps still spend tokens like everyone else — their
    /// admitted registrations simply arrive pre-quarantined (the caller
    /// reads [`Admission::demoted`]) — but they lose the defer courtesy:
    /// a dry bucket rejects immediately.
    pub fn decide(&mut self, app: &str, class: AppClass, now: SimTime) -> Admission {
        let config = self.config;
        let state = self.apps.entry(app.to_owned()).or_insert_with(|| AppAdmission {
            perceptible: TokenBucket::full(config.perceptible, now),
            deferrable: TokenBucket::full(config.deferrable, now),
            defer_horizon: SimTime::ZERO,
            rejections: 0,
            demoted: false,
        });
        let quota = match class {
            AppClass::Perceptible => config.perceptible,
            AppClass::Deferrable => config.deferrable,
        };
        let bucket = match class {
            AppClass::Perceptible => &mut state.perceptible,
            AppClass::Deferrable => &mut state.deferrable,
        };
        bucket.refill(quota, now);
        if bucket.tokens > 0 {
            bucket.tokens -= 1;
            state.rejections = 0;
            return Admission {
                decision: AdmissionDecision::Admit,
                demoted: state.demoted,
                newly_demoted: false,
            };
        }
        // Dry bucket. Deferrable registrations from apps in good standing
        // are pushed later instead of dropped, one replenish period per
        // already-outstanding deferral, up to the defer limit.
        if class == AppClass::Deferrable && !state.demoted {
            let until = state.defer_horizon.max(now) + quota.replenish_every;
            let horizon_cap = now + quota.replenish_every * u64::from(config.defer_limit);
            if until <= horizon_cap {
                state.defer_horizon = until;
                return Admission {
                    decision: AdmissionDecision::Defer { until },
                    demoted: false,
                    newly_demoted: false,
                };
            }
        }
        state.rejections += 1;
        let newly_demoted = !state.demoted && state.rejections >= config.demote_after;
        if newly_demoted {
            state.demoted = true;
        }
        let next_token = state_bucket(state, class).last_refill + quota.replenish_every;
        Admission {
            decision: AdmissionDecision::Reject {
                retry_after: next_token.saturating_since(now),
            },
            demoted: state.demoted,
            newly_demoted,
        }
    }

    /// Whether `app` has been demoted (sticky).
    pub fn is_demoted(&self, app: &str) -> bool {
        self.apps.get(app).is_some_and(|s| s.demoted)
    }

    /// Per-app state in label order (checkpoint capture).
    pub fn apps(&self) -> impl Iterator<Item = (&str, &AppAdmission)> {
        self.apps.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of apps with tracked state.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Rebuilds a controller from persisted state (checkpoint restore).
    pub fn restore(
        config: AdmissionConfig,
        apps: impl IntoIterator<Item = (String, AppAdmission)>,
    ) -> Self {
        AdmissionController {
            config,
            apps: apps.into_iter().collect(),
        }
    }
}

fn state_bucket(state: &AppAdmission, class: AppClass) -> &TokenBucket {
    match class {
        AppClass::Perceptible => &state.perceptible,
        AppClass::Deferrable => &state.deferrable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> AdmissionConfig {
        AdmissionConfig {
            perceptible: ClassQuota {
                replenish_every: SimDuration::from_secs(30),
                burst: 2,
            },
            deferrable: ClassQuota {
                replenish_every: SimDuration::from_secs(60),
                burst: 2,
            },
            defer_limit: 2,
            demote_after: 3,
        }
    }

    #[test]
    fn burst_admits_then_defers_then_rejects() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::from_secs(10);
        for _ in 0..2 {
            let a = ctl.decide("mail", AppClass::Deferrable, t);
            assert_eq!(a.decision, AdmissionDecision::Admit);
        }
        // Two deferrals stack one period apart...
        let a = ctl.decide("mail", AppClass::Deferrable, t);
        assert_eq!(
            a.decision,
            AdmissionDecision::Defer { until: SimTime::from_secs(70) }
        );
        let a = ctl.decide("mail", AppClass::Deferrable, t);
        assert_eq!(
            a.decision,
            AdmissionDecision::Defer { until: SimTime::from_secs(130) }
        );
        // ...then the horizon is exhausted and rejection starts.
        let a = ctl.decide("mail", AppClass::Deferrable, t);
        assert!(matches!(a.decision, AdmissionDecision::Reject { .. }));
        assert!(!a.demoted);
    }

    #[test]
    fn perceptible_class_never_defers() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        for _ in 0..2 {
            let a = ctl.decide("ring", AppClass::Perceptible, t);
            assert_eq!(a.decision, AdmissionDecision::Admit);
        }
        let a = ctl.decide("ring", AppClass::Perceptible, t);
        assert_eq!(
            a.decision,
            AdmissionDecision::Reject { retry_after: SimDuration::from_secs(30) }
        );
    }

    #[test]
    fn refill_earns_whole_periods_only() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        for _ in 0..2 {
            ctl.decide("a", AppClass::Perceptible, t);
        }
        // 29 s: no token yet.
        let a = ctl.decide("a", AppClass::Perceptible, SimTime::from_secs(29));
        assert!(matches!(a.decision, AdmissionDecision::Reject { .. }));
        // 31 s: exactly one token earned; spend it, the next is dry again.
        let a = ctl.decide("a", AppClass::Perceptible, SimTime::from_secs(31));
        assert_eq!(a.decision, AdmissionDecision::Admit);
        let a = ctl.decide("a", AppClass::Perceptible, SimTime::from_secs(31));
        assert!(matches!(a.decision, AdmissionDecision::Reject { .. }));
        // The retry hint counts from the *earned* period boundary (30 s),
        // not from the query instant.
        if let AdmissionDecision::Reject { retry_after } = a.decision {
            assert_eq!(retry_after, SimDuration::from_secs(29));
        }
    }

    #[test]
    fn consecutive_rejections_demote_exactly_once() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        // Drain the perceptible bucket.
        for _ in 0..2 {
            ctl.decide("storm", AppClass::Perceptible, t);
        }
        for i in 1..=2 {
            let a = ctl.decide("storm", AppClass::Perceptible, t);
            assert!(!a.demoted, "rejection {i} must not demote yet");
        }
        let a = ctl.decide("storm", AppClass::Perceptible, t);
        assert!(a.demoted && a.newly_demoted);
        assert!(ctl.is_demoted("storm"));
        // Sticky, but signalled only once.
        let a = ctl.decide("storm", AppClass::Perceptible, t);
        assert!(a.demoted && !a.newly_demoted);
    }

    #[test]
    fn demoted_apps_lose_the_defer_courtesy_but_keep_earning_tokens() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        for _ in 0..2 {
            ctl.decide("storm", AppClass::Deferrable, t);
        }
        for _ in 0..2 {
            assert!(matches!(
                ctl.decide("storm", AppClass::Deferrable, t).decision,
                AdmissionDecision::Defer { .. }
            ));
        }
        for _ in 0..3 {
            ctl.decide("storm", AppClass::Deferrable, t);
        }
        assert!(ctl.is_demoted("storm"));
        // Dry + demoted -> straight rejection, no deferral.
        assert!(matches!(
            ctl.decide("storm", AppClass::Deferrable, t).decision,
            AdmissionDecision::Reject { .. }
        ));
        // But a refilled bucket still admits (pre-quarantined by caller).
        let later = SimTime::from_secs(120);
        let a = ctl.decide("storm", AppClass::Deferrable, later);
        assert_eq!(a.decision, AdmissionDecision::Admit);
        assert!(a.demoted);
    }

    #[test]
    fn admission_resets_the_rejection_streak() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        for _ in 0..2 {
            ctl.decide("a", AppClass::Perceptible, t);
        }
        ctl.decide("a", AppClass::Perceptible, t); // reject 1
        ctl.decide("a", AppClass::Perceptible, t); // reject 2
        // A token arrives; the streak resets before demotion at 3.
        let a = ctl.decide("a", AppClass::Perceptible, SimTime::from_secs(30));
        assert_eq!(a.decision, AdmissionDecision::Admit);
        ctl.decide("a", AppClass::Perceptible, SimTime::from_secs(30)); // reject 1
        assert!(!ctl.is_demoted("a"));
    }

    #[test]
    fn classes_have_independent_buckets() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        for _ in 0..2 {
            assert_eq!(
                ctl.decide("a", AppClass::Perceptible, t).decision,
                AdmissionDecision::Admit
            );
        }
        // Perceptible is dry; deferrable is untouched.
        assert_eq!(
            ctl.decide("a", AppClass::Deferrable, t).decision,
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn state_is_keyed_by_label_and_survives_restore() {
        let mut ctl = AdmissionController::new(tight());
        let t = SimTime::ZERO;
        for _ in 0..7 {
            ctl.decide("storm", AppClass::Perceptible, t);
        }
        assert!(ctl.is_demoted("storm"));
        assert!(!ctl.is_demoted("bystander"));
        let snapshot: Vec<(String, AppAdmission)> = ctl
            .apps()
            .map(|(k, v)| (k.to_owned(), *v))
            .collect();
        let restored = AdmissionController::restore(*ctl.config(), snapshot);
        assert_eq!(restored, ctl);
        assert!(restored.is_demoted("storm"));
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut ctl = AdmissionController::new(AdmissionConfig::default());
            let mut out = Vec::new();
            for i in 0..40u64 {
                let class = if i % 3 == 0 {
                    AppClass::Perceptible
                } else {
                    AppClass::Deferrable
                };
                out.push(ctl.decide("app", class, SimTime::from_secs(i * 7)));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
