//! Simulation time primitives.
//!
//! The alarm manager and the simulator share a millisecond-resolution
//! monotonic clock. Two newtypes keep instants and durations apart
//! ([`SimTime`] vs [`SimDuration`]), and [`Interval`] models the *closed*
//! time intervals the paper reasons about (window intervals and grace
//! intervals both start at an alarm's nominal delivery time).
//!
//! # Examples
//!
//! ```
//! use simty_core::time::{Interval, SimDuration, SimTime};
//!
//! let window = Interval::new(SimTime::from_secs(60), SimTime::from_secs(105));
//! let grace = Interval::new(SimTime::from_secs(60), SimTime::from_secs(117));
//! assert!(window.overlaps(grace));
//! assert_eq!(window.intersection(grace), Some(window));
//! assert_eq!(window.len(), SimDuration::from_secs(45));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in milliseconds since the start of
/// the simulation.
///
/// `SimTime` is totally ordered and supports the arithmetic that makes
/// sense for instants: `SimTime + SimDuration = SimTime`,
/// `SimTime - SimTime = SimDuration`.
///
/// # Examples
///
/// ```
/// use simty_core::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(30) + SimDuration::from_millis(500);
/// assert_eq!(t.as_millis(), 30_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulation clock (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `millis` milliseconds after the simulation origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Creates an instant `secs` seconds after the simulation origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Milliseconds since the simulation origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation origin, with millisecond precision.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration elapsed since `earlier`, or `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0;
        let secs = total_ms / 1_000;
        let ms = total_ms % 1_000;
        if ms == 0 {
            write!(f, "{secs}s")
        } else {
            write!(f, "{secs}.{ms:03}s")
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the subtraction would move before the simulation origin.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction moved before the simulation origin"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] for the lenient variant.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction with a later right-hand side"),
        )
    }
}

/// A span of simulation time, in milliseconds.
///
/// # Examples
///
/// ```
/// use simty_core::time::SimDuration;
///
/// let repeat = SimDuration::from_secs(200);
/// let window = repeat.mul_f64(0.75);
/// assert_eq!(window, SimDuration::from_secs(150));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Length in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds, with millisecond precision.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by `factor`, rounding to the nearest millisecond.
    ///
    /// This is how the paper derives interval lengths: the window interval is
    /// `alpha` times the repeating interval and the grace interval `beta`
    /// times it.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio `self / other` as a float.
    ///
    /// Used to normalize delivery delays by the repeating interval
    /// (the paper's Fig. 4 metric).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_duration_f64(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "division by a zero duration");
        self.0 as f64 / other.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000;
        let ms = self.0 % 1_000;
        if ms == 0 {
            write!(f, "{secs}s")
        } else {
            write!(f, "{secs}.{ms:03}s")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] for the
    /// lenient variant.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflowed"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// A closed interval `[start, end]` on the simulation clock.
///
/// Window intervals and grace intervals are both closed intervals starting
/// at an alarm's nominal delivery time. A *point* interval (`start == end`)
/// models an alarm registered with `alpha = 0` — exact delivery with no
/// alignment flexibility of its own (it can still be absorbed into another
/// alarm's window that contains the point).
///
/// # Examples
///
/// ```
/// use simty_core::time::{Interval, SimTime};
///
/// let a = Interval::new(SimTime::from_secs(0), SimTime::from_secs(10));
/// let b = Interval::point(SimTime::from_secs(10));
/// assert!(a.overlaps(b));
/// assert_eq!(a.intersection(b), Some(b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    start: SimTime,
    end: SimTime,
}

impl Interval {
    /// Creates the closed interval `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Interval { start, end }
    }

    /// Creates the degenerate interval `[t, t]`.
    pub fn point(t: SimTime) -> Self {
        Interval { start: t, end: t }
    }

    /// Creates `[start, start + len]`.
    pub fn starting_at(start: SimTime, len: SimDuration) -> Self {
        Interval {
            start,
            end: start + len,
        }
    }

    /// The inclusive lower bound.
    pub fn start(self) -> SimTime {
        self.start
    }

    /// The inclusive upper bound.
    pub fn end(self) -> SimTime {
        self.end
    }

    /// The interval's length (`end - start`).
    pub fn len(self) -> SimDuration {
        self.end - self.start
    }

    /// Whether the interval is a single point.
    pub fn is_point(self) -> bool {
        self.start == self.end
    }

    /// Whether `t` lies inside the closed interval.
    pub fn contains(self, t: SimTime) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether two closed intervals share at least one point.
    ///
    /// This is the paper's notion of "overlap" for both window and grace
    /// intervals; touching endpoints count.
    pub fn overlaps(self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The common sub-interval, or `None` if the intervals are disjoint.
    ///
    /// Queue entries maintain their window/grace attributes as the running
    /// intersection of their members' intervals (§3.2.1).
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval {
                start: self.start.max(other.start),
                end: self.end.min(other.end),
            })
        } else {
            None
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 10_250);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(250));
        assert_eq!(t - SimDuration::from_millis(250), SimTime::from_secs(10));
    }

    #[test]
    fn simtime_saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    #[should_panic(expected = "later right-hand side")]
    fn simtime_sub_panics_on_underflow() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(60), SimDuration::from_mins(1));
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(3).as_millis(), 10_800_000);
    }

    #[test]
    fn duration_mul_f64_rounds_to_millisecond() {
        // alpha = 0.75 of a 200 s repeating interval -> 150 s window.
        let repeat = SimDuration::from_secs(200);
        assert_eq!(repeat.mul_f64(0.75), SimDuration::from_secs(150));
        // Rounding, not truncation.
        assert_eq!(SimDuration::from_millis(3).mul_f64(0.5), SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-0.5);
    }

    #[test]
    fn duration_ratio() {
        let delay = SimDuration::from_secs(18);
        let repeat = SimDuration::from_secs(100);
        assert!((delay.div_duration_f64(repeat) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn duration_sum_over_iterator() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn interval_overlap_is_symmetric_and_closed() {
        let a = Interval::new(SimTime::from_secs(0), SimTime::from_secs(10));
        let b = Interval::new(SimTime::from_secs(10), SimTime::from_secs(20));
        let c = Interval::new(SimTime::from_secs(11), SimTime::from_secs(20));
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c) && !c.overlaps(a));
    }

    #[test]
    fn interval_intersection_matches_overlap() {
        let a = Interval::new(SimTime::from_secs(0), SimTime::from_secs(10));
        let b = Interval::new(SimTime::from_secs(5), SimTime::from_secs(20));
        let i = a.intersection(b).unwrap();
        assert_eq!(i, Interval::new(SimTime::from_secs(5), SimTime::from_secs(10)));
        let c = Interval::point(SimTime::from_secs(30));
        assert_eq!(a.intersection(c), None);
    }

    #[test]
    fn point_interval_models_alpha_zero() {
        // An alpha = 0 alarm has a point window; it overlaps a window that
        // contains its nominal time, and nothing else.
        let exact = Interval::point(SimTime::from_secs(60));
        let wide = Interval::new(SimTime::from_secs(50), SimTime::from_secs(70));
        let disjoint = Interval::new(SimTime::from_secs(61), SimTime::from_secs(70));
        assert!(exact.overlaps(wide));
        assert!(!exact.overlaps(disjoint));
        assert!(exact.is_point());
        assert_eq!(exact.len(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn interval_rejects_reversed_bounds() {
        let _ = Interval::new(SimTime::from_secs(2), SimTime::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3s");
        let iv = Interval::new(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(iv.to_string(), "[0s, 1s]");
    }
}
