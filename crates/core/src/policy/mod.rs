//! Alarm alignment policies.
//!
//! A policy decides, for every alarm being (re)inserted, which queue entry
//! should host it. Four policies ship with the crate:
//!
//! * [`ExactPolicy`] — no alignment; every alarm gets its own entry and is
//!   delivered at its nominal time (the "expected number of wakeups"
//!   denominator of the paper's Table 4).
//! * [`NativePolicy`] — Android ≥ 4.4's window-overlap batching with
//!   realignment on reinsert (§2.1).
//! * [`SimtyPolicy`] — the paper's similarity-based policy: a search phase
//!   filtering on time similarity and perceptibility, and a selection
//!   phase ranking by Table 1 (§3.2.1).
//! * [`DurationSimilarityPolicy`] — the §5 extension that additionally
//!   prefers entries whose tasks wakelock hardware for a similar duration.
//! * [`FixedIntervalPolicy`] — the fixed-grid "immediate remedy" baseline
//!   the paper cites from Lin et al. \[5\].
//! * [`DozePolicy`] — escalating maintenance windows in the spirit of
//!   Android 6's Doze, the platform's eventual answer to this problem.
//!
//! Custom policies implement [`AlignmentPolicy`]; the trait is
//! object-safe, and the [`AlarmManager`](crate::manager::AlarmManager)
//! stores policies as `Box<dyn AlignmentPolicy>`.

mod doze;
mod duration;
mod exact;
mod fixed;
mod native;
mod simty;

pub use doze::DozePolicy;
pub use duration::DurationSimilarityPolicy;
pub use exact::ExactPolicy;
pub use fixed::FixedIntervalPolicy;
pub use native::NativePolicy;
pub use simty::SimtyPolicy;

use std::fmt;

use crate::alarm::Alarm;
use crate::audit::CandidateAudit;
use crate::entry::DeliveryDiscipline;
use crate::queue::AlarmQueue;

/// Where a new alarm should be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Join the existing entry at this queue position.
    Existing(usize),
    /// No applicable entry exists (or the queue is empty): create a new
    /// entry for the alarm.
    NewEntry,
}

/// An alarm alignment policy.
///
/// Implementations must be deterministic: given the same queue and alarm
/// they must return the same [`Placement`], because experiment runs are
/// replayed bit-for-bit. Policies must also be [`Send`] + [`Sync`] so a
/// manager can be shared across threads via
/// [`AlarmService`](crate::service::AlarmService); the built-in policies
/// are stateless, which satisfies this trivially.
///
/// # Examples
///
/// A policy that never aligns anything:
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::entry::DeliveryDiscipline;
/// use simty_core::policy::{AlignmentPolicy, Placement};
/// use simty_core::queue::AlarmQueue;
///
/// #[derive(Debug)]
/// struct Isolate;
///
/// impl AlignmentPolicy for Isolate {
///     fn name(&self) -> &str {
///         "ISOLATE"
///     }
///
///     fn place(&self, _queue: &AlarmQueue, _alarm: &Alarm) -> Placement {
///         Placement::NewEntry
///     }
///
///     fn discipline(&self) -> DeliveryDiscipline {
///         DeliveryDiscipline::Window
///     }
/// }
/// ```
pub trait AlignmentPolicy: fmt::Debug + Send + Sync {
    /// A short display name used in reports (e.g. `"SIMTY"`).
    fn name(&self) -> &str;

    /// Chooses the entry that should host `alarm`, or
    /// [`Placement::NewEntry`] if none is applicable.
    ///
    /// The queue passed in has already had any stale copy of the same
    /// alarm removed by the manager.
    fn place(&self, queue: &AlarmQueue, alarm: &Alarm) -> Placement;

    /// [`place`](Self::place), additionally recording how every
    /// candidate entry fared into `audit` (one
    /// [`CandidateAudit`] per entry weighed, in queue order).
    ///
    /// Must return exactly the placement [`place`](Self::place) would:
    /// auditing is observation, never influence. The default
    /// implementation delegates to [`place`](Self::place) and records
    /// nothing, which is honest for policies whose search has no
    /// similarity ranking to expose; SIMTY and DURSIM override it.
    fn place_audited(
        &self,
        queue: &AlarmQueue,
        alarm: &Alarm,
        audit: &mut Vec<CandidateAudit>,
    ) -> Placement {
        let _ = audit;
        self.place(queue, alarm)
    }

    /// How entries created under this policy derive their delivery times.
    fn discipline(&self) -> DeliveryDiscipline;

    /// Whether reinserting an alarm that is still queued triggers
    /// realignment of its entry-mates (NATIVE does this, §2.1; SIMTY only
    /// removes the stale copy, §3.2.1).
    fn realigns_on_reinsert(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_object(_p: &dyn AlignmentPolicy) {}
        let policies: Vec<Box<dyn AlignmentPolicy>> = vec![
            Box::new(ExactPolicy::new()),
            Box::new(NativePolicy::new()),
            Box::new(SimtyPolicy::new()),
            Box::new(DurationSimilarityPolicy::new()),
            Box::new(FixedIntervalPolicy::new(crate::time::SimDuration::from_secs(60))),
            Box::new(DozePolicy::android_like()),
        ];
        let names: Vec<_> = policies.iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names, ["EXACT", "NATIVE", "SIMTY", "DURSIM", "FIXED", "DOZE"]);
    }
}
