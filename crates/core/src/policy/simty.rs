//! SIMTY: the paper's similarity-based alignment policy (§3.2).

use crate::alarm::Alarm;
use crate::audit::{CandidateAudit, CandidateVerdict};
use crate::entry::DeliveryDiscipline;
use crate::hardware::HardwareSet;
use crate::policy::{AlignmentPolicy, Placement};
use crate::queue::AlarmQueue;
use crate::similarity::{HardwareGranularity, Preferability, TimeSimilarity};

/// The similarity-based alignment policy of the paper.
///
/// Two phases (§3.2.1):
///
/// * **Search** — scan the queue in delivery order for *applicable*
///   entries: if either the new alarm or the examined entry is
///   perceptible, time similarity must be *high* (window overlap); if both
///   are imperceptible, *high or medium* (grace overlap) suffices.
/// * **Selection** — among the applicable entries, pick the most
///   preferable per Table 1 (hardware similarity first, time similarity
///   as tie-break); among equally preferable entries the first found wins.
///
/// The hardware-similarity granularity is configurable for the §3.1.1
/// ablation (2-, 3-, or 4-level); the default is the canonical 3-level
/// scheme.
///
/// # Examples
///
/// ```
/// use simty_core::manager::AlarmManager;
/// use simty_core::policy::SimtyPolicy;
/// use simty_core::similarity::HardwareGranularity;
///
/// let manager = AlarmManager::new(Box::new(SimtyPolicy::new()));
/// assert_eq!(manager.policy_name(), "SIMTY");
///
/// let four_level = SimtyPolicy::with_granularity(HardwareGranularity::Four);
/// assert_eq!(four_level.granularity(), HardwareGranularity::Four);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SimtyPolicy {
    granularity: HardwareGranularity,
    energy_hungry: HardwareSet,
}

impl Default for SimtyPolicy {
    fn default() -> Self {
        SimtyPolicy {
            granularity: HardwareGranularity::Three,
            energy_hungry: HardwareGranularity::default_energy_hungry(),
        }
    }
}

impl SimtyPolicy {
    /// Creates the policy with the paper's 3-level hardware similarity.
    pub fn new() -> Self {
        SimtyPolicy::default()
    }

    /// Creates the policy with an alternative hardware-similarity
    /// granularity (§3.1.1 sketches 2- and 4-level variants).
    pub fn with_granularity(granularity: HardwareGranularity) -> Self {
        SimtyPolicy {
            granularity,
            ..SimtyPolicy::default()
        }
    }

    /// Overrides which components the 4-level scheme treats as energy
    /// hungry.
    pub fn with_energy_hungry(mut self, energy_hungry: HardwareSet) -> Self {
        self.energy_hungry = energy_hungry;
        self
    }

    /// The configured hardware-similarity granularity.
    pub fn granularity(&self) -> HardwareGranularity {
        self.granularity
    }

    /// The search-phase applicability rule (§3.2.1): perceptibility on
    /// either side demands high time similarity; otherwise medium
    /// suffices. Low time similarity is never applicable.
    pub fn is_applicable(
        alarm_perceptible: bool,
        entry_perceptible: bool,
        time: TimeSimilarity,
    ) -> bool {
        match time {
            TimeSimilarity::High => true,
            TimeSimilarity::Medium => !alarm_perceptible && !entry_perceptible,
            TimeSimilarity::Low => false,
        }
    }

    /// Both placement entry points share this loop; `audit`, when
    /// present, receives one [`CandidateAudit`] per entry weighed and
    /// never influences the outcome.
    fn place_inner(
        &self,
        queue: &AlarmQueue,
        alarm: &Alarm,
        mut audit: Option<&mut Vec<CandidateAudit>>,
    ) -> Placement {
        let alarm_hw = alarm.known_hardware();
        let alarm_perceptible = alarm.is_perceptible();
        // Search-phase cutoff: a Window/PerceptibilityAware entry's window
        // and grace intersections both start at its delivery time (every
        // member interval starts at its own nominal, so the intersections
        // start at the latest nominal — which is the delivery time under
        // those disciplines). The queue is delivery-ordered, so once an
        // entry's delivery time passes the end of both candidate
        // intervals, no overlap — hence no applicable similarity — is
        // possible for it or anything after it.
        let cutoff = alarm.window_interval().end().max(alarm.grace_interval().end());
        let mut best: Option<(Preferability, usize)> = None;
        for (idx, entry) in queue.iter().enumerate() {
            if entry.delivery_time() > cutoff
                && matches!(
                    entry.discipline(),
                    DeliveryDiscipline::Window | DeliveryDiscipline::PerceptibilityAware
                )
            {
                // A manager's queue is discipline-homogeneous (entries are
                // only created with its policy's discipline), so everything
                // after this point is past the cutoff too.
                debug_assert!(queue.iter().skip(idx).all(|e| matches!(
                    e.discipline(),
                    DeliveryDiscipline::Window | DeliveryDiscipline::PerceptibilityAware
                )));
                if let Some(a) = audit.as_deref_mut() {
                    a.push(CandidateAudit {
                        index: idx,
                        delivery_time: entry.delivery_time(),
                        time: entry.time_similarity_to(alarm),
                        hw_rank: None,
                        preferability: None,
                        verdict: CandidateVerdict::PastCutoff,
                    });
                }
                break;
            }
            let time = entry.time_similarity_to(alarm);
            if !Self::is_applicable(alarm_perceptible, entry.is_perceptible(), time) {
                if let Some(a) = audit.as_deref_mut() {
                    a.push(CandidateAudit {
                        index: idx,
                        delivery_time: entry.delivery_time(),
                        time,
                        hw_rank: None,
                        preferability: None,
                        verdict: CandidateVerdict::NotApplicable,
                    });
                }
                continue;
            }
            let hw_rank = self
                .granularity
                .rank(alarm_hw, entry.hardware(), self.energy_hungry);
            let pref = Preferability::from_ranks(hw_rank, time);
            if let Some(a) = audit.as_deref_mut() {
                // Provisionally outranked; the winner is corrected below.
                a.push(CandidateAudit {
                    index: idx,
                    delivery_time: entry.delivery_time(),
                    time,
                    hw_rank: Some(hw_rank),
                    preferability: Some(pref),
                    verdict: CandidateVerdict::Outranked,
                });
            }
            // Strictly-better comparison keeps the first found among ties.
            if best.is_none_or(|(b, _)| pref < b) {
                best = Some((pref, idx));
            }
        }
        if let (Some((_, idx)), Some(a)) = (best, audit) {
            if let Some(winner) = a.iter_mut().find(|c| c.index == idx) {
                winner.verdict = CandidateVerdict::Won;
            }
        }
        match best {
            Some((_, idx)) => Placement::Existing(idx),
            None => Placement::NewEntry,
        }
    }
}

impl AlignmentPolicy for SimtyPolicy {
    fn name(&self) -> &str {
        "SIMTY"
    }

    fn place(&self, queue: &AlarmQueue, alarm: &Alarm) -> Placement {
        self.place_inner(queue, alarm, None)
    }

    fn place_audited(
        &self,
        queue: &AlarmQueue,
        alarm: &Alarm,
        audit: &mut Vec<CandidateAudit>,
    ) -> Placement {
        self.place_inner(queue, alarm, Some(audit))
    }

    fn discipline(&self) -> DeliveryDiscipline {
        DeliveryDiscipline::PerceptibilityAware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::QueueEntry;
    use crate::hardware::HardwareComponent;
    use crate::time::{SimDuration, SimTime};

    fn alarm_with(
        label: &str,
        nominal_s: u64,
        repeat_s: u64,
        alpha: f64,
        beta: f64,
        hw: HardwareSet,
        known: bool,
    ) -> Alarm {
        let mut a = Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(repeat_s))
            .window_fraction(alpha)
            .grace_fraction(beta)
            .hardware(hw)
            .build()
            .unwrap();
        if known {
            a.mark_hardware_known();
        }
        a
    }

    fn wifi() -> HardwareSet {
        HardwareComponent::Wifi.into()
    }

    fn wps() -> HardwareSet {
        HardwareComponent::Wifi | HardwareComponent::Cellular
    }

    fn queue_of(alarms: Vec<Alarm>) -> AlarmQueue {
        let mut q = AlarmQueue::new();
        for a in alarms {
            q.insert_entry(QueueEntry::new(a, DeliveryDiscipline::PerceptibilityAware));
        }
        q
    }

    #[test]
    fn applicability_rule() {
        use TimeSimilarity as T;
        // Perceptibility on either side requires high time similarity.
        assert!(SimtyPolicy::is_applicable(true, false, T::High));
        assert!(!SimtyPolicy::is_applicable(true, false, T::Medium));
        assert!(!SimtyPolicy::is_applicable(false, true, T::Medium));
        // Both imperceptible: medium suffices.
        assert!(SimtyPolicy::is_applicable(false, false, T::Medium));
        // Low is never applicable.
        assert!(!SimtyPolicy::is_applicable(false, false, T::Low));
    }

    #[test]
    fn prefers_hardware_similarity_over_time_similarity() {
        // Entry 0: wifi alarm, windows overlap the candidate (time high,
        // hw low vs wps? wifi vs wps is medium).
        // Entry 1: wps alarm, only graces overlap (time medium, hw high).
        let e0 = alarm_with("wifi", 100, 600, 0.75, 0.9, wifi(), true); // window [100,550]
        let e1 = alarm_with("wps", 700, 1000, 0.05, 0.9, wps(), true); // window [700,750], grace [700,1600]
        let q = queue_of(vec![e0, e1]);
        // Candidate: wps hardware, window [400,450], grace [400,1300].
        let cand = alarm_with("cand", 400, 1000, 0.05, 0.9, wps(), true);
        // vs e0: windows [400,450] x [100,550] overlap -> time high, hw medium -> rank 3.
        // vs e1: windows disjoint, graces overlap -> time medium, hw high -> rank 2.
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::Existing(1));
    }

    #[test]
    fn perceptible_alarm_only_joins_window_overlapping_entries() {
        let imperceptible = alarm_with("w", 100, 600, 0.1, 0.9, wifi(), true); // window [100,160]
        let q = queue_of(vec![imperceptible]);
        // Perceptible candidate whose grace overlaps but window does not.
        let cand = alarm_with(
            "notify",
            300,
            1800,
            0.01,
            0.9,
            HardwareComponent::Vibrator.into(),
            true,
        );
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::NewEntry);
    }

    #[test]
    fn unknown_hardware_alarm_is_treated_as_perceptible() {
        let imperceptible = alarm_with("w", 100, 600, 0.1, 0.9, wifi(), true);
        let q = queue_of(vec![imperceptible]);
        // Unknown hardware (not yet delivered) -> perceptible -> needs high
        // time similarity; only graces overlap here.
        let cand = alarm_with("new", 300, 600, 0.1, 0.9, wifi(), false);
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::NewEntry);
        // Once known, the same timing becomes applicable (both imperceptible).
        let cand_known = alarm_with("new2", 300, 600, 0.1, 0.9, wifi(), true);
        assert_eq!(SimtyPolicy::new().place(&q, &cand_known), Placement::Existing(0));
    }

    #[test]
    fn first_found_wins_among_equal_preferability() {
        let a = alarm_with("a", 100, 600, 0.75, 0.9, wifi(), true);
        let b = alarm_with("b", 110, 600, 0.75, 0.9, wifi(), true);
        let q = queue_of(vec![a, b]);
        // Candidate overlaps both windows with identical hardware -> both
        // rank 1; the earlier entry (queue position 0) is chosen.
        let cand = alarm_with("c", 120, 600, 0.75, 0.9, wifi(), true);
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::Existing(0));
    }

    #[test]
    fn empty_queue_creates_new_entry() {
        let q = AlarmQueue::new();
        let cand = alarm_with("c", 120, 600, 0.75, 0.9, wifi(), true);
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::NewEntry);
    }

    #[test]
    fn two_level_granularity_merges_medium_and_high() {
        // Entry 0: wifi entry with window overlap (time high).
        // Entry 1: wps entry with window overlap (time high), later in queue.
        let e0 = alarm_with("wifi", 100, 600, 0.75, 0.9, wifi(), true);
        let e1 = alarm_with("wps", 150, 600, 0.75, 0.9, wps(), true);
        let q = queue_of(vec![e0, e1]);
        let cand = alarm_with("c", 200, 600, 0.75, 0.9, wps(), true);
        // 3-level: e1 has hw high (rank 1) beats e0's medium (rank 3).
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::Existing(1));
        // 2-level: both share a component (rank 0); first found (e0) wins.
        let two = SimtyPolicy::with_granularity(HardwareGranularity::Two);
        assert_eq!(two.place(&q, &cand), Placement::Existing(0));
    }

    #[test]
    fn motivating_example_alignment() {
        // Figure 2: queue holds a calendar alarm (vibrator) whose window
        // overlaps the new WPS alarm's window, and a WPS alarm whose grace
        // interval overlaps the new alarm's grace interval. NATIVE picks the
        // calendar entry; SIMTY tolerates further postponement to join the
        // other WPS alarm.
        let calendar = alarm_with(
            "calendar",
            100,
            1800,
            0.05,
            0.06,
            HardwareComponent::Speaker | HardwareComponent::Vibrator,
            true,
        ); // window [100, 190]
        let wps_queued = alarm_with("wps1", 400, 1000, 0.05, 0.9, wps(), true); // window [400,450], grace [400,1300]
        let q = queue_of(vec![calendar, wps_queued]);
        let new_wps = alarm_with("wps2", 150, 1000, 0.05, 0.9, wps(), true); // window [150,200], grace [150,1050]

        // NATIVE behaviour (window overlap with the calendar entry).
        let native = crate::policy::NativePolicy::new();
        assert_eq!(native.place(&q, &new_wps), Placement::Existing(0));
        // SIMTY prefers the hardware-identical WPS entry via grace overlap.
        assert_eq!(SimtyPolicy::new().place(&q, &new_wps), Placement::Existing(1));
    }
}
