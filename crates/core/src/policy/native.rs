//! Android's native window-overlap alignment policy (§2.1).

use crate::alarm::Alarm;
use crate::entry::DeliveryDiscipline;
use crate::policy::{AlignmentPolicy, Placement};
use crate::queue::AlarmQueue;

/// The alignment policy Android employs since version 4.4.
///
/// When an alarm is inserted, the queue entries are examined sequentially
/// for one "in which every alarm's window interval overlaps with that of
/// the new alarm"; the alarm joins the *first* such entry, or a new entry
/// is created. Because each entry maintains the running intersection of
/// its members' windows, "every member's window overlaps the new alarm's
/// window" is equivalent to "the entry's window intersection overlaps the
/// new alarm's window" (pairwise-overlapping 1-D intervals share a common
/// point). On reinsert of a still-queued alarm, the entry-mates are also
/// realigned ([`realigns_on_reinsert`](AlignmentPolicy::realigns_on_reinsert)).
///
/// # Examples
///
/// ```
/// use simty_core::manager::AlarmManager;
/// use simty_core::policy::NativePolicy;
///
/// let manager = AlarmManager::new(Box::new(NativePolicy::new()));
/// assert_eq!(manager.policy_name(), "NATIVE");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NativePolicy {
    realign: bool,
}

impl Default for NativePolicy {
    fn default() -> Self {
        NativePolicy { realign: true }
    }
}

impl NativePolicy {
    /// Creates the policy with realignment on reinsert enabled, as in
    /// Android (§2.1).
    pub fn new() -> Self {
        NativePolicy::default()
    }

    /// Creates the policy without the realignment step, isolating its
    /// effect for ablation.
    pub fn without_realignment() -> Self {
        NativePolicy { realign: false }
    }
}

impl AlignmentPolicy for NativePolicy {
    fn name(&self) -> &str {
        "NATIVE"
    }

    fn place(&self, queue: &AlarmQueue, alarm: &Alarm) -> Placement {
        let window = alarm.window_interval();
        for (idx, entry) in queue.iter().enumerate() {
            // A Window-discipline entry's window intersection starts at
            // its delivery time; the queue is delivery-ordered, so once
            // an entry's delivery time passes the candidate window's end,
            // no entry at or after it can overlap.
            if entry.delivery_time() > window.end()
                && matches!(
                    entry.discipline(),
                    DeliveryDiscipline::Window | DeliveryDiscipline::PerceptibilityAware
                )
            {
                break;
            }
            if entry.window().is_some_and(|w| w.overlaps(window)) {
                return Placement::Existing(idx);
            }
        }
        Placement::NewEntry
    }

    fn discipline(&self) -> DeliveryDiscipline {
        DeliveryDiscipline::Window
    }

    fn realigns_on_reinsert(&self) -> bool {
        self.realign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::QueueEntry;
    use crate::time::{SimDuration, SimTime};

    fn alarm(nominal_s: u64, repeat_s: u64, alpha: f64) -> Alarm {
        Alarm::builder("n")
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(repeat_s))
            .window_fraction(alpha)
            .build()
            .unwrap()
    }

    fn queue_of(alarms: Vec<Alarm>) -> AlarmQueue {
        let mut q = AlarmQueue::new();
        for a in alarms {
            q.insert_entry(QueueEntry::new(a, DeliveryDiscipline::Window));
        }
        q
    }

    #[test]
    fn joins_first_window_overlapping_entry() {
        // Entries with windows [100, 175] and [150, 225].
        let q = queue_of(vec![alarm(100, 100, 0.75), alarm(150, 100, 0.75)]);
        // Window [160, 235] overlaps both; the first (earlier) entry wins.
        let a = alarm(160, 100, 0.75);
        assert_eq!(NativePolicy::new().place(&q, &a), Placement::Existing(0));
    }

    #[test]
    fn creates_new_entry_when_no_window_overlaps() {
        let q = queue_of(vec![alarm(100, 100, 0.1)]); // window [100, 110]
        let a = alarm(200, 100, 0.1); // window [200, 210]
        assert_eq!(NativePolicy::new().place(&q, &a), Placement::NewEntry);
    }

    #[test]
    fn point_window_joins_containing_entry() {
        // An alpha = 0 alarm can still be absorbed by an entry whose window
        // contains its nominal point.
        let q = queue_of(vec![alarm(100, 200, 0.75)]); // window [100, 250]
        let a = alarm(180, 60, 0.0); // point window at 180
        assert_eq!(NativePolicy::new().place(&q, &a), Placement::Existing(0));
    }

    #[test]
    fn ignores_grace_intervals_entirely() {
        let mut early = Alarm::builder("e")
            .nominal(SimTime::from_secs(100))
            .repeating_static(SimDuration::from_secs(300))
            .window_fraction(0.1)
            .grace_fraction(0.9)
            .build()
            .unwrap();
        early.mark_hardware_known();
        let q = queue_of(vec![early]);
        // Graces overlap ([100, 370] vs [200, 470]) but windows do not
        // ([100, 130] vs [200, 230]): NATIVE refuses.
        let late = alarm(200, 300, 0.1);
        assert_eq!(NativePolicy::new().place(&q, &late), Placement::NewEntry);
    }

    #[test]
    fn realignment_flag() {
        assert!(NativePolicy::new().realigns_on_reinsert());
        assert!(!NativePolicy::without_realignment().realigns_on_reinsert());
    }
}
