//! A Doze-flavored maintenance-window policy.

use crate::alarm::Alarm;
use crate::entry::DeliveryDiscipline;
use crate::policy::{AlignmentPolicy, Placement};
use crate::queue::AlarmQueue;
use crate::time::{SimDuration, SimTime};

/// Escalating maintenance windows, in the spirit of Android 6's Doze mode
/// — the platform's eventual answer to the problem this paper studies.
///
/// The timeline is divided into maintenance windows whose spacing doubles
/// with every escalation level: the first `windows_per_level` windows are
/// `base` apart, the next batch `2·base`, then `4·base`, up to
/// `max_quantum`. Every alarm is postponed to the first window at or
/// after its nominal time; alarms bound for the same window batch.
///
/// Like [`FixedIntervalPolicy`](crate::policy::FixedIntervalPolicy) this
/// ignores windows, grace intervals, and perceptibility — it is a
/// *baseline*, quantifying what the platform's blunt instrument costs in
/// user experience relative to SIMTY's similarity-aware alignment (and
/// what it saves once the device has been idle for hours).
///
/// # Examples
///
/// ```
/// use simty_core::policy::DozePolicy;
/// use simty_core::time::{SimDuration, SimTime};
///
/// let doze = DozePolicy::new(SimDuration::from_mins(5), SimDuration::from_hours(1), 6);
/// // Early on, windows sit 5 minutes apart...
/// assert_eq!(doze.window_after(SimTime::from_secs(1)), SimTime::from_secs(300));
/// // ...but deep into idle they are much sparser.
/// let late = doze.window_after(SimTime::from_secs(20_000));
/// assert!(late.as_millis() - 20_000_000 <= SimDuration::from_hours(1).as_millis());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DozePolicy {
    base: SimDuration,
    max_quantum: SimDuration,
    windows_per_level: u32,
}

impl DozePolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero, `max_quantum < base`, or
    /// `windows_per_level` is zero.
    pub fn new(base: SimDuration, max_quantum: SimDuration, windows_per_level: u32) -> Self {
        assert!(!base.is_zero(), "doze base quantum must be positive");
        assert!(max_quantum >= base, "max quantum below the base quantum");
        assert!(windows_per_level > 0, "windows per level must be positive");
        DozePolicy {
            base,
            max_quantum,
            windows_per_level,
        }
    }

    /// Android-flavored defaults: 5-minute windows escalating to hourly.
    pub fn android_like() -> Self {
        DozePolicy::new(SimDuration::from_mins(5), SimDuration::from_hours(1), 6)
    }

    /// The first maintenance window at or after `t`.
    pub fn window_after(&self, t: SimTime) -> SimTime {
        crate::entry::escalating_window_after(
            t,
            self.base,
            self.max_quantum,
            self.windows_per_level,
        )
    }
}

impl AlignmentPolicy for DozePolicy {
    fn name(&self) -> &str {
        "DOZE"
    }

    fn place(&self, queue: &AlarmQueue, alarm: &Alarm) -> Placement {
        let target = self.window_after(alarm.nominal());
        for (idx, entry) in queue.iter().enumerate() {
            if entry.delivery_time() == target {
                return Placement::Existing(idx);
            }
        }
        Placement::NewEntry
    }

    fn discipline(&self) -> DeliveryDiscipline {
        DeliveryDiscipline::Escalating {
            base: self.base,
            max_quantum: self.max_quantum,
            windows_per_level: self.windows_per_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::QueueEntry;
    use crate::hardware::HardwareComponent;

    fn policy() -> DozePolicy {
        DozePolicy::new(SimDuration::from_secs(100), SimDuration::from_secs(400), 2)
    }

    #[test]
    fn windows_escalate_and_cap() {
        let p = policy();
        // Level 0: 100, 200 (2 windows at base).
        assert_eq!(p.window_after(SimTime::from_secs(1)), SimTime::from_secs(100));
        assert_eq!(p.window_after(SimTime::from_secs(150)), SimTime::from_secs(200));
        // Level 1: 400, 600 (quantum 200).
        assert_eq!(p.window_after(SimTime::from_secs(201)), SimTime::from_secs(400));
        assert_eq!(p.window_after(SimTime::from_secs(401)), SimTime::from_secs(600));
        // Level 2: 1000, 1400 (quantum 400, the cap).
        assert_eq!(p.window_after(SimTime::from_secs(601)), SimTime::from_secs(1_000));
        // Capped thereafter: 1800, 2200, ...
        assert_eq!(p.window_after(SimTime::from_secs(1_401)), SimTime::from_secs(1_800));
        assert_eq!(p.window_after(SimTime::from_secs(1_801)), SimTime::from_secs(2_200));
    }

    #[test]
    fn exact_window_hits_are_not_postponed() {
        let p = policy();
        assert_eq!(p.window_after(SimTime::from_secs(200)), SimTime::from_secs(200));
        assert_eq!(p.window_after(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn same_window_alarms_batch() {
        let p = DozePolicy::new(SimDuration::from_secs(100), SimDuration::from_secs(100), 1);
        let alarm = |nominal_s: u64| {
            Alarm::builder("d")
                .nominal(SimTime::from_secs(nominal_s))
                .repeating_static(SimDuration::from_secs(600))
                .hardware(HardwareComponent::Wifi.into())
                .build()
                .unwrap()
        };
        let mut q = AlarmQueue::new();
        q.insert_entry(QueueEntry::new(alarm(110), p.discipline()));
        // 150 rounds to the same window (200) as 110.
        assert_eq!(p.place(&q, &alarm(150)), Placement::Existing(0));
        // 210 rounds to 300.
        assert_eq!(p.place(&q, &alarm(210)), Placement::NewEntry);
    }

    #[test]
    fn android_like_defaults() {
        let p = DozePolicy::android_like();
        assert_eq!(p.name(), "DOZE");
        assert_eq!(
            p.window_after(SimTime::from_secs(1)),
            SimTime::from_secs(300)
        );
    }

    #[test]
    #[should_panic(expected = "max quantum below")]
    fn rejects_inverted_quanta() {
        let _ = DozePolicy::new(SimDuration::from_secs(100), SimDuration::from_secs(50), 1);
    }
}
