//! The EXACT (no-alignment) baseline policy.

use crate::alarm::Alarm;
use crate::entry::DeliveryDiscipline;
use crate::policy::{AlignmentPolicy, Placement};
use crate::queue::AlarmQueue;

/// Baseline policy that never aligns: every alarm is delivered at its own
/// nominal time in a singleton entry.
///
/// This models a system without any alignment support and provides the
/// "expected number of wakeups if no alignment policy is applied" —
/// the denominators in the paper's Table 4.
///
/// # Examples
///
/// ```
/// use simty_core::manager::AlarmManager;
/// use simty_core::policy::ExactPolicy;
///
/// let manager = AlarmManager::new(Box::new(ExactPolicy::new()));
/// assert_eq!(manager.policy_name(), "EXACT");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactPolicy {
    _private: (),
}

impl ExactPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        ExactPolicy::default()
    }
}

impl AlignmentPolicy for ExactPolicy {
    fn name(&self) -> &str {
        "EXACT"
    }

    fn place(&self, _queue: &AlarmQueue, _alarm: &Alarm) -> Placement {
        Placement::NewEntry
    }

    fn discipline(&self) -> DeliveryDiscipline {
        DeliveryDiscipline::Window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::QueueEntry;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn always_creates_a_new_entry() {
        let policy = ExactPolicy::new();
        let mut queue = AlarmQueue::new();
        let a = Alarm::builder("a")
            .nominal(SimTime::from_secs(10))
            .repeating_static(SimDuration::from_secs(60))
            .window_fraction(0.75)
            .build()
            .unwrap();
        let b = Alarm::builder("b")
            .nominal(SimTime::from_secs(10))
            .repeating_static(SimDuration::from_secs(60))
            .window_fraction(0.75)
            .build()
            .unwrap();
        assert_eq!(policy.place(&queue, &a), Placement::NewEntry);
        queue.insert_entry(QueueEntry::new(a, policy.discipline()));
        // Even a perfectly overlapping alarm gets its own entry.
        assert_eq!(policy.place(&queue, &b), Placement::NewEntry);
    }

    #[test]
    fn does_not_realign() {
        assert!(!ExactPolicy::new().realigns_on_reinsert());
    }
}
