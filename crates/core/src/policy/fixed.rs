//! The fixed-interval alignment baseline from the paper's related work.

use crate::alarm::Alarm;
use crate::entry::DeliveryDiscipline;
use crate::policy::{AlignmentPolicy, Placement};
use crate::queue::AlarmQueue;
use crate::time::{SimDuration, SimTime};

/// Forcibly aligns every alarm to a fixed wakeup grid.
///
/// The paper's introduction cites an "immediate remedy, which allows a
/// smartphone to be awakened only at a fixed time interval by forcibly
/// aligning background activities within each interval" (Lin et al.,
/// ISLPED'15 \[5\]) as evidence that centralized wakeup management pays
/// off. This policy reproduces that remedy: an alarm is postponed to the
/// first grid point at or after its nominal time, and every alarm bound
/// for the same grid point shares one entry.
///
/// Unlike SIMTY, the grid ignores windows, grace intervals, *and*
/// perceptibility — perceptible alarms can be delayed arbitrarily far
/// (up to one quantum), which is exactly the user-experience cost SIMTY's
/// search phase avoids. Comparing the two quantifies what similarity
/// awareness buys over brute-force batching.
///
/// # Examples
///
/// ```
/// use simty_core::manager::AlarmManager;
/// use simty_core::policy::FixedIntervalPolicy;
/// use simty_core::time::SimDuration;
///
/// let policy = FixedIntervalPolicy::new(SimDuration::from_secs(60));
/// let manager = AlarmManager::new(Box::new(policy));
/// assert_eq!(manager.policy_name(), "FIXED");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FixedIntervalPolicy {
    quantum: SimDuration,
}

impl FixedIntervalPolicy {
    /// Creates the policy with the given grid period.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "fixed-interval quantum must be positive");
        FixedIntervalPolicy { quantum }
    }

    /// The grid period.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// The grid point an alarm nominal at `t` is postponed to.
    pub fn grid_point(&self, t: SimTime) -> SimTime {
        let q = self.quantum.as_millis();
        SimTime::from_millis(t.as_millis().div_ceil(q) * q)
    }
}

impl AlignmentPolicy for FixedIntervalPolicy {
    fn name(&self) -> &str {
        "FIXED"
    }

    fn place(&self, queue: &AlarmQueue, alarm: &Alarm) -> Placement {
        let target = self.grid_point(alarm.nominal());
        for (idx, entry) in queue.iter().enumerate() {
            if entry.delivery_time() == target {
                return Placement::Existing(idx);
            }
        }
        Placement::NewEntry
    }

    fn discipline(&self) -> DeliveryDiscipline {
        DeliveryDiscipline::Quantized {
            quantum: self.quantum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::QueueEntry;
    use crate::hardware::HardwareComponent;

    fn alarm(nominal_s: u64) -> Alarm {
        Alarm::builder("f")
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.25)
            .grace_fraction(0.5)
            .hardware(HardwareComponent::Wifi.into())
            .build()
            .unwrap()
    }

    #[test]
    fn grid_point_rounds_up() {
        let p = FixedIntervalPolicy::new(SimDuration::from_secs(60));
        assert_eq!(p.grid_point(SimTime::from_secs(0)), SimTime::from_secs(0));
        assert_eq!(p.grid_point(SimTime::from_secs(1)), SimTime::from_secs(60));
        assert_eq!(p.grid_point(SimTime::from_secs(60)), SimTime::from_secs(60));
        assert_eq!(p.grid_point(SimTime::from_secs(61)), SimTime::from_secs(120));
    }

    #[test]
    fn same_bucket_alarms_share_an_entry() {
        let p = FixedIntervalPolicy::new(SimDuration::from_secs(60));
        let mut q = AlarmQueue::new();
        q.insert_entry(QueueEntry::new(alarm(10), p.discipline()));
        // Nominal 45 -> same grid point 60 -> join.
        assert_eq!(p.place(&q, &alarm(45)), Placement::Existing(0));
        // Nominal 70 -> grid point 120 -> new entry.
        assert_eq!(p.place(&q, &alarm(70)), Placement::NewEntry);
    }

    #[test]
    fn quantized_entries_fire_on_the_grid() {
        let p = FixedIntervalPolicy::new(SimDuration::from_secs(60));
        let mut entry = QueueEntry::new(alarm(10), p.discipline());
        assert_eq!(entry.delivery_time(), SimTime::from_secs(60));
        entry.push(alarm(45));
        assert_eq!(entry.delivery_time(), SimTime::from_secs(60));
        entry.push(alarm(59));
        assert_eq!(entry.delivery_time(), SimTime::from_secs(60));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_quantum_is_rejected() {
        let _ = FixedIntervalPolicy::new(SimDuration::ZERO);
    }
}
