//! DURSIM: the duration-similarity extension sketched in the paper's §5.

use crate::alarm::Alarm;
use crate::audit::{CandidateAudit, CandidateVerdict};
use crate::entry::{DeliveryDiscipline, QueueEntry};
use crate::hardware::HardwareSet;
use crate::policy::{AlignmentPolicy, Placement, SimtyPolicy};
use crate::queue::AlarmQueue;
use crate::similarity::{HardwareGranularity, Preferability, TimeSimilarity};
use crate::time::SimDuration;

/// SIMTY extended with *duration similarity* (§5): among entries with the
/// same hardware and time similarity, prefer the one whose tasks wakelock
/// hardware for a similar amount of time, so active periods overlap
/// instead of merely sharing activation costs.
///
/// The paper notes this "requires that the duration of hardware
/// wakelocking be specified during alarm registration in Android's future
/// practice"; this library's [`Alarm`] already carries a task duration, so
/// the extension is implementable directly.
///
/// Duration similarity between an alarm and an entry is bucketed by the
/// relative difference between the alarm's task duration and the mean of
/// the entry's task durations:
/// rank 0 if the relative difference is ≤ 25 %, rank 1 if ≤ 50 %,
/// rank 2 otherwise.
///
/// Selection ranks candidates lexicographically by
/// `(hardware rank, duration rank, time rank)`, keeping hardware
/// similarity dominant as in Table 1.
///
/// # Examples
///
/// ```
/// use simty_core::manager::AlarmManager;
/// use simty_core::policy::DurationSimilarityPolicy;
///
/// let manager = AlarmManager::new(Box::new(DurationSimilarityPolicy::new()));
/// assert_eq!(manager.policy_name(), "DURSIM");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DurationSimilarityPolicy {
    granularity: HardwareGranularity,
    energy_hungry: HardwareSet,
}

impl Default for DurationSimilarityPolicy {
    fn default() -> Self {
        DurationSimilarityPolicy {
            granularity: HardwareGranularity::Three,
            energy_hungry: HardwareGranularity::default_energy_hungry(),
        }
    }
}

impl DurationSimilarityPolicy {
    /// Creates the policy with 3-level hardware similarity.
    pub fn new() -> Self {
        DurationSimilarityPolicy::default()
    }

    /// Buckets the similarity between a task duration and an entry's mean
    /// task duration: 0 (≤ 25 % apart), 1 (≤ 50 %), or 2.
    pub fn duration_rank(alarm_duration: SimDuration, entry_mean: SimDuration) -> u8 {
        let a = alarm_duration.as_millis() as f64;
        let b = entry_mean.as_millis() as f64;
        let longer = a.max(b);
        if longer == 0.0 {
            return 0;
        }
        let rel = (a - b).abs() / longer;
        if rel <= 0.25 {
            0
        } else if rel <= 0.5 {
            1
        } else {
            2
        }
    }

    fn entry_mean_duration(entry: &QueueEntry) -> SimDuration {
        let total: SimDuration = entry.alarms().iter().map(Alarm::task_duration).sum();
        total / entry.len() as u64
    }

    /// Both placement entry points share this loop; `audit`, when
    /// present, receives one [`CandidateAudit`] per entry weighed
    /// (the recorded preferability is the Table 1 rank derived from the
    /// hardware/time ranks — the duration tie-break is DURSIM's own
    /// refinement on top) and never influences the outcome.
    fn place_inner(
        &self,
        queue: &AlarmQueue,
        alarm: &Alarm,
        mut audit: Option<&mut Vec<CandidateAudit>>,
    ) -> Placement {
        let alarm_hw = alarm.known_hardware();
        let alarm_perceptible = alarm.is_perceptible();
        // Same delivery-ordered cutoff as SIMTY's search phase (see
        // `SimtyPolicy::place`): past this point no entry can reach even
        // Medium time similarity, so nothing is applicable.
        let cutoff = alarm.window_interval().end().max(alarm.grace_interval().end());
        let mut best: Option<((u8, u8, u8), usize)> = None;
        for (idx, entry) in queue.iter().enumerate() {
            if entry.delivery_time() > cutoff
                && matches!(
                    entry.discipline(),
                    DeliveryDiscipline::Window | DeliveryDiscipline::PerceptibilityAware
                )
            {
                if let Some(a) = audit.as_deref_mut() {
                    a.push(CandidateAudit {
                        index: idx,
                        delivery_time: entry.delivery_time(),
                        time: entry.time_similarity_to(alarm),
                        hw_rank: None,
                        preferability: None,
                        verdict: CandidateVerdict::PastCutoff,
                    });
                }
                break;
            }
            let time = entry.time_similarity_to(alarm);
            if !SimtyPolicy::is_applicable(alarm_perceptible, entry.is_perceptible(), time) {
                if let Some(a) = audit.as_deref_mut() {
                    a.push(CandidateAudit {
                        index: idx,
                        delivery_time: entry.delivery_time(),
                        time,
                        hw_rank: None,
                        preferability: None,
                        verdict: CandidateVerdict::NotApplicable,
                    });
                }
                continue;
            }
            debug_assert_ne!(time, TimeSimilarity::Low);
            let hw_rank = self
                .granularity
                .rank(alarm_hw, entry.hardware(), self.energy_hungry);
            let dur_rank =
                Self::duration_rank(alarm.task_duration(), Self::entry_mean_duration(entry));
            let key = (hw_rank, dur_rank, time.rank());
            if let Some(a) = audit.as_deref_mut() {
                // Provisionally outranked; the winner is corrected below.
                a.push(CandidateAudit {
                    index: idx,
                    delivery_time: entry.delivery_time(),
                    time,
                    hw_rank: Some(hw_rank),
                    preferability: Some(Preferability::from_ranks(hw_rank, time)),
                    verdict: CandidateVerdict::Outranked,
                });
            }
            if best.is_none_or(|(b, _)| key < b) {
                best = Some((key, idx));
            }
        }
        if let (Some((_, idx)), Some(a)) = (best, audit) {
            if let Some(winner) = a.iter_mut().find(|c| c.index == idx) {
                winner.verdict = CandidateVerdict::Won;
            }
        }
        match best {
            Some((_, idx)) => Placement::Existing(idx),
            None => Placement::NewEntry,
        }
    }
}

impl AlignmentPolicy for DurationSimilarityPolicy {
    fn name(&self) -> &str {
        "DURSIM"
    }

    fn place(&self, queue: &AlarmQueue, alarm: &Alarm) -> Placement {
        self.place_inner(queue, alarm, None)
    }

    fn place_audited(
        &self,
        queue: &AlarmQueue,
        alarm: &Alarm,
        audit: &mut Vec<CandidateAudit>,
    ) -> Placement {
        self.place_inner(queue, alarm, Some(audit))
    }

    fn discipline(&self) -> DeliveryDiscipline {
        DeliveryDiscipline::PerceptibilityAware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareComponent;
    use crate::time::SimTime;

    fn wifi_alarm(label: &str, nominal_s: u64, task_s: u64) -> Alarm {
        let mut a = Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.75)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(task_s))
            .build()
            .unwrap();
        a.mark_hardware_known();
        a
    }

    #[test]
    fn duration_rank_buckets() {
        let s = SimDuration::from_secs;
        assert_eq!(DurationSimilarityPolicy::duration_rank(s(10), s(10)), 0);
        assert_eq!(DurationSimilarityPolicy::duration_rank(s(8), s(10)), 0); // 20 %
        assert_eq!(DurationSimilarityPolicy::duration_rank(s(6), s(10)), 1); // 40 %
        assert_eq!(DurationSimilarityPolicy::duration_rank(s(2), s(10)), 2); // 80 %
        assert_eq!(DurationSimilarityPolicy::duration_rank(s(10), s(2)), 2); // symmetric
        assert_eq!(
            DurationSimilarityPolicy::duration_rank(SimDuration::ZERO, SimDuration::ZERO),
            0
        );
    }

    #[test]
    fn prefers_entries_with_similar_task_durations() {
        let mut q = AlarmQueue::new();
        // Two wifi entries, both window-overlapping the candidate, but with
        // very different task durations.
        q.insert_entry(QueueEntry::new(
            wifi_alarm("short", 100, 2),
            DeliveryDiscipline::PerceptibilityAware,
        ));
        q.insert_entry(QueueEntry::new(
            wifi_alarm("long", 110, 20),
            DeliveryDiscipline::PerceptibilityAware,
        ));
        let cand = wifi_alarm("cand", 120, 18);
        // Plain SIMTY ties on (hw high, time high) and picks the first entry.
        assert_eq!(SimtyPolicy::new().place(&q, &cand), Placement::Existing(0));
        // DURSIM breaks the tie toward the duration-similar entry.
        assert_eq!(
            DurationSimilarityPolicy::new().place(&q, &cand),
            Placement::Existing(1)
        );
    }

    #[test]
    fn hardware_similarity_still_dominates_duration() {
        let mut q = AlarmQueue::new();
        // Entry 0: same hardware, dissimilar duration.
        q.insert_entry(QueueEntry::new(
            wifi_alarm("wifi-long", 100, 20),
            DeliveryDiscipline::PerceptibilityAware,
        ));
        // Entry 1: disjoint hardware, identical duration.
        let mut accel = Alarm::builder("accel")
            .nominal(SimTime::from_secs(110))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.75)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Accelerometer.into())
            .task_duration(SimDuration::from_secs(2))
            .build()
            .unwrap();
        accel.mark_hardware_known();
        q.insert_entry(QueueEntry::new(accel, DeliveryDiscipline::PerceptibilityAware));
        let cand = wifi_alarm("cand", 120, 2);
        assert_eq!(
            DurationSimilarityPolicy::new().place(&q, &cand),
            Placement::Existing(0)
        );
    }
}
