//! The alarm manager: registration, batching, delivery, and reinsertion.
//!
//! Mirrors the role of Android's `AlarmManager` (§2.1, Figure 1): apps
//! register alarms; the manager keeps them batched in queue entries
//! according to its [`AlignmentPolicy`]; the real-time clock (in this
//! library: the simulator) pops due entries and delivers them; repeating
//! alarms are reinserted with their next nominal delivery time.
//!
//! Wakeup and non-wakeup alarms are managed in *separate* queues, and the
//! alignment policy is applied to each queue separately, exactly as in
//! the paper ("the above policy is applied to wakeup and non-wakeup
//! alarms separately").

use std::fmt;

use crate::alarm::{Alarm, AlarmId, AlarmKind, GRACE_STRETCH_UNIT};
use crate::audit::PlacementAudit;
use crate::entry::QueueEntry;
use crate::error::RegisterAlarmError;
use crate::policy::{AlignmentPolicy, Placement};
use crate::queue::AlarmQueue;
use crate::time::SimTime;

/// The central wakeup manager.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::manager::AlarmManager;
/// use simty_core::policy::SimtyPolicy;
/// use simty_core::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut manager = AlarmManager::new(Box::new(SimtyPolicy::new()));
/// let alarm = Alarm::builder("sync")
///     .nominal(SimTime::from_secs(60))
///     .repeating_dynamic(SimDuration::from_secs(60))
///     .grace_fraction(0.96)
///     .build()?;
/// manager.register(alarm)?;
/// assert_eq!(manager.next_wakeup_time(), Some(SimTime::from_secs(60)));
/// # Ok(())
/// # }
/// ```
pub struct AlarmManager {
    policy: Box<dyn AlignmentPolicy>,
    wakeup: AlarmQueue,
    non_wakeup: AlarmQueue,
    now: SimTime,
    /// When `Some`, every placement decision is recorded here until the
    /// next [`take_audits`](Self::take_audits) drains it.
    audit_sink: Option<Vec<PlacementAudit>>,
    /// The degradation governor's current grace multiplier (millis-style
    /// fixed point; [`GRACE_STRETCH_UNIT`] = no stretch). Stamped onto
    /// every alarm at registration/reinsertion so placement sees the
    /// widened grace intervals.
    grace_stretch: u32,
}

impl AlarmManager {
    /// Creates a manager governed by the given alignment policy.
    pub fn new(policy: Box<dyn AlignmentPolicy>) -> Self {
        AlarmManager {
            policy,
            wakeup: AlarmQueue::new(),
            non_wakeup: AlarmQueue::new(),
            now: SimTime::ZERO,
            audit_sink: None,
            grace_stretch: GRACE_STRETCH_UNIT,
        }
    }

    /// Rebuilds a manager from persisted state (checkpoint restore).
    ///
    /// The queues must have been captured from a live manager governed by
    /// an identical policy: restore bypasses [`register`](Self::register)
    /// because mid-flight state is not re-registrable — entries already
    /// reflect the policy's historical placement decisions, and alarms may
    /// carry nominal times at (or, transiently, before) `now`.
    pub fn restore(
        policy: Box<dyn AlignmentPolicy>,
        wakeup: AlarmQueue,
        non_wakeup: AlarmQueue,
        now: SimTime,
    ) -> Self {
        AlarmManager {
            policy,
            wakeup,
            non_wakeup,
            now,
            audit_sink: None,
            grace_stretch: GRACE_STRETCH_UNIT,
        }
    }

    /// Restores the degradation grace multiplier without re-placing any
    /// queued entries (checkpoint restore only: restored alarms already
    /// carry their historical stamps, and re-running placement here would
    /// diverge from the original run). Use
    /// [`set_grace_stretch`](Self::set_grace_stretch) everywhere else.
    pub fn restore_grace_stretch(&mut self, stretch_milli: u32) {
        self.grace_stretch = stretch_milli.max(GRACE_STRETCH_UNIT);
    }

    /// Turns placement auditing on or off.
    ///
    /// While enabled, every [`register`](Self::register) /
    /// [`complete_delivery`](Self::complete_delivery) /
    /// [`set_app_quarantined`](Self::set_app_quarantined) records one
    /// [`PlacementAudit`] per placement decision into an internal sink;
    /// drain it with [`take_audits`](Self::take_audits). Disabling also
    /// discards anything not yet drained. Auditing never changes
    /// placement outcomes.
    pub fn set_audit_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.audit_sink.is_none() {
                self.audit_sink = Some(Vec::new());
            }
        } else {
            self.audit_sink = None;
        }
    }

    /// Whether placement auditing is enabled.
    pub fn audit_enabled(&self) -> bool {
        self.audit_sink.is_some()
    }

    /// Drains every placement decision recorded since the last drain, in
    /// decision order. Empty when auditing is disabled.
    pub fn take_audits(&mut self) -> Vec<PlacementAudit> {
        match self.audit_sink.as_mut() {
            Some(sink) => std::mem::take(sink),
            None => Vec::new(),
        }
    }

    /// The governing policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The governing policy.
    pub fn policy(&self) -> &dyn AlignmentPolicy {
        self.policy.as_ref()
    }

    /// The manager's current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the manager's clock (monotonic; earlier times are ignored).
    pub fn advance_clock(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    /// The wakeup-alarm queue (inspection only).
    pub fn wakeup_queue(&self) -> &AlarmQueue {
        &self.wakeup
    }

    /// The non-wakeup-alarm queue (inspection only).
    pub fn non_wakeup_queue(&self) -> &AlarmQueue {
        &self.non_wakeup
    }

    /// Total number of registered alarms across both queues.
    pub fn alarm_count(&self) -> usize {
        self.wakeup.alarm_count() + self.non_wakeup.alarm_count()
    }

    /// Registers (or re-registers) an alarm.
    ///
    /// If the same alarm is still queued, its stale copy is removed first
    /// (§3.2.1). Under a policy with
    /// [`realigns_on_reinsert`](AlignmentPolicy::realigns_on_reinsert)
    /// (NATIVE), the stale copy's entry-mates are additionally re-placed
    /// together with the new alarm, in nominal-delivery-time order (§2.1).
    ///
    /// # Errors
    ///
    /// Returns [`RegisterAlarmError::NominalInPast`] if the alarm's
    /// nominal delivery time precedes the manager's clock, and a
    /// shape-specific variant if the alarm's intervals are degenerate
    /// (zero repeat, window > repeat, grace < window, grace ≥ repeat, or a
    /// non-finite grace fraction). The builder already rejects such specs,
    /// but [`Alarm::restore`] is a trusted constructor and must not let a
    /// corrupted snapshot poison the queues silently.
    pub fn register(&mut self, mut alarm: Alarm) -> Result<AlarmId, RegisterAlarmError> {
        self.validate(&alarm)?;
        alarm.set_grace_stretch(self.grace_stretch);
        let id = alarm.id();
        let kind = alarm.kind();
        let queued = self.queue(kind).position_of(id);
        match queued {
            Some(idx) if self.policy.realigns_on_reinsert() => {
                let mut entry = self.queue_mut(kind).take_entry(idx);
                entry.remove(id);
                let mut batch = entry.into_alarms();
                batch.push(alarm);
                batch.sort_by_key(Alarm::nominal);
                for a in batch {
                    self.place(a);
                }
            }
            Some(_) => {
                self.queue_mut(kind).remove_alarm(id);
                self.place(alarm);
            }
            None => self.place(alarm),
        }
        Ok(id)
    }

    /// Shape-validates a registration (see [`register`](Self::register)).
    fn validate(&self, alarm: &Alarm) -> Result<(), RegisterAlarmError> {
        let id = alarm.id();
        if let Some(interval) = alarm.repeat().interval() {
            if interval.is_zero() {
                return Err(RegisterAlarmError::ZeroRepeatInterval { id });
            }
            if alarm.window() > interval {
                return Err(RegisterAlarmError::WindowExceedsRepeat {
                    id,
                    window: alarm.window(),
                    repeat: interval,
                });
            }
            if alarm.grace_base() >= interval {
                return Err(RegisterAlarmError::GraceNotBelowRepeat {
                    id,
                    grace: alarm.grace_base(),
                    repeat: interval,
                });
            }
            if alarm.beta().is_some_and(|b| !b.is_finite()) {
                return Err(RegisterAlarmError::NonFiniteGraceFraction { id });
            }
        }
        if alarm.grace_base() < alarm.window() {
            return Err(RegisterAlarmError::GraceShorterThanWindow {
                id,
                window: alarm.window(),
                grace: alarm.grace_base(),
            });
        }
        if alarm.nominal() < self.now {
            return Err(RegisterAlarmError::NominalInPast { id });
        }
        Ok(())
    }

    /// The degradation governor's current grace multiplier.
    pub fn grace_stretch(&self) -> u32 {
        self.grace_stretch
    }

    /// Applies a degradation-tier grace multiplier (millis-style fixed
    /// point; [`GRACE_STRETCH_UNIT`] = 1.0×, values below it clamp to it)
    /// to every queued alarm and to all future registrations, returning
    /// how many queued alarms were restamped.
    ///
    /// On a change, both queues are drained and every alarm re-placed
    /// under the policy in nominal order, exactly like
    /// [`set_app_quarantined`](Self::set_app_quarantined): imperceptible
    /// alarms' wider (or re-narrowed) grace intervals change how entries
    /// batch, and stale batching would under- or over-defer them.
    pub fn set_grace_stretch(&mut self, stretch_milli: u32) -> usize {
        let stretch = stretch_milli.max(GRACE_STRETCH_UNIT);
        if stretch == self.grace_stretch {
            return 0;
        }
        self.grace_stretch = stretch;
        let mut changed = 0;
        for kind in [AlarmKind::Wakeup, AlarmKind::NonWakeup] {
            let mut batch: Vec<Alarm> = Vec::new();
            while !self.queue(kind).is_empty() {
                batch.extend(self.queue_mut(kind).take_entry(0).into_alarms());
            }
            for alarm in &mut batch {
                if alarm.grace_stretch() != stretch {
                    alarm.set_grace_stretch(stretch);
                    changed += 1;
                }
            }
            batch.sort_by_key(Alarm::nominal);
            for alarm in batch {
                self.place(alarm);
            }
        }
        changed
    }

    /// Cancels a registered alarm, returning it if it was queued.
    pub fn cancel(&mut self, id: AlarmId) -> Option<Alarm> {
        self.wakeup
            .remove_alarm(id)
            .or_else(|| self.non_wakeup.remove_alarm(id))
    }

    /// Cancels every queued alarm whose label is `label`, across both
    /// queues, returning them in nominal order.
    ///
    /// This is the crash-injection path (`simty_sim`'s fault plans): a
    /// crashed app loses all of its registrations at once and re-registers
    /// them only after its process restarts.
    pub fn cancel_app(&mut self, label: &str) -> Vec<Alarm> {
        let mut ids = Vec::new();
        for queue in [&self.wakeup, &self.non_wakeup] {
            for entry in queue.entries() {
                for alarm in entry.alarms() {
                    if alarm.label() == label {
                        ids.push(alarm.id());
                    }
                }
            }
        }
        let mut cancelled: Vec<Alarm> = ids.into_iter().filter_map(|id| self.cancel(id)).collect();
        cancelled.sort_by_key(Alarm::nominal);
        cancelled
    }

    /// Sets or clears the watchdog quarantine demotion on every queued
    /// alarm of `label` (see [`Alarm::is_quarantined`]), returning how
    /// many alarms changed state.
    ///
    /// Affected entries are re-placed under the policy so batching,
    /// perceptibility, and delivery times are recomputed: a quarantined
    /// alarm's entry may move later in the queue (SIMTY defers it into its
    /// grace interval), and a recovered alarm's entry snaps back to its
    /// window.
    pub fn set_app_quarantined(&mut self, label: &str, quarantined: bool) -> usize {
        let mut changed = 0;
        for kind in [AlarmKind::Wakeup, AlarmKind::NonWakeup] {
            loop {
                let idx = self.queue(kind).entries().iter().position(|e| {
                    e.alarms()
                        .iter()
                        .any(|a| a.label() == label && a.is_quarantined() != quarantined)
                });
                let Some(idx) = idx else { break };
                let mut batch = self.queue_mut(kind).take_entry(idx).into_alarms();
                for alarm in &mut batch {
                    if alarm.label() == label && alarm.is_quarantined() != quarantined {
                        alarm.set_quarantined(quarantined);
                        changed += 1;
                    }
                }
                batch.sort_by_key(Alarm::nominal);
                for alarm in batch {
                    self.place(alarm);
                }
            }
        }
        changed
    }

    /// Looks up a queued alarm by id (either queue).
    pub fn find_alarm(&self, id: AlarmId) -> Option<&Alarm> {
        for queue in [&self.wakeup, &self.non_wakeup] {
            if let Some(idx) = queue.position_of(id) {
                return queue.entries()[idx].alarms().iter().find(|a| a.id() == id);
            }
        }
        None
    }

    /// The next time the real-time clock must awaken the device, i.e. the
    /// front of the wakeup queue.
    pub fn next_wakeup_time(&self) -> Option<SimTime> {
        self.wakeup.next_delivery_time()
    }

    /// Pops every wakeup entry due at or before `now`, advancing the
    /// clock. The caller (the device/simulator) is responsible for
    /// actually delivering them and then calling
    /// [`complete_delivery`](Self::complete_delivery) per alarm.
    pub fn pop_due_wakeup(&mut self, now: SimTime) -> Vec<QueueEntry> {
        self.advance_clock(now);
        self.wakeup.pop_due(now)
    }

    /// Buffer-reusing variant of [`pop_due_wakeup`](Self::pop_due_wakeup):
    /// appends due entries into `out` instead of allocating a `Vec` per
    /// call (the simulator calls this every delivery round).
    pub fn pop_due_wakeup_into(&mut self, now: SimTime, out: &mut Vec<QueueEntry>) {
        self.advance_clock(now);
        self.wakeup.pop_due_into(now, out);
    }

    /// Pops every non-wakeup entry due at or before `now`. Only call while
    /// the device is awake — non-wakeup alarms must not awaken it (§2.1).
    pub fn pop_due_non_wakeup(&mut self, now: SimTime) -> Vec<QueueEntry> {
        self.advance_clock(now);
        self.non_wakeup.pop_due(now)
    }

    /// Buffer-reusing variant of
    /// [`pop_due_non_wakeup`](Self::pop_due_non_wakeup).
    pub fn pop_due_non_wakeup_into(&mut self, now: SimTime, out: &mut Vec<QueueEntry>) {
        self.advance_clock(now);
        self.non_wakeup.pop_due_into(now, out);
    }

    /// Finishes a delivery: records the alarm's hardware usage as known
    /// (footnote 4) and, for repeating alarms, reinserts the alarm with
    /// its next nominal delivery time. Returns the id if it was
    /// reinserted, `None` for one-shot alarms.
    ///
    /// # Panics
    ///
    /// Panics if the computed next nominal time is in the past, which the
    /// `grace < repeat` alarm invariant rules out.
    pub fn complete_delivery(&mut self, mut alarm: Alarm, delivered_at: SimTime) -> Option<AlarmId> {
        self.advance_clock(delivered_at);
        alarm.mark_hardware_known();
        if alarm.advance_after_delivery(delivered_at) {
            let id = self
                .register(alarm)
                .expect("next nominal delivery time must be in the future");
            Some(id)
        } else {
            None
        }
    }

    fn queue(&self, kind: AlarmKind) -> &AlarmQueue {
        match kind {
            AlarmKind::Wakeup => &self.wakeup,
            AlarmKind::NonWakeup => &self.non_wakeup,
        }
    }

    fn queue_mut(&mut self, kind: AlarmKind) -> &mut AlarmQueue {
        match kind {
            AlarmKind::Wakeup => &mut self.wakeup,
            AlarmKind::NonWakeup => &mut self.non_wakeup,
        }
    }

    fn place(&mut self, alarm: Alarm) {
        let kind = alarm.kind();
        // Borrow the queue by field so the sink can be borrowed mutably
        // alongside it (`self.queue(kind)` would freeze all of `self`).
        let queue = match kind {
            AlarmKind::Wakeup => &self.wakeup,
            AlarmKind::NonWakeup => &self.non_wakeup,
        };
        let placement = if let Some(sink) = self.audit_sink.as_mut() {
            // A typical decision weighs only a few candidates; reserve so
            // the audit costs one allocation, not a growth series.
            let mut candidates = Vec::with_capacity(4);
            let placement = self.policy.place_audited(queue, &alarm, &mut candidates);
            sink.push(PlacementAudit {
                at: self.now,
                alarm_id: alarm.id(),
                app: alarm.label_arc(),
                nominal: alarm.nominal(),
                perceptible: alarm.is_perceptible(),
                placement,
                candidates,
            });
            placement
        } else {
            self.policy.place(queue, &alarm)
        };
        let discipline = self.policy.discipline();
        match placement {
            Placement::Existing(idx) => self.queue_mut(kind).add_to_entry(idx, alarm),
            Placement::NewEntry => self.queue_mut(kind).insert_new_entry(alarm, discipline),
        }
    }
}

impl fmt::Debug for AlarmManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlarmManager")
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("wakeup_entries", &self.wakeup.len())
            .field("non_wakeup_entries", &self.non_wakeup.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareComponent;
    use crate::policy::{ExactPolicy, NativePolicy, SimtyPolicy};
    use crate::time::SimDuration;

    fn wifi_alarm(label: &str, nominal_s: u64, repeat_s: u64, alpha: f64) -> Alarm {
        Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(repeat_s))
            .window_fraction(alpha)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_next_wakeup() {
        let mut m = AlarmManager::new(Box::new(ExactPolicy::new()));
        m.register(wifi_alarm("a", 100, 600, 0.75)).unwrap();
        m.register(wifi_alarm("b", 50, 600, 0.75)).unwrap();
        assert_eq!(m.next_wakeup_time(), Some(SimTime::from_secs(50)));
        assert_eq!(m.alarm_count(), 2);
    }

    #[test]
    fn register_rejects_past_nominal() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        m.advance_clock(SimTime::from_secs(100));
        let err = m.register(wifi_alarm("late", 50, 600, 0.75)).unwrap_err();
        assert!(matches!(err, RegisterAlarmError::NominalInPast { .. }));
    }

    #[test]
    fn native_batches_by_window_overlap() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        m.register(wifi_alarm("a", 100, 600, 0.75)).unwrap(); // window [100,550]
        m.register(wifi_alarm("b", 200, 600, 0.75)).unwrap(); // window [200,650]
        assert_eq!(m.wakeup_queue().len(), 1);
        assert_eq!(m.wakeup_queue().alarm_count(), 2);
        // Batched entry fires at the intersection start.
        assert_eq!(m.next_wakeup_time(), Some(SimTime::from_secs(200)));
    }

    #[test]
    fn pop_due_and_complete_delivery_reinserts_repeating() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        m.register(wifi_alarm("a", 100, 600, 0.0)).unwrap();
        let due = m.pop_due_wakeup(SimTime::from_secs(100));
        assert_eq!(due.len(), 1);
        assert_eq!(m.alarm_count(), 0);
        for entry in due {
            for alarm in entry.into_alarms() {
                let reinserted = m.complete_delivery(alarm, SimTime::from_secs(100));
                assert!(reinserted.is_some());
            }
        }
        assert_eq!(m.alarm_count(), 1);
        assert_eq!(m.next_wakeup_time(), Some(SimTime::from_secs(700)));
    }

    #[test]
    fn hardware_becomes_known_after_delivery() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        m.register(wifi_alarm("a", 100, 600, 0.75)).unwrap();
        let due = m.pop_due_wakeup(SimTime::from_secs(100));
        let alarm = due.into_iter().next().unwrap().into_alarms().pop().unwrap();
        assert!(!alarm.is_hardware_known());
        m.complete_delivery(alarm, SimTime::from_secs(100));
        let requeued = &m.wakeup_queue().entries()[0].alarms()[0];
        assert!(requeued.is_hardware_known());
        assert!(!requeued.is_perceptible());
    }

    #[test]
    fn one_shot_is_not_reinserted() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        let one_shot = Alarm::builder("once")
            .nominal(SimTime::from_secs(10))
            .build()
            .unwrap();
        m.register(one_shot).unwrap();
        let alarm = m
            .pop_due_wakeup(SimTime::from_secs(10))
            .into_iter()
            .next()
            .unwrap()
            .into_alarms()
            .pop()
            .unwrap();
        assert_eq!(m.complete_delivery(alarm, SimTime::from_secs(10)), None);
        assert_eq!(m.alarm_count(), 0);
    }

    #[test]
    fn reinsert_removes_stale_copy() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let a = wifi_alarm("a", 100, 600, 0.75);
        let id = a.id();
        m.register(a.clone()).unwrap();
        // Re-register the same alarm with a later nominal time.
        let mut later = a;
        assert!(later.advance_after_delivery(SimTime::from_secs(100)));
        m.register(later).unwrap();
        assert_eq!(m.alarm_count(), 1);
        assert!(m.wakeup_queue().contains_alarm(id));
        assert_eq!(m.next_wakeup_time(), Some(SimTime::from_secs(700)));
    }

    #[test]
    fn native_realignment_rebatches_entry_mates() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        // Three alarms batched into one entry.
        let a = wifi_alarm("a", 100, 600, 0.75);
        let a_id = a.id();
        m.register(a.clone()).unwrap();
        m.register(wifi_alarm("b", 150, 600, 0.75)).unwrap();
        m.register(wifi_alarm("c", 200, 600, 0.75)).unwrap();
        assert_eq!(m.wakeup_queue().len(), 1);
        // Re-register `a` one period later: its mates are re-placed too.
        let mut later = a;
        later.advance_after_delivery(SimTime::from_secs(100));
        m.register(later).unwrap();
        assert_eq!(m.alarm_count(), 3);
        // b and c still share a window ([200,750] ∩ [150,700] overlap) and
        // rebatch together; `a` now lives at nominal 700 and joins them,
        // since its window [700,1150] overlaps theirs.
        assert!(m.wakeup_queue().contains_alarm(a_id));
    }

    #[test]
    fn non_wakeup_alarms_live_in_their_own_queue() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        let nw = Alarm::builder("nw")
            .nominal(SimTime::from_secs(100))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.75)
            .kind(AlarmKind::NonWakeup)
            .build()
            .unwrap();
        m.register(nw).unwrap();
        m.register(wifi_alarm("w", 100, 600, 0.75)).unwrap();
        assert_eq!(m.wakeup_queue().alarm_count(), 1);
        assert_eq!(m.non_wakeup_queue().alarm_count(), 1);
        // Non-wakeup alarms never drive the RTC.
        assert_eq!(m.next_wakeup_time(), Some(SimTime::from_secs(100)));
        let due = m.pop_due_non_wakeup(SimTime::from_secs(150));
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn cancel_removes_from_either_queue() {
        let mut m = AlarmManager::new(Box::new(ExactPolicy::new()));
        let a = wifi_alarm("a", 100, 600, 0.75);
        let id = a.id();
        m.register(a).unwrap();
        assert!(m.cancel(id).is_some());
        assert!(m.cancel(id).is_none());
        assert_eq!(m.alarm_count(), 0);
    }

    #[test]
    fn debug_shows_policy_and_counts() {
        let m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let s = format!("{m:?}");
        assert!(s.contains("SIMTY"));
    }

    #[test]
    fn cancel_app_removes_every_alarm_with_the_label() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        m.register(wifi_alarm("victim", 100, 600, 0.75)).unwrap();
        m.register(wifi_alarm("victim", 300, 900, 0.75)).unwrap();
        m.register(wifi_alarm("bystander", 200, 600, 0.75)).unwrap();
        let gone = m.cancel_app("victim");
        assert_eq!(gone.len(), 2);
        assert_eq!(gone[0].nominal(), SimTime::from_secs(100));
        assert_eq!(m.alarm_count(), 1);
        assert!(m.cancel_app("victim").is_empty());
    }

    #[test]
    fn audit_sink_records_one_decision_per_placement() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        assert!(!m.audit_enabled());
        m.set_audit_enabled(true);
        m.register(wifi_alarm("a", 100, 600, 0.75)).unwrap();
        m.register(wifi_alarm("b", 150, 600, 0.75)).unwrap();
        let audits = m.take_audits();
        assert_eq!(audits.len(), 2);
        assert_eq!(&*audits[0].app, "a");
        assert_eq!(audits[0].placement, Placement::NewEntry);
        assert!(audits[0].candidates.is_empty());
        assert_eq!(&*audits[1].app, "b");
        // The second decision weighed the first alarm's entry, whatever
        // the verdict came out to be.
        assert_eq!(audits[1].candidates.len(), 1);
        // Drained; sink refills on the next placement only.
        assert!(m.take_audits().is_empty());
        m.set_audit_enabled(false);
        m.register(wifi_alarm("c", 200, 600, 0.75)).unwrap();
        assert!(m.take_audits().is_empty());
    }

    #[test]
    fn audited_placement_matches_unaudited_placement() {
        // Auditing must be observation only: replay the same registration
        // sequence with and without the sink and compare queues.
        let mk = |label: &str, nominal: u64, repeat: u64| {
            Alarm::builder(label)
                .nominal(SimTime::from_secs(nominal))
                .repeating_static(SimDuration::from_secs(repeat))
                .window_fraction(0.75)
                .grace_fraction(0.9)
                .hardware(HardwareComponent::Wifi.into())
                .build()
                .unwrap()
        };
        for audited in [false, true] {
            let mut plain = AlarmManager::new(Box::new(SimtyPolicy::new()));
            let mut subject = AlarmManager::new(Box::new(SimtyPolicy::new()));
            subject.set_audit_enabled(audited);
            for (label, nominal, repeat) in
                [("a", 100, 600), ("b", 150, 600), ("c", 500, 900), ("d", 160, 600)]
            {
                plain.register(mk(label, nominal, repeat)).unwrap();
                subject.register(mk(label, nominal, repeat)).unwrap();
            }
            let shape = |m: &AlarmManager| {
                m.wakeup_queue()
                    .entries()
                    .iter()
                    .map(|e| {
                        (
                            e.delivery_time(),
                            e.alarms().iter().map(|a| a.label().to_owned()).collect::<Vec<_>>(),
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(shape(&plain), shape(&subject));
        }
    }

    /// A degenerate alarm, buildable only through the trusted
    /// [`Alarm::restore`] path (the builder rejects these shapes).
    fn restored_alarm(
        nominal_s: u64,
        window_s: u64,
        grace_s: u64,
        repeat_s: u64,
    ) -> Alarm {
        use crate::alarm::{Repeat, GRACE_STRETCH_UNIT};
        Alarm::restore(
            AlarmId::fresh(),
            "degenerate".into(),
            SimTime::from_secs(nominal_s),
            SimDuration::from_secs(window_s),
            SimDuration::from_secs(grace_s),
            if repeat_s == 0 {
                Repeat::Static(SimDuration::ZERO)
            } else {
                Repeat::Static(SimDuration::from_secs(repeat_s))
            },
            AlarmKind::Wakeup,
            HardwareComponent::Wifi.into(),
            false,
            SimDuration::from_secs(1),
            false,
            GRACE_STRETCH_UNIT,
        )
    }

    #[test]
    fn register_rejects_zero_repeat_interval() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let err = m.register(restored_alarm(100, 0, 0, 0)).unwrap_err();
        assert!(matches!(err, RegisterAlarmError::ZeroRepeatInterval { .. }));
        assert_eq!(m.alarm_count(), 0);
    }

    #[test]
    fn register_rejects_window_exceeding_repeat() {
        let mut m = AlarmManager::new(Box::new(NativePolicy::new()));
        // window 120 s > repeat 100 s (grace kept ≥ window so only the
        // window check can fire... except grace ≥ repeat fires first; use
        // grace = window = 120 to pin the precedence explicitly).
        let err = m.register(restored_alarm(100, 120, 99, 100)).unwrap_err();
        assert!(
            matches!(err, RegisterAlarmError::WindowExceedsRepeat { .. }),
            "got {err:?}"
        );
        assert_eq!(m.alarm_count(), 0);
    }

    #[test]
    fn register_rejects_grace_shorter_than_window() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let err = m.register(restored_alarm(100, 80, 40, 100)).unwrap_err();
        assert!(matches!(
            err,
            RegisterAlarmError::GraceShorterThanWindow { .. }
        ));
        assert_eq!(m.alarm_count(), 0);
    }

    #[test]
    fn register_rejects_grace_at_or_above_repeat() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let err = m.register(restored_alarm(100, 50, 100, 100)).unwrap_err();
        assert!(matches!(err, RegisterAlarmError::GraceNotBelowRepeat { .. }));
        assert_eq!(m.alarm_count(), 0);
    }

    #[test]
    fn register_still_accepts_valid_restored_alarms() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        assert!(m.register(restored_alarm(100, 50, 90, 100)).is_ok());
        assert_eq!(m.alarm_count(), 1);
    }

    #[test]
    fn grace_stretch_restamps_queued_alarms_and_new_registrations() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let a = wifi_alarm("a", 100, 600, 0.0);
        let a_id = a.id();
        m.register(a).unwrap();
        assert_eq!(m.grace_stretch(), GRACE_STRETCH_UNIT);
        // Same value: no work, no restamp.
        assert_eq!(m.set_grace_stretch(GRACE_STRETCH_UNIT), 0);
        assert_eq!(m.set_grace_stretch(1_500), 1);
        assert_eq!(m.find_alarm(a_id).unwrap().grace_stretch(), 1_500);
        // A new registration inherits the live stretch.
        let b = wifi_alarm("b", 200, 600, 0.0);
        let b_id = b.id();
        m.register(b).unwrap();
        assert_eq!(m.find_alarm(b_id).unwrap().grace_stretch(), 1_500);
        // Returning to the unit restamps both.
        assert_eq!(m.set_grace_stretch(GRACE_STRETCH_UNIT), 2);
        assert_eq!(
            m.find_alarm(a_id).unwrap().grace_stretch(),
            GRACE_STRETCH_UNIT
        );
    }

    #[test]
    fn grace_stretch_re_placement_widens_imperceptible_batching() {
        // Two Wi-Fi alarms whose grace intervals do not overlap at the
        // unit stretch but do at 2.5x: under SIMTY they must merge into
        // one entry once the stretch applies.
        let mk = |label: &str, nominal: u64| {
            let mut a = Alarm::builder(label)
                .nominal(SimTime::from_secs(nominal))
                .repeating_static(SimDuration::from_secs(600))
                .window(SimDuration::from_secs(10))
                .grace(SimDuration::from_secs(60))
                .hardware(HardwareComponent::Wifi.into())
                .build()
                .unwrap();
            a.mark_hardware_known(); // imperceptible from the start
            a
        };
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        m.register(mk("a", 100)).unwrap();
        m.register(mk("b", 200)).unwrap();
        assert_eq!(m.wakeup_queue().len(), 2, "disjoint grace at 1.0x");
        m.set_grace_stretch(2_500); // grace 60 s -> 150 s: [100,250] ∩ [200,350]
        assert_eq!(m.wakeup_queue().len(), 1, "merged at 2.5x");
        m.set_grace_stretch(GRACE_STRETCH_UNIT);
        assert_eq!(m.wakeup_queue().len(), 2, "re-narrowed at 1.0x");
    }

    #[test]
    fn quarantine_demotes_and_recovery_restores_perceptibility() {
        let mut m = AlarmManager::new(Box::new(SimtyPolicy::new()));
        let a = wifi_alarm("leaky", 100, 600, 0.75);
        let id = a.id();
        m.register(a).unwrap();
        // Deliver once so hardware is known and Wi-Fi reads imperceptible;
        // quarantine must flip the *flag* regardless.
        assert_eq!(m.set_app_quarantined("leaky", true), 1);
        assert_eq!(m.set_app_quarantined("leaky", true), 0);
        let queued = m.find_alarm(id).unwrap();
        assert!(queued.is_quarantined());
        assert!(!queued.is_perceptible());
        assert_eq!(m.set_app_quarantined("leaky", false), 1);
        let queued = m.find_alarm(id).unwrap();
        assert!(!queued.is_quarantined());
        // Hardware still unknown, so the alarm is perceptible again.
        assert!(queued.is_perceptible());
    }
}
