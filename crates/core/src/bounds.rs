//! Analytic delivery-interval bounds (§3.2.2).
//!
//! For a repeating alarm whose flexibility interval (window under NATIVE,
//! grace under SIMTY for imperceptible alarms) is `flex` times its
//! repeating interval, the paper proves:
//!
//! * the **maximum** gap between adjacent deliveries is `(1 + flex)` times
//!   the repeating interval, for both static and dynamic alarms;
//! * the **minimum** gap is `(1 − flex)` times the repeating interval for
//!   static alarms and exactly one repeating interval for dynamic alarms.
//!
//! Together these guarantee that every imperceptible alarm "will be
//! delivered once and only once in every specified repeating interval".
//! The property-based integration tests check measured delivery traces
//! against these bounds.

use std::collections::BTreeMap;

use crate::alarm::{Alarm, Repeat};
use crate::hardware::HardwareComponent;
use crate::time::SimDuration;

/// The guaranteed envelope on gaps between adjacent deliveries of a
/// repeating alarm.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Repeat;
/// use simty_core::bounds::DeliveryBounds;
/// use simty_core::time::SimDuration;
///
/// // A static 100 s alarm under SIMTY with β = 0.96.
/// let b = DeliveryBounds::new(Repeat::Static(SimDuration::from_secs(100)), 0.96).unwrap();
/// assert_eq!(b.max_gap, SimDuration::from_secs(196));
/// assert_eq!(b.min_gap, SimDuration::from_secs(4));
///
/// // Dynamic alarms can never fire early: min gap is the full interval.
/// let d = DeliveryBounds::new(Repeat::Dynamic(SimDuration::from_secs(100)), 0.96).unwrap();
/// assert_eq!(d.min_gap, SimDuration::from_secs(100));
/// assert_eq!(d.max_gap, SimDuration::from_secs(196));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryBounds {
    /// Largest guaranteed gap between adjacent deliveries.
    pub max_gap: SimDuration,
    /// Smallest guaranteed gap between adjacent deliveries.
    pub min_gap: SimDuration,
}

impl DeliveryBounds {
    /// Computes the bounds for a repetition mode and a flexibility
    /// fraction (α under NATIVE, β under SIMTY). Returns `None` for
    /// one-shot alarms, which have no adjacent deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `flex` is outside `[0, 1)` — the §3.1.2 constraint
    /// `0 ≤ α ≤ β < 1`.
    pub fn new(repeat: Repeat, flex: f64) -> Option<DeliveryBounds> {
        assert!(
            (0.0..1.0).contains(&flex),
            "flexibility fraction {flex} outside [0, 1)"
        );
        let interval = repeat.interval()?;
        let max_gap = interval.mul_f64(1.0 + flex);
        let min_gap = match repeat {
            Repeat::OneShot => unreachable!("interval() returned Some"),
            Repeat::Static(_) => interval.mul_f64(1.0 - flex),
            Repeat::Dynamic(_) => interval,
        };
        Some(DeliveryBounds { max_gap, min_gap })
    }

    /// Bounds for an alarm under SIMTY, using its grace fraction β.
    /// Returns `None` for one-shot alarms.
    pub fn for_alarm_under_simty(alarm: &Alarm) -> Option<DeliveryBounds> {
        DeliveryBounds::new(alarm.repeat(), alarm.beta()?)
    }

    /// Bounds for an alarm under NATIVE, using its window fraction α.
    /// Returns `None` for one-shot alarms.
    pub fn for_alarm_under_native(alarm: &Alarm) -> Option<DeliveryBounds> {
        DeliveryBounds::new(alarm.repeat(), alarm.alpha()?)
    }

    /// Whether a measured gap lies within the envelope, with a slack term
    /// for mechanisms outside the policy's control (e.g. the device's
    /// wake-from-sleep latency delaying deliveries).
    pub fn admits(&self, gap: SimDuration, slack: SimDuration) -> bool {
        gap + slack >= self.min_gap && gap <= self.max_gap + slack
    }
}

/// The least number of times each hardware component must be activated
/// over `duration`, no matter how well a policy aligns — the paper's §4.2
/// argument for why SIMTY's Table 4 numbers are near-optimal.
///
/// Adjacent deliveries of the *same* repeating alarm can never share a
/// wakeup (its grace interval is shorter than its repeating interval), so
/// a component's activations are bounded below by the delivery count of
/// its most demanding alarm: `duration / interval` for a static alarm,
/// `duration / ((1 + β) · interval)` for a dynamic one (whose deliveries
/// can each be postponed by up to a grace interval).
///
/// Components no alarm wakelocks are absent from the map.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::bounds::least_component_wakeups;
/// use simty_core::hardware::HardwareComponent;
/// use simty_core::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), simty_core::error::BuildAlarmError> {
/// let tracker = Alarm::builder("tracker")
///     .nominal(SimTime::from_secs(180))
///     .repeating_static(SimDuration::from_secs(180))
///     .window_fraction(0.75)
///     .grace_fraction(0.96)
///     .hardware(HardwareComponent::Wps.into())
///     .build()?;
/// let bounds = least_component_wakeups(&[tracker], SimDuration::from_hours(3));
/// // The paper's example: 10 800 s / 180 s = 60 WPS wakeups at minimum.
/// assert_eq!(bounds[&HardwareComponent::Wps], 60);
/// # Ok(())
/// # }
/// ```
pub fn least_component_wakeups(
    alarms: &[Alarm],
    duration: SimDuration,
) -> BTreeMap<HardwareComponent, u64> {
    let mut bounds: BTreeMap<HardwareComponent, u64> = BTreeMap::new();
    for alarm in alarms {
        let Some(interval) = alarm.repeat().interval() else {
            continue; // one-shot: contributes at most one, ignore
        };
        let min_deliveries = match alarm.repeat() {
            Repeat::OneShot => unreachable!("interval() returned Some"),
            Repeat::Static(_) => duration.as_millis() / interval.as_millis(),
            Repeat::Dynamic(_) => {
                let beta = alarm.beta().unwrap_or(0.0);
                let stretched = interval.mul_f64(1.0 + beta);
                duration.as_millis() / stretched.as_millis().max(1)
            }
        };
        for c in alarm.hardware() {
            let entry = bounds.entry(c).or_insert(0);
            *entry = (*entry).max(min_deliveries);
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareComponent;
    use crate::time::SimTime;

    #[test]
    fn one_shot_has_no_bounds() {
        assert_eq!(DeliveryBounds::new(Repeat::OneShot, 0.5), None);
    }

    #[test]
    fn native_bounds_use_alpha() {
        // §3.2.2: under NATIVE the max interval is (1 + α)·ReIn and the
        // min is (1 − α)·ReIn (static) or 1·ReIn (dynamic).
        let a = Alarm::builder("s")
            .nominal(SimTime::ZERO)
            .repeating_static(SimDuration::from_secs(200))
            .window_fraction(0.75)
            .grace_fraction(0.96)
            .build()
            .unwrap();
        let b = DeliveryBounds::for_alarm_under_native(&a).unwrap();
        assert_eq!(b.max_gap, SimDuration::from_secs(350));
        assert_eq!(b.min_gap, SimDuration::from_secs(50));
        let s = DeliveryBounds::for_alarm_under_simty(&a).unwrap();
        assert_eq!(s.max_gap, SimDuration::from_secs(392));
        assert_eq!(s.min_gap, SimDuration::from_secs(8));
    }

    #[test]
    fn dynamic_min_gap_is_the_full_interval() {
        let d = DeliveryBounds::new(Repeat::Dynamic(SimDuration::from_secs(60)), 0.75).unwrap();
        assert_eq!(d.min_gap, SimDuration::from_secs(60));
        assert_eq!(d.max_gap, SimDuration::from_secs(105));
    }

    #[test]
    fn admits_with_slack() {
        let b = DeliveryBounds::new(Repeat::Static(SimDuration::from_secs(100)), 0.5).unwrap();
        // Envelope [50, 150]; slack 2 s admits [48, 152].
        let s = SimDuration::from_secs;
        assert!(b.admits(s(50), SimDuration::ZERO));
        assert!(b.admits(s(150), SimDuration::ZERO));
        assert!(!b.admits(s(151), SimDuration::ZERO));
        assert!(b.admits(s(151), s(2)));
        assert!(!b.admits(s(47), s(2)));
        assert!(b.admits(s(48), s(2)));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_flex_of_one() {
        let _ = DeliveryBounds::new(Repeat::Static(SimDuration::from_secs(1)), 1.0);
    }

    fn alarm_for_bounds(
        hw: HardwareComponent,
        interval_s: u64,
        dynamic: bool,
        beta: f64,
    ) -> Alarm {
        let b = Alarm::builder("lb")
            .nominal(SimTime::from_secs(interval_s))
            .window_fraction(0.0)
            .grace_fraction(beta)
            .hardware(hw.into());
        if dynamic {
            b.repeating_dynamic(SimDuration::from_secs(interval_s))
        } else {
            b.repeating_static(SimDuration::from_secs(interval_s))
        }
        .build()
        .unwrap()
    }

    #[test]
    fn least_wakeups_uses_the_most_demanding_static_alarm() {
        // §4.2: accelerometer bound = 10 800 / 60 = 180 even though a
        // slower accelerometer alarm coexists.
        let alarms = vec![
            alarm_for_bounds(HardwareComponent::Accelerometer, 60, false, 0.96),
            alarm_for_bounds(HardwareComponent::Accelerometer, 90, false, 0.96),
            alarm_for_bounds(HardwareComponent::Wps, 180, false, 0.96),
        ];
        let bounds = least_component_wakeups(&alarms, SimDuration::from_hours(3));
        assert_eq!(bounds[&HardwareComponent::Accelerometer], 180);
        assert_eq!(bounds[&HardwareComponent::Wps], 60);
        assert!(!bounds.contains_key(&HardwareComponent::Wifi));
    }

    #[test]
    fn dynamic_alarms_give_a_weaker_bound() {
        // A 60 s dynamic alarm with β = 0.96 can be postponed to an
        // effective ~117.6 s period: bound 10 800 / 117.6 = 91.
        let alarms = vec![alarm_for_bounds(HardwareComponent::Wifi, 60, true, 0.96)];
        let bounds = least_component_wakeups(&alarms, SimDuration::from_hours(3));
        assert_eq!(bounds[&HardwareComponent::Wifi], 91);
    }

    #[test]
    fn one_shots_do_not_contribute() {
        let one_shot = Alarm::builder("o")
            .nominal(SimTime::from_secs(5))
            .hardware(HardwareComponent::Gps.into())
            .build()
            .unwrap();
        let bounds = least_component_wakeups(&[one_shot], SimDuration::from_hours(1));
        assert!(bounds.is_empty());
    }
}
