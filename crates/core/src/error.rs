//! Error types for alarm construction and registration.

use std::error::Error;
use std::fmt;

use crate::alarm::AlarmId;
use crate::time::SimDuration;

/// Error returned by [`AlarmBuilder::build`](crate::alarm::AlarmBuilder::build)
/// when the requested attributes violate the paper's interval constraints
/// (§3.1.2: `window ≤ grace`, and `grace < repeating interval` for
/// repeating alarms).
#[derive(Debug, Clone, PartialEq)]
pub enum BuildAlarmError {
    /// The grace interval is shorter than the window interval, which would
    /// let SIMTY deliver an alarm *earlier* than NATIVE allows.
    GraceShorterThanWindow {
        /// The requested window interval length.
        window: SimDuration,
        /// The requested grace interval length.
        grace: SimDuration,
    },
    /// The grace interval is not strictly smaller than the repeating
    /// interval, which would break once-per-period delivery (§3.2.2).
    GraceNotBelowRepeat {
        /// The requested grace interval length.
        grace: SimDuration,
        /// The repeating interval.
        repeat: SimDuration,
    },
    /// A zero repeating interval was requested; use a one-shot alarm
    /// instead (Android models one-shot alarms as repeat = 0, this library
    /// makes the distinction explicit).
    ZeroRepeatInterval,
    /// A window or grace *fraction* (α or β) was given for a one-shot
    /// alarm, which has no repeating interval to scale by.
    FractionWithoutRepeat {
        /// The offending fraction.
        fraction: f64,
    },
    /// A window or grace fraction was outside `[0, 1)`.
    FractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
}

impl fmt::Display for BuildAlarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildAlarmError::GraceShorterThanWindow { window, grace } => write!(
                f,
                "grace interval {grace} is shorter than window interval {window}"
            ),
            BuildAlarmError::GraceNotBelowRepeat { grace, repeat } => write!(
                f,
                "grace interval {grace} is not strictly below the repeating interval {repeat}"
            ),
            BuildAlarmError::ZeroRepeatInterval => {
                f.write_str("repeating interval must be positive; use a one-shot alarm instead")
            }
            BuildAlarmError::FractionWithoutRepeat { fraction } => write!(
                f,
                "interval fraction {fraction} requires a repeating alarm"
            ),
            BuildAlarmError::FractionOutOfRange { fraction } => write!(
                f,
                "interval fraction {fraction} is outside [0, 1)"
            ),
        }
    }
}

impl Error for BuildAlarmError {}

/// Error returned by
/// [`AlarmManager::register`](crate::manager::AlarmManager::register) and by
/// the simulator's registration front door.
///
/// The builder already enforces the paper's interval constraints, but the
/// manager re-validates at registration: degenerate alarms can reach it via
/// the trusted [`Alarm::restore`](crate::alarm::Alarm::restore) constructor
/// (a corrupted or adversarial snapshot), and silently enqueueing them would
/// break the once-per-period delivery guarantee the policies depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterAlarmError {
    /// The alarm's nominal delivery time lies before the manager's current
    /// clock — alarms cannot be scheduled in the past.
    NominalInPast {
        /// The offending alarm.
        id: AlarmId,
    },
    /// A repeating alarm carries a zero repeating interval, which would
    /// make the reinsertion loop in `complete_delivery` spin forever.
    ZeroRepeatInterval {
        /// The offending alarm.
        id: AlarmId,
    },
    /// The window interval is longer than the repeating interval, so
    /// consecutive windows would overlap and once-per-period delivery
    /// could double up.
    WindowExceedsRepeat {
        /// The offending alarm.
        id: AlarmId,
        /// The window interval length.
        window: SimDuration,
        /// The repeating interval.
        repeat: SimDuration,
    },
    /// The grace interval is shorter than the window interval, which would
    /// let SIMTY deliver *earlier* than NATIVE allows (§3.1.2).
    GraceShorterThanWindow {
        /// The offending alarm.
        id: AlarmId,
        /// The window interval length.
        window: SimDuration,
        /// The grace interval length.
        grace: SimDuration,
    },
    /// A repeating alarm's grace interval is not strictly below its
    /// repeating interval, which would break once-per-period delivery
    /// (§3.2.2).
    GraceNotBelowRepeat {
        /// The offending alarm.
        id: AlarmId,
        /// The grace interval length.
        grace: SimDuration,
        /// The repeating interval.
        repeat: SimDuration,
    },
    /// The alarm's grace fraction β is not a finite number (defensive: a
    /// degenerate repeat/grace pairing slipped past every other check).
    NonFiniteGraceFraction {
        /// The offending alarm.
        id: AlarmId,
    },
    /// The owning app is out of registration tokens and the registration
    /// could not be deferred (see `simty_core::admission`).
    QuotaExceeded {
        /// The rejected alarm.
        id: AlarmId,
        /// How long until the app's token bucket earns its next token.
        retry_after: SimDuration,
    },
    /// The degradation governor shed this deferrable registration to
    /// preserve standby life under critical battery.
    RegistrationShed {
        /// The shed alarm.
        id: AlarmId,
    },
}

impl fmt::Display for RegisterAlarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterAlarmError::NominalInPast { id } => {
                write!(f, "alarm {id} has a nominal delivery time in the past")
            }
            RegisterAlarmError::ZeroRepeatInterval { id } => {
                write!(f, "alarm {id} repeats with a zero interval")
            }
            RegisterAlarmError::WindowExceedsRepeat { id, window, repeat } => write!(
                f,
                "alarm {id} window {window} exceeds its repeating interval {repeat}"
            ),
            RegisterAlarmError::GraceShorterThanWindow { id, window, grace } => write!(
                f,
                "alarm {id} grace {grace} is shorter than its window {window}"
            ),
            RegisterAlarmError::GraceNotBelowRepeat { id, grace, repeat } => write!(
                f,
                "alarm {id} grace {grace} is not strictly below its repeating interval {repeat}"
            ),
            RegisterAlarmError::NonFiniteGraceFraction { id } => {
                write!(f, "alarm {id} has a non-finite grace fraction")
            }
            RegisterAlarmError::QuotaExceeded { id, retry_after } => write!(
                f,
                "alarm {id} rejected: registration quota exhausted (retry after {retry_after})"
            ),
            RegisterAlarmError::RegistrationShed { id } => write!(
                f,
                "alarm {id} shed by the degradation governor under critical battery"
            ),
        }
    }
}

impl Error for RegisterAlarmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BuildAlarmError::GraceShorterThanWindow {
            window: SimDuration::from_secs(10),
            grace: SimDuration::from_secs(5),
        };
        assert_eq!(
            e.to_string(),
            "grace interval 5s is shorter than window interval 10s"
        );
        let e = BuildAlarmError::ZeroRepeatInterval;
        assert!(e.to_string().starts_with("repeating interval must be positive"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildAlarmError>();
        assert_send_sync::<RegisterAlarmError>();
    }
}
