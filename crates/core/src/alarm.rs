//! The alarm model: delivery times, window/grace intervals, repetition,
//! perceptibility.
//!
//! An [`Alarm`] carries the attributes Android's `AlarmManager` tracks —
//! nominal delivery time, window interval, repeating interval, wakeup vs
//! non-wakeup — plus the paper's additions: the *grace interval* (§3.1.2)
//! and the wakelocked hardware set, which is *unknown until the alarm's
//! first delivery* (footnote 4) and makes the alarm provisionally
//! perceptible (footnote 5).
//!
//! # Examples
//!
//! ```
//! use simty_core::alarm::Alarm;
//! use simty_core::hardware::HardwareComponent;
//! use simty_core::time::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), simty_core::error::BuildAlarmError> {
//! let line = Alarm::builder("Line")
//!     .nominal(SimTime::from_secs(200))
//!     .repeating_dynamic(SimDuration::from_secs(200))
//!     .window_fraction(0.75)
//!     .grace_fraction(0.96)
//!     .hardware(HardwareComponent::Wifi.into())
//!     .task_duration(SimDuration::from_secs(3))
//!     .build()?;
//! assert!(line.is_perceptible()); // hardware unknown until first delivery
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::BuildAlarmError;
use crate::hardware::HardwareSet;
use crate::time::{Interval, SimDuration, SimTime};

/// Unique identifier of a registered alarm.
///
/// Identifiers are process-unique and stable across a repeating alarm's
/// re-insertions, which is how the manager detects that "the same alarm
/// still exists in the queue" (§2.1, §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlarmId(u64);

/// The next identifier [`AlarmId::fresh`] will hand out.
static NEXT_ALARM_ID: AtomicU64 = AtomicU64::new(1);

impl AlarmId {
    /// Allocates a fresh, process-unique identifier.
    pub fn fresh() -> AlarmId {
        AlarmId(NEXT_ALARM_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Rebuilds an identifier from a persisted raw value (checkpoint
    /// restore). Pair with [`reserve_through`](Self::reserve_through) so
    /// later [`fresh`](Self::fresh) calls cannot collide with restored
    /// identifiers.
    pub fn from_raw(raw: u64) -> AlarmId {
        AlarmId(raw)
    }

    /// Advances the process-wide id counter past `max_seen`, guaranteeing
    /// that every subsequently [`fresh`](Self::fresh) identifier is
    /// strictly greater than `max_seen`.
    pub fn reserve_through(max_seen: u64) {
        NEXT_ALARM_ID.fetch_max(max_seen + 1, Ordering::Relaxed);
    }

    /// The raw numeric value (for traces and reports).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AlarmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// How an alarm repeats (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Repeat {
    /// Delivered once and never reinserted (Android: repeating interval 0).
    OneShot,
    /// *Static* repeating: nominal delivery times sit on a fixed grid
    /// (`nominal + k · interval`), regardless of actual delivery times.
    Static(SimDuration),
    /// *Dynamic* repeating: the next nominal delivery time is reappointed
    /// relative to the *actual* delivery time every time it is delivered.
    Dynamic(SimDuration),
}

impl Repeat {
    /// The repeating interval, or `None` for one-shot alarms.
    pub fn interval(self) -> Option<SimDuration> {
        match self {
            Repeat::OneShot => None,
            Repeat::Static(i) | Repeat::Dynamic(i) => Some(i),
        }
    }

    /// Whether this is a one-shot alarm.
    pub fn is_one_shot(self) -> bool {
        matches!(self, Repeat::OneShot)
    }
}

impl fmt::Display for Repeat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Repeat::OneShot => f.write_str("one-shot"),
            Repeat::Static(i) => write!(f, "static every {i}"),
            Repeat::Dynamic(i) => write!(f, "dynamic every {i}"),
        }
    }
}

/// Whether the alarm may awaken a sleeping device (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AlarmKind {
    /// Awakens the device at its delivery time.
    #[default]
    Wakeup,
    /// Delivered only while the device happens to be awake; otherwise
    /// postponed to the next wakeup (by a wakeup alarm or external event).
    NonWakeup,
}

impl fmt::Display for AlarmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlarmKind::Wakeup => "wakeup",
            AlarmKind::NonWakeup => "non-wakeup",
        })
    }
}

/// A registered alarm with the paper's full attribute set.
///
/// Invariants enforced at construction:
/// `window ≤ grace`, and `grace < repeating interval` for repeating alarms
/// (§3.1.2), so every imperceptible alarm is still delivered once per
/// repeating interval (§3.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    id: AlarmId,
    label: Arc<str>,
    nominal: SimTime,
    window: SimDuration,
    grace: SimDuration,
    repeat: Repeat,
    kind: AlarmKind,
    hardware: HardwareSet,
    hardware_known: bool,
    task_duration: SimDuration,
    quarantined: bool,
    grace_stretch: u32,
}

/// The neutral [`Alarm::grace_stretch`] value (millis-style fixed point:
/// 1000 = 1.0×, i.e. the grace interval is exactly as registered).
pub const GRACE_STRETCH_UNIT: u32 = 1_000;

impl Alarm {
    /// Starts building an alarm with the given human-readable label.
    ///
    /// See the [module documentation](self) for a complete example.
    pub fn builder(label: impl Into<Arc<str>>) -> AlarmBuilder {
        AlarmBuilder::new(label)
    }

    /// Rebuilds an alarm from persisted state (checkpoint restore).
    ///
    /// This is a trusted constructor: it bypasses the builder's interval
    /// validation because the persisted alarm was already validated when
    /// it was first built, and a mid-flight alarm may legitimately carry
    /// state a fresh registration could not (e.g. a known hardware set or
    /// an active quarantine). The caller must pass values captured from a
    /// live alarm and must call [`AlarmId::reserve_through`] with the
    /// largest restored raw id so fresh ids cannot collide.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        id: AlarmId,
        label: Arc<str>,
        nominal: SimTime,
        window: SimDuration,
        grace: SimDuration,
        repeat: Repeat,
        kind: AlarmKind,
        hardware: HardwareSet,
        hardware_known: bool,
        task_duration: SimDuration,
        quarantined: bool,
        grace_stretch: u32,
    ) -> Alarm {
        Alarm {
            id,
            label,
            nominal,
            window,
            grace,
            repeat,
            kind,
            hardware,
            hardware_known,
            task_duration,
            quarantined,
            grace_stretch,
        }
    }

    /// The alarm's stable identifier.
    pub fn id(&self) -> AlarmId {
        self.id
    }

    /// The human-readable label (typically the app name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The label as a shared handle — a reference-count bump instead of
    /// a string copy, for the per-delivery paths that store it.
    pub fn label_arc(&self) -> Arc<str> {
        Arc::clone(&self.label)
    }

    /// The current nominal delivery time — the start of both the window
    /// and the grace interval.
    pub fn nominal(&self) -> SimTime {
        self.nominal
    }

    /// The window interval length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The *effective* grace interval length: the registered length,
    /// widened by any [`grace_stretch`](Self::grace_stretch) the
    /// degradation governor applied — but only for imperceptible alarms,
    /// and never to (or past) the repeating interval, so once-per-period
    /// delivery survives every degradation tier.
    ///
    /// Perceptible alarms always keep their registered grace: degradation
    /// must never weaken the window guarantee the user can perceive.
    pub fn grace(&self) -> SimDuration {
        if self.grace_stretch == GRACE_STRETCH_UNIT || self.is_perceptible() {
            return self.grace;
        }
        let stretched = SimDuration::from_millis(
            (self.grace.as_millis() as u128 * self.grace_stretch as u128 / 1_000) as u64,
        );
        let cap = match self.repeat.interval() {
            Some(i) => i.saturating_sub(SimDuration::from_millis(1)),
            None => stretched,
        };
        stretched.min(cap).max(self.grace)
    }

    /// The grace interval length as registered, ignoring any degradation
    /// stretch (this is what checkpoints persist and β reports).
    pub fn grace_base(&self) -> SimDuration {
        self.grace
    }

    /// The degradation-governor grace multiplier in millis-style fixed
    /// point ([`GRACE_STRETCH_UNIT`] = 1.0×, no stretch).
    pub fn grace_stretch(&self) -> u32 {
        self.grace_stretch
    }

    /// Applies a degradation-governor grace multiplier (see
    /// [`grace`](Self::grace) for how it takes effect).
    pub fn set_grace_stretch(&mut self, stretch_milli: u32) {
        self.grace_stretch = stretch_milli.max(GRACE_STRETCH_UNIT);
    }

    /// The window interval `[nominal, nominal + window]`, inside which
    /// NATIVE (and SIMTY, for perceptible alarms) must deliver.
    pub fn window_interval(&self) -> Interval {
        Interval::starting_at(self.nominal, self.window)
    }

    /// The grace interval `[nominal, nominal + grace]`, inside which SIMTY
    /// must deliver imperceptible alarms. Uses the *effective* grace
    /// length (see [`grace`](Self::grace)), so degradation-tier stretches
    /// widen the placement flexibility the policies see.
    pub fn grace_interval(&self) -> Interval {
        Interval::starting_at(self.nominal, self.grace())
    }

    /// The repetition mode.
    pub fn repeat(&self) -> Repeat {
        self.repeat
    }

    /// Wakeup or non-wakeup.
    pub fn kind(&self) -> AlarmKind {
        self.kind
    }

    /// The hardware this alarm actually wakelocks when its task runs.
    ///
    /// This is ground truth used by the device at delivery; the *policy*
    /// must use [`known_hardware`](Self::known_hardware), which is empty
    /// until the first delivery (footnote 4).
    pub fn hardware(&self) -> HardwareSet {
        self.hardware
    }

    /// The hardware set as the alarm manager knows it: empty until the
    /// alarm has been delivered once, then equal to
    /// [`hardware`](Self::hardware).
    pub fn known_hardware(&self) -> HardwareSet {
        if self.hardware_known {
            self.hardware
        } else {
            HardwareSet::empty()
        }
    }

    /// Whether the manager has observed this alarm's hardware usage.
    pub fn is_hardware_known(&self) -> bool {
        self.hardware_known
    }

    /// Records that the alarm has been delivered once, making its hardware
    /// set visible to the policy from now on.
    pub fn mark_hardware_known(&mut self) {
        self.hardware_known = true;
    }

    /// Whether the alarm must be treated as perceptible (§3.1.2 and
    /// footnote 5): one-shot alarms and alarms whose hardware set is not
    /// yet known are deemed perceptible; otherwise perceptibility follows
    /// the hardware set.
    ///
    /// A [quarantined](Self::is_quarantined) alarm is always treated as
    /// imperceptible: the watchdog has judged the owning app to be
    /// misbehaving (a no-sleep bug, §1), so its deliveries lose their
    /// window guarantee and may be deferred anywhere inside the grace
    /// interval, exactly like other postponable work.
    pub fn is_perceptible(&self) -> bool {
        if self.quarantined {
            false
        } else if self.repeat.is_one_shot() || !self.hardware_known {
            true
        } else {
            self.hardware.is_perceptible()
        }
    }

    /// Whether the alarm is currently demoted by the online watchdog.
    ///
    /// See [`is_perceptible`](Self::is_perceptible) for the effect; the
    /// simulator's quarantine/probation state machine flips this flag via
    /// the alarm manager.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Sets or clears the watchdog quarantine demotion.
    pub fn set_quarantined(&mut self, quarantined: bool) {
        self.quarantined = quarantined;
    }

    /// How long the alarm's task holds its wakelocks after delivery.
    pub fn task_duration(&self) -> SimDuration {
        self.task_duration
    }

    /// Moves the nominal delivery time (the app re-registering its alarm,
    /// e.g. after a push message told it to sync on a new schedule). The
    /// window and grace lengths are unchanged.
    pub fn reschedule(&mut self, nominal: SimTime) {
        self.nominal = nominal;
    }

    /// Advances a repeating alarm to its next period after a delivery at
    /// `delivered_at`, returning `false` for one-shot alarms (which are
    /// never reinserted).
    ///
    /// Static alarms advance along their fixed grid (skipping any periods
    /// that the delivery already passed, which cannot happen while the
    /// `grace < repeat` invariant holds); dynamic alarms reappoint the
    /// nominal time relative to the actual delivery (§2.1).
    pub fn advance_after_delivery(&mut self, delivered_at: SimTime) -> bool {
        match self.repeat {
            Repeat::OneShot => false,
            Repeat::Static(interval) => {
                let mut next = self.nominal + interval;
                while next <= delivered_at {
                    next += interval;
                }
                self.nominal = next;
                true
            }
            Repeat::Dynamic(interval) => {
                self.nominal = delivered_at + interval;
                true
            }
        }
    }

    /// The window length as a fraction of the repeating interval (the
    /// paper's α), or `None` for one-shot alarms.
    pub fn alpha(&self) -> Option<f64> {
        self.repeat
            .interval()
            .map(|i| self.window.div_duration_f64(i))
    }

    /// The grace length as a fraction of the repeating interval (the
    /// paper's β), or `None` for one-shot alarms.
    pub fn beta(&self) -> Option<f64> {
        self.repeat
            .interval()
            .map(|i| self.grace.div_duration_f64(i))
    }
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}, {}, nominal {}, window {}, grace {})",
            self.id, self.label, self.kind, self.repeat, self.nominal, self.window, self.grace
        )
    }
}

/// Builder for [`Alarm`] (see [`Alarm::builder`]).
///
/// Window and grace intervals may be given either as absolute durations
/// ([`window`](Self::window) / [`grace`](Self::grace)) or, for repeating
/// alarms, as fractions of the repeating interval
/// ([`window_fraction`](Self::window_fraction) /
/// [`grace_fraction`](Self::grace_fraction)) — the paper's α and β.
/// Defaults: nominal = 0, one-shot, wakeup, empty hardware set,
/// zero window, grace = window, 1 s task.
#[derive(Debug, Clone)]
pub struct AlarmBuilder {
    label: Arc<str>,
    nominal: SimTime,
    window: WindowSpec,
    grace: Option<WindowSpec>,
    repeat: Repeat,
    kind: AlarmKind,
    hardware: HardwareSet,
    task_duration: SimDuration,
}

#[derive(Debug, Clone, Copy)]
enum WindowSpec {
    Absolute(SimDuration),
    Fraction(f64),
}

impl AlarmBuilder {
    fn new(label: impl Into<Arc<str>>) -> Self {
        AlarmBuilder {
            label: label.into(),
            nominal: SimTime::ZERO,
            window: WindowSpec::Absolute(SimDuration::ZERO),
            grace: None,
            repeat: Repeat::OneShot,
            kind: AlarmKind::Wakeup,
            hardware: HardwareSet::empty(),
            task_duration: SimDuration::from_secs(1),
        }
    }

    /// Sets the first nominal delivery time.
    pub fn nominal(mut self, nominal: SimTime) -> Self {
        self.nominal = nominal;
        self
    }

    /// Makes this a static repeating alarm with the given interval.
    pub fn repeating_static(mut self, interval: SimDuration) -> Self {
        self.repeat = Repeat::Static(interval);
        self
    }

    /// Makes this a dynamic repeating alarm with the given interval.
    pub fn repeating_dynamic(mut self, interval: SimDuration) -> Self {
        self.repeat = Repeat::Dynamic(interval);
        self
    }

    /// Makes this a one-shot alarm (the default).
    pub fn one_shot(mut self) -> Self {
        self.repeat = Repeat::OneShot;
        self
    }

    /// Sets the window interval as an absolute duration.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.window = WindowSpec::Absolute(window);
        self
    }

    /// Sets the window interval as a fraction α of the repeating interval
    /// (Android's default is α = 0.75; see Table 3 for per-app values).
    pub fn window_fraction(mut self, alpha: f64) -> Self {
        self.window = WindowSpec::Fraction(alpha);
        self
    }

    /// Sets the grace interval as an absolute duration.
    pub fn grace(mut self, grace: SimDuration) -> Self {
        self.grace = Some(WindowSpec::Absolute(grace));
        self
    }

    /// Sets the grace interval as a fraction β of the repeating interval
    /// (the paper's experiments use β = 0.96).
    pub fn grace_fraction(mut self, beta: f64) -> Self {
        self.grace = Some(WindowSpec::Fraction(beta));
        self
    }

    /// Sets wakeup vs non-wakeup (the default is wakeup).
    pub fn kind(mut self, kind: AlarmKind) -> Self {
        self.kind = kind;
        self
    }

    /// Declares the hardware set the alarm's task wakelocks. The policy
    /// will not see this until the first delivery (footnote 4).
    pub fn hardware(mut self, hardware: HardwareSet) -> Self {
        self.hardware = hardware;
        self
    }

    /// Sets how long the task holds its wakelocks after delivery.
    pub fn task_duration(mut self, duration: SimDuration) -> Self {
        self.task_duration = duration;
        self
    }

    /// Builds the alarm, validating the paper's interval constraints.
    ///
    /// # Errors
    ///
    /// Returns [`BuildAlarmError`] if `grace < window`, if a repeating
    /// alarm's grace is not strictly below its repeating interval, if a
    /// repeating interval is zero, or if a window/grace *fraction* is used
    /// on a one-shot alarm or lies outside `[0, 1)`.
    pub fn build(self) -> Result<Alarm, BuildAlarmError> {
        if let Some(interval) = self.repeat.interval() {
            if interval.is_zero() {
                return Err(BuildAlarmError::ZeroRepeatInterval);
            }
        }
        let window = Self::resolve(self.window, self.repeat)?;
        let grace = match self.grace {
            Some(spec) => Self::resolve(spec, self.repeat)?,
            None => window,
        };
        if grace < window {
            return Err(BuildAlarmError::GraceShorterThanWindow { window, grace });
        }
        if let Some(interval) = self.repeat.interval() {
            if grace >= interval {
                return Err(BuildAlarmError::GraceNotBelowRepeat {
                    grace,
                    repeat: interval,
                });
            }
        }
        Ok(Alarm {
            id: AlarmId::fresh(),
            label: self.label,
            nominal: self.nominal,
            window,
            grace,
            repeat: self.repeat,
            kind: self.kind,
            hardware: self.hardware,
            hardware_known: false,
            task_duration: self.task_duration,
            quarantined: false,
            grace_stretch: GRACE_STRETCH_UNIT,
        })
    }

    fn resolve(spec: WindowSpec, repeat: Repeat) -> Result<SimDuration, BuildAlarmError> {
        match spec {
            WindowSpec::Absolute(d) => Ok(d),
            WindowSpec::Fraction(f) => {
                if !(0.0..1.0).contains(&f) {
                    return Err(BuildAlarmError::FractionOutOfRange { fraction: f });
                }
                let interval = repeat
                    .interval()
                    .ok_or(BuildAlarmError::FractionWithoutRepeat { fraction: f })?;
                Ok(interval.mul_f64(f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareComponent;

    fn wifi_alarm(alpha: f64, beta: f64) -> Alarm {
        Alarm::builder("test")
            .nominal(SimTime::from_secs(100))
            .repeating_static(SimDuration::from_secs(100))
            .window_fraction(alpha)
            .grace_fraction(beta)
            .hardware(HardwareComponent::Wifi.into())
            .build()
            .unwrap()
    }

    #[test]
    fn ids_are_unique() {
        let a = wifi_alarm(0.5, 0.9);
        let b = wifi_alarm(0.5, 0.9);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn fractions_scale_the_repeating_interval() {
        let a = wifi_alarm(0.75, 0.96);
        assert_eq!(a.window(), SimDuration::from_secs(75));
        assert_eq!(a.grace(), SimDuration::from_secs(96));
        assert!((a.alpha().unwrap() - 0.75).abs() < 1e-9);
        assert!((a.beta().unwrap() - 0.96).abs() < 1e-9);
    }

    #[test]
    fn intervals_start_at_nominal() {
        let a = wifi_alarm(0.75, 0.96);
        assert_eq!(a.window_interval().start(), SimTime::from_secs(100));
        assert_eq!(a.window_interval().end(), SimTime::from_secs(175));
        assert_eq!(a.grace_interval().end(), SimTime::from_secs(196));
    }

    #[test]
    fn grace_defaults_to_window() {
        let a = Alarm::builder("w")
            .repeating_static(SimDuration::from_secs(60))
            .window_fraction(0.5)
            .build()
            .unwrap();
        assert_eq!(a.grace(), a.window());
    }

    #[test]
    fn build_rejects_grace_below_window() {
        let err = Alarm::builder("bad")
            .repeating_static(SimDuration::from_secs(100))
            .window_fraction(0.75)
            .grace_fraction(0.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildAlarmError::GraceShorterThanWindow { .. }));
    }

    #[test]
    fn build_rejects_grace_at_or_above_repeat() {
        let err = Alarm::builder("bad")
            .repeating_static(SimDuration::from_secs(100))
            .grace(SimDuration::from_secs(100))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildAlarmError::GraceNotBelowRepeat { .. }));
    }

    #[test]
    fn build_rejects_zero_repeat() {
        let err = Alarm::builder("bad")
            .repeating_dynamic(SimDuration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildAlarmError::ZeroRepeatInterval);
    }

    #[test]
    fn build_rejects_fraction_on_one_shot() {
        let err = Alarm::builder("bad").window_fraction(0.5).build().unwrap_err();
        assert!(matches!(err, BuildAlarmError::FractionWithoutRepeat { .. }));
    }

    #[test]
    fn build_rejects_out_of_range_fraction() {
        let err = Alarm::builder("bad")
            .repeating_static(SimDuration::from_secs(10))
            .window_fraction(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildAlarmError::FractionOutOfRange { .. }));
    }

    #[test]
    fn perceptibility_per_footnote_5() {
        // Unknown hardware -> perceptible, even if the declared set is not.
        let mut a = wifi_alarm(0.75, 0.96);
        assert!(a.is_perceptible());
        a.mark_hardware_known();
        assert!(!a.is_perceptible());
        assert_eq!(a.known_hardware(), HardwareComponent::Wifi.into());

        // One-shot alarms are always perceptible.
        let mut one_shot = Alarm::builder("once").build().unwrap();
        one_shot.mark_hardware_known();
        assert!(one_shot.is_perceptible());

        // Perceptible hardware -> perceptible once known.
        let mut notify = Alarm::builder("cal")
            .repeating_static(SimDuration::from_secs(1800))
            .hardware(HardwareComponent::Speaker | HardwareComponent::Vibrator)
            .build()
            .unwrap();
        notify.mark_hardware_known();
        assert!(notify.is_perceptible());
    }

    #[test]
    fn known_hardware_is_empty_until_first_delivery() {
        let a = wifi_alarm(0.75, 0.96);
        assert!(a.known_hardware().is_empty());
        assert!(!a.hardware().is_empty());
    }

    #[test]
    fn static_advance_stays_on_grid() {
        let mut a = wifi_alarm(0.0, 0.5);
        // Nominal 100, interval 100; delivered late at 140 -> next nominal 200.
        assert!(a.advance_after_delivery(SimTime::from_secs(140)));
        assert_eq!(a.nominal(), SimTime::from_secs(200));
        // Delivered exactly on a later grid point -> skips to the one after.
        assert!(a.advance_after_delivery(SimTime::from_secs(300)));
        assert_eq!(a.nominal(), SimTime::from_secs(400));
    }

    #[test]
    fn dynamic_advance_reappoints_from_delivery() {
        let mut a = Alarm::builder("d")
            .nominal(SimTime::from_secs(60))
            .repeating_dynamic(SimDuration::from_secs(60))
            .build()
            .unwrap();
        assert!(a.advance_after_delivery(SimTime::from_secs(95)));
        assert_eq!(a.nominal(), SimTime::from_secs(155));
    }

    #[test]
    fn one_shot_does_not_advance() {
        let mut a = Alarm::builder("o").build().unwrap();
        assert!(!a.advance_after_delivery(SimTime::from_secs(10)));
    }

    #[test]
    fn display_is_informative() {
        let a = wifi_alarm(0.75, 0.96);
        let s = a.to_string();
        assert!(s.contains("test"));
        assert!(s.contains("static"));
    }

    #[test]
    fn grace_stretch_widens_only_imperceptible_alarms() {
        // interval 100 s, grace 50 s.
        let mut a = wifi_alarm(0.25, 0.5);
        a.set_grace_stretch(1_500);
        // Hardware still unknown -> perceptible -> no stretch.
        assert!(a.is_perceptible());
        assert_eq!(a.grace(), SimDuration::from_secs(50));
        a.mark_hardware_known();
        assert!(!a.is_perceptible());
        assert_eq!(a.grace(), SimDuration::from_secs(75));
        assert_eq!(a.grace_base(), SimDuration::from_secs(50));
        assert_eq!(a.grace_interval().end(), SimTime::from_secs(175));
        // Beta reports the registered fraction, not the stretched one.
        assert!((a.beta().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn grace_stretch_is_capped_below_the_repeating_interval() {
        let mut a = wifi_alarm(0.25, 0.5);
        a.mark_hardware_known();
        a.set_grace_stretch(10_000); // 10x of 50 s would blow past 100 s
        assert_eq!(a.grace(), SimDuration::from_millis(99_999));
        // Resetting to the unit restores the registered grace exactly.
        a.set_grace_stretch(GRACE_STRETCH_UNIT);
        assert_eq!(a.grace(), SimDuration::from_secs(50));
        // Below-unit requests clamp to the unit: degradation may only
        // widen, never shrink (§3.1.2 forbids grace < window).
        a.set_grace_stretch(100);
        assert_eq!(a.grace_stretch(), GRACE_STRETCH_UNIT);
    }

    #[test]
    fn quarantined_alarms_are_stretched_too() {
        let mut a = wifi_alarm(0.25, 0.5);
        a.set_quarantined(true); // quarantine demotes to imperceptible
        a.set_grace_stretch(2_000);
        assert_eq!(a.grace(), SimDuration::from_secs(100).min(SimDuration::from_millis(99_999)));
    }
}
