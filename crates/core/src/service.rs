//! A thread-safe alarm-manager service handle.
//!
//! On Android, `AlarmManager` is a *system service*: many app processes
//! register and cancel alarms concurrently while the system delivers
//! them. [`AlarmService`] provides that shape over
//! [`AlarmManager`]: a cheaply cloneable
//! handle whose operations serialize through a [`parking_lot::Mutex`]
//! (chosen over `std::sync::Mutex` for its non-poisoning semantics — a
//! panicking app thread must not wedge the system service).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::alarm::{Alarm, AlarmId};
use crate::entry::QueueEntry;
use crate::error::RegisterAlarmError;
use crate::manager::AlarmManager;
use crate::policy::AlignmentPolicy;
use crate::time::SimTime;

/// A cloneable, thread-safe handle to a shared [`AlarmManager`].
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::policy::SimtyPolicy;
/// use simty_core::service::AlarmService;
/// use simty_core::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = AlarmService::new(Box::new(SimtyPolicy::new()));
/// let handle = service.clone();
/// let worker = std::thread::spawn(move || {
///     handle.register(
///         Alarm::builder("from-another-thread")
///             .nominal(SimTime::from_secs(60))
///             .repeating_dynamic(SimDuration::from_secs(60))
///             .build()
///             .expect("valid alarm"),
///     )
/// });
/// worker.join().expect("worker thread")?;
/// assert_eq!(service.alarm_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AlarmService {
    inner: Arc<Mutex<AlarmManager>>,
}

impl AlarmService {
    /// Creates a service around a fresh manager with the given policy.
    pub fn new(policy: Box<dyn AlignmentPolicy>) -> Self {
        AlarmService {
            inner: Arc::new(Mutex::new(AlarmManager::new(policy))),
        }
    }

    /// Wraps an existing manager.
    pub fn from_manager(manager: AlarmManager) -> Self {
        AlarmService {
            inner: Arc::new(Mutex::new(manager)),
        }
    }

    /// Registers an alarm (see
    /// [`AlarmManager::register`](crate::manager::AlarmManager::register)).
    ///
    /// # Errors
    ///
    /// Propagates [`RegisterAlarmError`] from the manager.
    pub fn register(&self, alarm: Alarm) -> Result<AlarmId, RegisterAlarmError> {
        self.inner.lock().register(alarm)
    }

    /// Cancels an alarm.
    pub fn cancel(&self, id: AlarmId) -> Option<Alarm> {
        self.inner.lock().cancel(id)
    }

    /// The next wakeup the RTC must serve.
    pub fn next_wakeup_time(&self) -> Option<SimTime> {
        self.inner.lock().next_wakeup_time()
    }

    /// Pops every due wakeup entry (the RTC interrupt path).
    pub fn pop_due_wakeup(&self, now: SimTime) -> Vec<QueueEntry> {
        self.inner.lock().pop_due_wakeup(now)
    }

    /// Pops every due non-wakeup entry (only call while awake).
    pub fn pop_due_non_wakeup(&self, now: SimTime) -> Vec<QueueEntry> {
        self.inner.lock().pop_due_non_wakeup(now)
    }

    /// Finishes a delivery, reinserting repeating alarms.
    pub fn complete_delivery(&self, alarm: Alarm, delivered_at: SimTime) -> Option<AlarmId> {
        self.inner.lock().complete_delivery(alarm, delivered_at)
    }

    /// Total registered alarms.
    pub fn alarm_count(&self) -> usize {
        self.inner.lock().alarm_count()
    }

    /// Runs a closure with shared access to the manager (for inspection
    /// that needs more than one call to be consistent).
    pub fn with<R>(&self, f: impl FnOnce(&AlarmManager) -> R) -> R {
        f(&self.inner.lock())
    }
}

impl std::fmt::Debug for AlarmService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let manager = self.inner.lock();
        f.debug_struct("AlarmService")
            .field("policy", &manager.policy_name())
            .field("alarms", &manager.alarm_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareComponent;
    use crate::policy::{NativePolicy, SimtyPolicy};
    use crate::time::SimDuration;
    use std::thread;

    fn alarm(label: &str, nominal_s: u64) -> Alarm {
        Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.5)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .build()
            .unwrap()
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlarmService>();
    }

    #[test]
    fn concurrent_registration_from_many_threads() {
        let service = AlarmService::new(Box::new(SimtyPolicy::new()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let svc = service.clone();
            handles.push(thread::spawn(move || {
                for i in 0..25u64 {
                    svc.register(alarm(&format!("app-{t}-{i}"), 60 + i * 7))
                        .expect("registers");
                }
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(service.alarm_count(), 200);
        // The queue is structurally sound: sorted, no duplicates.
        service.with(|m| {
            let times: Vec<SimTime> = m
                .wakeup_queue()
                .iter()
                .map(|e| e.delivery_time())
                .collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            let mut ids = std::collections::BTreeSet::new();
            for entry in m.wakeup_queue().iter() {
                for a in entry.alarms() {
                    assert!(ids.insert(a.id()));
                }
            }
        });
    }

    #[test]
    fn delivery_cycle_through_the_service() {
        let service = AlarmService::new(Box::new(NativePolicy::new()));
        service.register(alarm("a", 60)).unwrap();
        let t = service.next_wakeup_time().unwrap();
        let due = service.pop_due_wakeup(t);
        assert_eq!(due.len(), 1);
        for entry in due {
            for a in entry.into_alarms() {
                assert!(service.complete_delivery(a, t).is_some());
            }
        }
        assert_eq!(service.alarm_count(), 1);
        assert!(service.next_wakeup_time().unwrap() > t);
    }

    #[test]
    fn registrations_race_with_deliveries() {
        let service = AlarmService::new(Box::new(SimtyPolicy::new()));
        for i in 0..20u64 {
            service.register(alarm(&format!("seed-{i}"), 30 + i)).unwrap();
        }
        let registrar = {
            let svc = service.clone();
            thread::spawn(move || {
                for i in 0..100u64 {
                    svc.register(alarm(&format!("late-{i}"), 2_000 + i))
                        .expect("registers");
                }
            })
        };
        let deliverer = {
            let svc = service.clone();
            thread::spawn(move || {
                let mut delivered = 0usize;
                let mut now = SimTime::from_secs(100);
                while delivered < 20 {
                    for entry in svc.pop_due_wakeup(now) {
                        for a in entry.into_alarms() {
                            delivered += 1;
                            svc.complete_delivery(a, now);
                        }
                    }
                    now += SimDuration::from_secs(30);
                }
                delivered
            })
        };
        registrar.join().expect("registrar");
        let delivered = deliverer.join().expect("deliverer");
        assert!(delivered >= 20);
        // Nothing lost: 20 seeds (reinserted) + 100 late registrations.
        assert_eq!(service.alarm_count(), 120);
    }

    #[test]
    fn debug_is_nonempty() {
        let service = AlarmService::new(Box::new(SimtyPolicy::new()));
        assert!(format!("{service:?}").contains("SIMTY"));
    }
}
