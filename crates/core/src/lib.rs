//! # simty-core — similarity-based wakeup management
//!
//! A from-scratch implementation of the alarm-management layer described
//! in *"Similarity-Based Wakeup Management for Mobile Systems in
//! Connected Standby"* (Kao, Cheng, Hsiu — DAC 2016).
//!
//! Resident mobile apps register **alarms** that periodically awaken a
//! device in connected standby. The [`AlarmManager`]
//! batches alarms into [`QueueEntry`] groups that are
//! delivered together, governed by a pluggable
//! [`AlignmentPolicy`]:
//!
//! * [`NativePolicy`] — Android ≥ 4.4's
//!   window-overlap batching;
//! * [`SimtyPolicy`] — the paper's contribution:
//!   align by [hardware similarity](similarity::HardwareSimilarity)
//!   (degree of energy savings) and [time similarity](similarity::TimeSimilarity)
//!   (impact on user experience), postponing *imperceptible* alarms into
//!   their grace intervals;
//! * [`ExactPolicy`] — no alignment (baseline);
//! * [`DurationSimilarityPolicy`] — the
//!   §5 duration-similarity extension.
//!
//! # Quick start
//!
//! ```
//! use simty_core::alarm::Alarm;
//! use simty_core::hardware::HardwareComponent;
//! use simty_core::manager::AlarmManager;
//! use simty_core::policy::SimtyPolicy;
//! use simty_core::time::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut manager = AlarmManager::new(Box::new(SimtyPolicy::new()));
//!
//! // Line syncs over Wi-Fi every 200 s with Android's default α = 0.75;
//! // the grace interval β = 0.96 is the paper's experimental setting.
//! manager.register(
//!     Alarm::builder("Line")
//!         .nominal(SimTime::from_secs(200))
//!         .repeating_dynamic(SimDuration::from_secs(200))
//!         .window_fraction(0.75)
//!         .grace_fraction(0.96)
//!         .hardware(HardwareComponent::Wifi.into())
//!         .task_duration(SimDuration::from_secs(3))
//!         .build()?,
//! )?;
//!
//! // The real-time clock would fire here:
//! let t = manager.next_wakeup_time().expect("an alarm is queued");
//! for entry in manager.pop_due_wakeup(t) {
//!     for alarm in entry.into_alarms() {
//!         manager.complete_delivery(alarm, t); // reinserts repeating alarms
//!     }
//! }
//! assert_eq!(manager.alarm_count(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! The companion crates build the rest of the paper's evaluation stack:
//! `simty-device` (power model), `simty-sim` (discrete-event simulator),
//! `simty-apps` (the 18-app workload of Table 3), and `simty-bench`
//! (the experiment harness regenerating every figure and table).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod alarm;
pub mod audit;
pub mod bounds;
pub mod entry;
pub mod error;
pub mod hardware;
pub mod manager;
pub mod policy;
pub mod queue;
pub mod service;
pub mod similarity;
pub mod time;

pub use admission::{
    Admission, AdmissionConfig, AdmissionController, AdmissionDecision, AppAdmission, AppClass,
    ClassQuota, TokenBucket,
};
pub use alarm::{Alarm, AlarmBuilder, AlarmId, AlarmKind, Repeat, GRACE_STRETCH_UNIT};
pub use audit::{CandidateAudit, CandidateVerdict, PlacementAudit};
pub use entry::{DeliveryDiscipline, QueueEntry};
pub use hardware::{HardwareComponent, HardwareSet};
pub use manager::AlarmManager;
pub use policy::{
    AlignmentPolicy, DozePolicy, DurationSimilarityPolicy, ExactPolicy, FixedIntervalPolicy,
    NativePolicy, Placement, SimtyPolicy,
};
pub use service::AlarmService;
pub use similarity::{HardwareGranularity, HardwareSimilarity, Preferability, TimeSimilarity};
pub use time::{Interval, SimDuration, SimTime};
