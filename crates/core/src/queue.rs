//! The alarm queue: entries ordered by scheduled delivery time.
//!
//! Android's `AlarmManager` keeps registered alarms "queued in the
//! increasing order of their delivery times" (§2.1). Alignment policies
//! scan this order in their *search phase*, and the simulator pops due
//! entries from the front.

use std::fmt;

use crate::alarm::{Alarm, AlarmId};
use crate::entry::{DeliveryDiscipline, QueueEntry};
use crate::time::SimTime;

/// A delivery-time-ordered queue of [`QueueEntry`] batches.
///
/// Ordering is stable: entries with equal delivery times keep their
/// insertion order, which makes the "first found, most preferable entry"
/// tie-break of §3.2.1 deterministic.
///
/// # Examples
///
/// ```
/// use simty_core::alarm::Alarm;
/// use simty_core::entry::DeliveryDiscipline;
/// use simty_core::queue::AlarmQueue;
/// use simty_core::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), simty_core::error::BuildAlarmError> {
/// let mut queue = AlarmQueue::new();
/// let alarm = Alarm::builder("sync")
///     .nominal(SimTime::from_secs(60))
///     .repeating_dynamic(SimDuration::from_secs(60))
///     .build()?;
/// queue.insert_new_entry(alarm, DeliveryDiscipline::Window);
/// assert_eq!(queue.next_delivery_time(), Some(SimTime::from_secs(60)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AlarmQueue {
    entries: Vec<QueueEntry>,
}

impl AlarmQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        AlarmQueue::default()
    }

    /// The entries in increasing delivery-time order.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// Number of entries (batches).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of alarms across all entries.
    pub fn alarm_count(&self) -> usize {
        self.entries.iter().map(QueueEntry::len).sum()
    }

    /// The delivery time of the front entry.
    pub fn next_delivery_time(&self) -> Option<SimTime> {
        self.entries.first().map(QueueEntry::delivery_time)
    }

    /// Whether any entry contains the alarm.
    pub fn contains_alarm(&self, id: AlarmId) -> bool {
        self.entries.iter().any(|e| e.contains(id))
    }

    /// Finds the queue position of the entry holding `id`.
    pub fn position_of(&self, id: AlarmId) -> Option<usize> {
        self.entries.iter().position(|e| e.contains(id))
    }

    /// Wraps `alarm` in a fresh entry and inserts it in delivery-time
    /// order.
    pub fn insert_new_entry(&mut self, alarm: Alarm, discipline: DeliveryDiscipline) {
        self.insert_entry(QueueEntry::new(alarm, discipline));
    }

    /// Reserves capacity for at least `additional` more entries, so a
    /// subsequent insert cannot trigger a reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Inserts a prepared entry in delivery-time order (after any existing
    /// entries with the same delivery time).
    pub fn insert_entry(&mut self, entry: QueueEntry) {
        let t = entry.delivery_time();
        let pos = self.entries.partition_point(|e| e.delivery_time() <= t);
        self.entries.insert(pos, entry);
    }

    /// Adds `alarm` to the entry at `index`, repositioning the entry since
    /// its delivery time may have moved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn add_to_entry(&mut self, index: usize, alarm: Alarm) {
        let mut entry = self.entries.remove(index);
        entry.push(alarm);
        self.insert_entry(entry);
    }

    /// Removes the alarm with `id` from whichever entry holds it; drops
    /// the entry if it becomes empty, repositions it otherwise.
    pub fn remove_alarm(&mut self, id: AlarmId) -> Option<Alarm> {
        let idx = self.position_of(id)?;
        let mut entry = self.entries.remove(idx);
        let alarm = entry.remove(id);
        if !entry.is_empty() {
            self.insert_entry(entry);
        }
        alarm
    }

    /// Removes and returns the entry at `index` (used by NATIVE's
    /// realignment, §2.1).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn take_entry(&mut self, index: usize) -> QueueEntry {
        self.entries.remove(index)
    }

    /// Removes and returns every entry whose delivery time is at or before
    /// `now`, in delivery order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.pop_due_into(now, &mut out);
        out
    }

    /// Like [`pop_due`](Self::pop_due), but appends into a caller-owned
    /// buffer. The simulator's delivery loop calls this every wakeup
    /// round; reusing one buffer there avoids a `Vec` allocation per
    /// round (most rounds pop zero or one entry).
    pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<QueueEntry>) {
        let cut = self
            .entries
            .partition_point(|e| e.delivery_time() <= now);
        out.extend(self.entries.drain(..cut));
    }

    /// Iterates over the entries in delivery order.
    pub fn iter(&self) -> std::slice::Iter<'_, QueueEntry> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a AlarmQueue {
    type Item = &'a QueueEntry;
    type IntoIter = std::slice::Iter<'a, QueueEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl fmt::Display for AlarmQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queue with {} entr(ies):", self.entries.len())?;
        for e in &self.entries {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn alarm_at(label: &str, nominal_s: u64) -> Alarm {
        Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.75)
            .build()
            .unwrap()
    }

    #[test]
    fn entries_stay_sorted_by_delivery_time() {
        let mut q = AlarmQueue::new();
        for t in [300, 100, 200] {
            q.insert_new_entry(alarm_at("a", t), DeliveryDiscipline::Window);
        }
        let times: Vec<_> = q.iter().map(|e| e.delivery_time().as_millis() / 1000).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn equal_delivery_times_keep_insertion_order() {
        let mut q = AlarmQueue::new();
        let first = alarm_at("first", 100);
        let second = alarm_at("second", 100);
        let first_id = first.id();
        q.insert_new_entry(first, DeliveryDiscipline::Window);
        q.insert_new_entry(second, DeliveryDiscipline::Window);
        assert_eq!(q.entries()[0].alarms()[0].id(), first_id);
    }

    #[test]
    fn pop_due_takes_exactly_the_due_prefix() {
        let mut q = AlarmQueue::new();
        for t in [100, 200, 300] {
            q.insert_new_entry(alarm_at("a", t), DeliveryDiscipline::Window);
        }
        let due = q.pop_due(SimTime::from_secs(200));
        assert_eq!(due.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_delivery_time(), Some(SimTime::from_secs(300)));
        assert!(q.pop_due(SimTime::from_secs(250)).is_empty());
    }

    #[test]
    fn remove_alarm_drops_empty_entries() {
        let mut q = AlarmQueue::new();
        let a = alarm_at("a", 100);
        let id = a.id();
        q.insert_new_entry(a, DeliveryDiscipline::Window);
        assert!(q.contains_alarm(id));
        let removed = q.remove_alarm(id).unwrap();
        assert_eq!(removed.id(), id);
        assert!(q.is_empty());
        assert!(q.remove_alarm(id).is_none());
    }

    #[test]
    fn add_to_entry_repositions() {
        let mut q = AlarmQueue::new();
        q.insert_new_entry(alarm_at("early", 100), DeliveryDiscipline::Window);
        q.insert_new_entry(alarm_at("late", 400), DeliveryDiscipline::Window);
        // Joining a later alarm moves the first entry's window start to 150.
        q.add_to_entry(0, alarm_at("join", 150));
        assert_eq!(q.entries()[0].delivery_time(), SimTime::from_secs(150));
        assert_eq!(q.alarm_count(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn counts_and_lookup() {
        let mut q = AlarmQueue::new();
        let a = alarm_at("a", 100);
        let id = a.id();
        q.insert_new_entry(a, DeliveryDiscipline::Window);
        q.insert_new_entry(alarm_at("b", 200), DeliveryDiscipline::Window);
        assert_eq!(q.len(), 2);
        assert_eq!(q.alarm_count(), 2);
        assert_eq!(q.position_of(id), Some(0));
        assert_eq!((&q).into_iter().count(), 2);
    }
}
