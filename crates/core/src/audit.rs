//! Placement decision auditing.
//!
//! The paper's Table 1 ranking is the heart of SIMTY, yet a normal run
//! leaves no trace of it: the policy inspects candidate entries, ranks
//! them by hardware/time similarity, and returns a bare
//! [`Placement`]. An audit record captures that reasoning — every
//! candidate considered, its similarity ranks, and why it won or lost —
//! so a run can answer "*why* was alarm X batched with entry Y?" after
//! the fact (surfaced by the `standby explain` subcommand).
//!
//! Policies fill in the per-candidate half via
//! [`AlignmentPolicy::place_audited`](crate::policy::AlignmentPolicy::place_audited);
//! the [`AlarmManager`](crate::manager::AlarmManager) wraps it with the
//! alarm's identity into one [`PlacementAudit`] per decision.

use std::sync::Arc;

use crate::alarm::AlarmId;
use crate::policy::Placement;
use crate::similarity::{Preferability, TimeSimilarity};
use crate::time::SimTime;

/// How one candidate entry fared during a placement search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateVerdict {
    /// The candidate won the selection phase: the alarm joins it.
    Won,
    /// Applicable, but a better-ranked candidate won.
    Outranked,
    /// Rejected by the search phase's applicability filter (low time
    /// similarity, or a perceptible party without high time similarity).
    NotApplicable,
    /// Past the alarm's delivery-order cutoff: this entry (and everything
    /// after it) delivers too late to host the alarm, so the search
    /// stopped here.
    PastCutoff,
}

impl CandidateVerdict {
    /// A stable snake_case name for exports.
    pub fn as_str(self) -> &'static str {
        match self {
            CandidateVerdict::Won => "won",
            CandidateVerdict::Outranked => "outranked",
            CandidateVerdict::NotApplicable => "not_applicable",
            CandidateVerdict::PastCutoff => "past_cutoff",
        }
    }
}

/// One candidate entry considered during a placement search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateAudit {
    /// The entry's queue position at decision time.
    pub index: usize,
    /// The entry's scheduled delivery time at decision time.
    pub delivery_time: SimTime,
    /// Time similarity between the entry and the alarm (§3.1).
    pub time: TimeSimilarity,
    /// Hardware-similarity rank (0 = most similar), when the search
    /// phase reached the ranking step; `None` for candidates rejected
    /// before ranking.
    pub hw_rank: Option<u8>,
    /// The Table 1 preferability derived from the ranks, when ranked.
    pub preferability: Option<Preferability>,
    /// Why the candidate won or lost.
    pub verdict: CandidateVerdict,
}

/// One complete placement decision: which alarm was placed, where, and
/// every candidate the policy weighed.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementAudit {
    /// The manager clock when the decision was made.
    pub at: SimTime,
    /// The placed alarm's id.
    pub alarm_id: AlarmId,
    /// The placed alarm's app label.
    pub app: Arc<str>,
    /// The placed alarm's nominal time — together with
    /// [`alarm_id`](Self::alarm_id) this uniquely identifies one
    /// occurrence of a repeating alarm.
    pub nominal: SimTime,
    /// Whether the placed alarm is perceptible.
    pub perceptible: bool,
    /// The decision's outcome.
    pub placement: Placement,
    /// Every candidate entry the policy weighed, in queue order. Empty
    /// for policies that do not audit their search (or when the queue
    /// held no candidates).
    pub candidates: Vec<CandidateAudit>,
}

impl PlacementAudit {
    /// The winning candidate, if an existing entry was chosen by an
    /// auditing policy.
    pub fn winner(&self) -> Option<&CandidateAudit> {
        self.candidates
            .iter()
            .find(|c| c.verdict == CandidateVerdict::Won)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_is_found_by_verdict() {
        let candidate = |index, verdict| CandidateAudit {
            index,
            delivery_time: SimTime::from_secs(60),
            time: TimeSimilarity::High,
            hw_rank: Some(0),
            preferability: Some(Preferability::from_ranks(0, TimeSimilarity::High)),
            verdict,
        };
        let audit = PlacementAudit {
            at: SimTime::from_secs(10),
            alarm_id: AlarmId::from_raw(7),
            app: "Line".into(),
            nominal: SimTime::from_secs(60),
            perceptible: false,
            placement: Placement::Existing(1),
            candidates: vec![
                candidate(0, CandidateVerdict::Outranked),
                candidate(1, CandidateVerdict::Won),
            ],
        };
        assert_eq!(audit.winner().unwrap().index, 1);
        assert_eq!(CandidateVerdict::Won.as_str(), "won");
        assert_eq!(CandidateVerdict::NotApplicable.as_str(), "not_applicable");
    }
}
