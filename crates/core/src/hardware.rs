//! Hardware components and wakelockable hardware sets.
//!
//! Only components that alarms can *autonomously wakelock* participate in
//! similarity determination (§3.1.1) — the CPU and memory are essential
//! whenever the device is awake and are therefore excluded from
//! [`HardwareSet`]. The user-perceptible components (screen, speaker,
//! vibrator) determine whether an alarm is perceptible (§3.1.2).
//!
//! # Examples
//!
//! ```
//! use simty_core::hardware::{HardwareComponent, HardwareSet};
//!
//! let wps = HardwareSet::from_iter([HardwareComponent::Wifi, HardwareComponent::Cellular]);
//! let notify = HardwareComponent::Speaker | HardwareComponent::Vibrator;
//! assert!(!wps.is_perceptible());
//! assert!(notify.is_perceptible());
//! assert!(wps.intersection(notify).is_empty());
//! ```

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A hardware component that an alarm's task can wakelock.
///
/// Mirrors the components of the paper's LG Nexus 5 testbed (Table 2) that
/// appear in the Table 3 workload: Wi-Fi, the WPS positioning pipeline
/// (Wi-Fi + cellular scanning), the accelerometer, and the perceptible
/// speaker / vibrator / screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum HardwareComponent {
    /// 802.11 WLAN radio.
    Wifi = 1 << 0,
    /// Cellular modem (3G WCDMA on the paper's testbed).
    Cellular = 1 << 1,
    /// Satellite GPS receiver.
    Gps = 1 << 2,
    /// The Wi-Fi positioning pipeline (Wi-Fi + cellular signal scanning).
    /// The paper accounts for WPS as its own hardware row in Table 4,
    /// distinct from plain Wi-Fi connectivity, so it is modelled as a
    /// separate wakelockable component.
    Wps = 1 << 3,
    /// Accelerometer (step counting in Noom Walk / Moves).
    Accelerometer = 1 << 4,
    /// Loudspeaker — user perceptible.
    Speaker = 1 << 5,
    /// Vibration motor — user perceptible.
    Vibrator = 1 << 6,
    /// LCD panel and backlight — user perceptible.
    Screen = 1 << 7,
}

impl HardwareComponent {
    /// All components, in declaration order.
    pub const ALL: [HardwareComponent; 8] = [
        HardwareComponent::Wifi,
        HardwareComponent::Cellular,
        HardwareComponent::Gps,
        HardwareComponent::Wps,
        HardwareComponent::Accelerometer,
        HardwareComponent::Speaker,
        HardwareComponent::Vibrator,
        HardwareComponent::Screen,
    ];

    /// Whether a wakelock on this component attracts the user's attention
    /// (§3.1.2: screen, speaker, vibrator).
    pub fn is_perceptible(self) -> bool {
        matches!(
            self,
            HardwareComponent::Speaker | HardwareComponent::Vibrator | HardwareComponent::Screen
        )
    }

    /// A short stable name, used in reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            HardwareComponent::Wifi => "Wi-Fi",
            HardwareComponent::Cellular => "Cellular",
            HardwareComponent::Gps => "GPS",
            HardwareComponent::Wps => "WPS",
            HardwareComponent::Accelerometer => "Accelerometer",
            HardwareComponent::Speaker => "Speaker",
            HardwareComponent::Vibrator => "Vibrator",
            HardwareComponent::Screen => "Screen",
        }
    }

    fn bit(self) -> u16 {
        self as u16
    }
}

impl fmt::Display for HardwareComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl BitOr for HardwareComponent {
    type Output = HardwareSet;

    fn bitor(self, rhs: HardwareComponent) -> HardwareSet {
        HardwareSet(self.bit() | rhs.bit())
    }
}

impl BitOr<HardwareSet> for HardwareComponent {
    type Output = HardwareSet;

    fn bitor(self, rhs: HardwareSet) -> HardwareSet {
        HardwareSet(self.bit() | rhs.0)
    }
}

/// A set of wakelockable hardware components, represented as a bitset.
///
/// The set an alarm wakelocks may be *empty* — such an alarm only awakens
/// the CPU (§3.1.1). Hardware similarity is defined over these sets.
///
/// # Examples
///
/// ```
/// use simty_core::hardware::{HardwareComponent, HardwareSet};
///
/// let mut set = HardwareSet::empty();
/// set.insert(HardwareComponent::Wifi);
/// assert!(set.contains(HardwareComponent::Wifi));
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.to_string(), "{Wi-Fi}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HardwareSet(u16);

impl HardwareSet {
    /// The empty set: the alarm wakelocks nothing beyond the CPU.
    pub const fn empty() -> Self {
        HardwareSet(0)
    }

    /// The set of user-perceptible components (screen, speaker, vibrator).
    pub fn perceptible_mask() -> Self {
        HardwareComponent::Speaker | HardwareComponent::Vibrator | HardwareComponent::Screen
    }

    /// A set with a single component.
    pub fn single(component: HardwareComponent) -> Self {
        HardwareSet(component.bit())
    }

    /// The raw bit representation (for persistence).
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Rebuilds a set from its raw bits, dropping any bits that do not
    /// correspond to a known component.
    pub fn from_bits(bits: u16) -> Self {
        let mut known = 0u16;
        for c in HardwareComponent::ALL {
            known |= c.bit();
        }
        HardwareSet(bits & known)
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of components in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `component` is in the set.
    pub fn contains(self, component: HardwareComponent) -> bool {
        self.0 & component.bit() != 0
    }

    /// Whether every component of `other` is also in `self`.
    pub fn is_superset(self, other: HardwareSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Adds a component; returns `true` if it was newly inserted.
    pub fn insert(&mut self, component: HardwareComponent) -> bool {
        let newly = !self.contains(component);
        self.0 |= component.bit();
        newly
    }

    /// Removes a component; returns `true` if it was present.
    pub fn remove(&mut self, component: HardwareComponent) -> bool {
        let present = self.contains(component);
        self.0 &= !component.bit();
        present
    }

    /// The union of two sets. Queue entries keep their hardware attribute
    /// as the union of their members' sets (§3.2.1).
    pub fn union(self, other: HardwareSet) -> HardwareSet {
        HardwareSet(self.0 | other.0)
    }

    /// The intersection of two sets.
    pub fn intersection(self, other: HardwareSet) -> HardwareSet {
        HardwareSet(self.0 & other.0)
    }

    /// Whether the set wakelocks any user-perceptible component.
    pub fn is_perceptible(self) -> bool {
        !self.intersection(HardwareSet::perceptible_mask()).is_empty()
    }

    /// Iterates over the components in the set in declaration order.
    pub fn iter(self) -> Iter {
        Iter { set: self, idx: 0 }
    }
}

impl fmt::Display for HardwareSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Binary for HardwareSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for HardwareSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl BitOr for HardwareSet {
    type Output = HardwareSet;

    fn bitor(self, rhs: HardwareSet) -> HardwareSet {
        self.union(rhs)
    }
}

impl BitOr<HardwareComponent> for HardwareSet {
    type Output = HardwareSet;

    fn bitor(self, rhs: HardwareComponent) -> HardwareSet {
        HardwareSet(self.0 | rhs.bit())
    }
}

impl BitOrAssign for HardwareSet {
    fn bitor_assign(&mut self, rhs: HardwareSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for HardwareSet {
    type Output = HardwareSet;

    fn bitand(self, rhs: HardwareSet) -> HardwareSet {
        self.intersection(rhs)
    }
}

impl From<HardwareComponent> for HardwareSet {
    fn from(component: HardwareComponent) -> Self {
        HardwareSet::single(component)
    }
}

impl FromIterator<HardwareComponent> for HardwareSet {
    fn from_iter<I: IntoIterator<Item = HardwareComponent>>(iter: I) -> Self {
        let mut set = HardwareSet::empty();
        set.extend(iter);
        set
    }
}

impl Extend<HardwareComponent> for HardwareSet {
    fn extend<I: IntoIterator<Item = HardwareComponent>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl IntoIterator for HardwareSet {
    type Item = HardwareComponent;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the components of a [`HardwareSet`].
#[derive(Debug, Clone)]
pub struct Iter {
    set: HardwareSet,
    idx: usize,
}

impl Iterator for Iter {
    type Item = HardwareComponent;

    fn next(&mut self) -> Option<HardwareComponent> {
        while self.idx < HardwareComponent::ALL.len() {
            let c = HardwareComponent::ALL[self.idx];
            self.idx += 1;
            if self.set.contains(c) {
                return Some(c);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = HardwareComponent::ALL[self.idx..]
            .iter()
            .filter(|c| self.set.contains(**c))
            .count();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let s = HardwareSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.is_perceptible());
        assert_eq!(s.to_string(), "{}");
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = HardwareSet::empty();
        assert!(s.insert(HardwareComponent::Wifi));
        assert!(!s.insert(HardwareComponent::Wifi));
        assert!(s.contains(HardwareComponent::Wifi));
        assert!(s.remove(HardwareComponent::Wifi));
        assert!(!s.remove(HardwareComponent::Wifi));
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let wps = HardwareComponent::Wifi | HardwareComponent::Cellular;
        let wifi = HardwareSet::single(HardwareComponent::Wifi);
        assert_eq!(wps.union(wifi), wps);
        assert_eq!(wps.intersection(wifi), wifi);
        assert_eq!(wps & HardwareSet::empty(), HardwareSet::empty());
        assert!(wps.is_superset(wifi));
        assert!(!wifi.is_superset(wps));
    }

    #[test]
    fn perceptibility_follows_the_paper() {
        // §3.1.2: perceptible iff the set wakelocks screen, speaker or vibrator.
        assert!(HardwareSet::single(HardwareComponent::Speaker).is_perceptible());
        assert!(HardwareSet::single(HardwareComponent::Vibrator).is_perceptible());
        assert!(HardwareSet::single(HardwareComponent::Screen).is_perceptible());
        assert!(!HardwareSet::single(HardwareComponent::Wifi).is_perceptible());
        assert!(!HardwareSet::single(HardwareComponent::Gps).is_perceptible());
        assert!(!HardwareSet::single(HardwareComponent::Accelerometer).is_perceptible());
        // A mixed set with one perceptible component is perceptible.
        assert!((HardwareComponent::Wifi | HardwareComponent::Vibrator).is_perceptible());
    }

    #[test]
    fn iteration_order_is_stable() {
        let s = HardwareComponent::Vibrator | HardwareComponent::Wifi;
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![HardwareComponent::Wifi, HardwareComponent::Vibrator]);
        assert_eq!(s.iter().len(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let s: HardwareSet = [
            HardwareComponent::Wifi,
            HardwareComponent::Cellular,
            HardwareComponent::Wifi,
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_and_binary() {
        let s = HardwareComponent::Wifi | HardwareComponent::Speaker;
        assert_eq!(s.to_string(), "{Wi-Fi, Speaker}");
        assert_eq!(format!("{s:b}"), "100001");
    }
}
