//! Criterion micro-benchmarks of the alignment policies: the per-insert
//! cost of the search + selection phases as the queue grows. The paper
//! describes NATIVE's realignment as trading "slight computation
//! overhead" for fewer wakeups; this quantifies that overhead for every
//! policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simty::prelude::*;

/// Builds a queue-shaped manager preloaded with `n` spread-out alarms.
fn preloaded_manager(policy: Box<dyn AlignmentPolicy>, n: usize) -> AlarmManager {
    let mut manager = AlarmManager::new(policy);
    for i in 0..n {
        let mut alarm = Alarm::builder(format!("bg{i}"))
            .nominal(SimTime::from_secs(60 + (i as u64 * 37) % 1_800))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.5)
            .grace_fraction(0.9)
            .hardware(if i % 3 == 0 {
                HardwareComponent::Wps.into()
            } else {
                HardwareComponent::Wifi.into()
            })
            .build()
            .expect("valid alarm");
        alarm.mark_hardware_known();
        manager.register(alarm).expect("registers");
    }
    manager
}

fn candidate() -> Alarm {
    let mut alarm = Alarm::builder("candidate")
        .nominal(SimTime::from_secs(900))
        .repeating_static(SimDuration::from_secs(600))
        .window_fraction(0.5)
        .grace_fraction(0.9)
        .hardware(HardwareComponent::Wifi.into())
        .build()
        .expect("valid alarm");
    alarm.mark_hardware_known();
    alarm
}

fn bench_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_place");
    for n in [8usize, 64, 256] {
        for (name, policy) in [
            ("native", Box::new(NativePolicy::new()) as Box<dyn AlignmentPolicy>),
            ("simty", Box::new(SimtyPolicy::new())),
            ("dursim", Box::new(DurationSimilarityPolicy::new())),
        ] {
            let manager = preloaded_manager(policy, n);
            let queue = manager.wakeup_queue();
            let alarm = candidate();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| manager.policy().place(std::hint::black_box(queue), &alarm));
            });
        }
    }
    group.finish();
}

fn boxed_native() -> Box<dyn AlignmentPolicy> {
    Box::new(NativePolicy::new())
}

fn boxed_simty() -> Box<dyn AlignmentPolicy> {
    Box::new(SimtyPolicy::new())
}

fn bench_register(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_register");
    type PolicyCtor = fn() -> Box<dyn AlignmentPolicy>;
    let policies: [(&str, PolicyCtor); 2] =
        [("native", boxed_native), ("simty", boxed_simty)];
    for (name, make) in policies {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (preloaded_manager(make(), 128), candidate()),
                |(mut manager, alarm)| manager.register(alarm).expect("registers"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_place, bench_register);
criterion_main!(benches);
