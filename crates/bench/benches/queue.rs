//! Criterion micro-benchmarks of the two hot paths every registration
//! exercises: `AlarmQueue::insert_entry` (binary-search insert into the
//! delivery-ordered queue) and the SIMTY search/selection scan
//! (`SimtyPolicy::place`), at queue depths 10 / 100 / 1 000 / 10 000.
//!
//! `insert_entry` should scale sublinearly in the queue depth (the
//! `partition_point` search is O(log n); the `Vec` shift dominates only
//! at the deepest sizes), and `place` should stay flat for candidates
//! whose window closes early thanks to the delivery-time early-exit.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use simty::core::entry::{DeliveryDiscipline, QueueEntry};
use simty::core::queue::AlarmQueue;
use simty::prelude::*;
use simty::sim::event::{oracle::HeapEventQueue, EventKind, EventQueue};

const DEPTHS: [usize; 4] = [10, 100, 1_000, 10_000];

/// A spread-out background alarm; nominal times stride so the queue
/// spans many non-overlapping windows.
fn bg_alarm(i: usize) -> Alarm {
    let mut alarm = Alarm::builder(format!("bg{i}"))
        .nominal(SimTime::from_secs(60 + i as u64 * 30))
        .repeating_static(SimDuration::from_secs(600_000))
        // Narrow explicit intervals: neighbouring entries don't overlap,
        // so a candidate's window only ever reaches a few entries.
        .window(SimDuration::from_secs(20))
        .grace(SimDuration::from_secs(40))
        .hardware(if i.is_multiple_of(3) {
            HardwareComponent::Wps.into()
        } else {
            HardwareComponent::Wifi.into()
        })
        .build()
        .expect("valid alarm");
    alarm.mark_hardware_known();
    alarm
}

fn preloaded_queue(n: usize) -> AlarmQueue {
    let mut queue = AlarmQueue::new();
    for i in 0..n {
        queue.insert_entry(QueueEntry::new(
            bg_alarm(i),
            DeliveryDiscipline::PerceptibilityAware,
        ));
    }
    queue
}

/// A candidate delivering at the given fraction of the preloaded span —
/// `0.5` lands mid-queue, `1.0` past the tail.
fn candidate_at(n: usize, fraction: f64) -> Alarm {
    let pos = ((n as f64) * fraction) as u64;
    let mut alarm = Alarm::builder("candidate")
        .nominal(SimTime::from_secs(60 + pos * 30 + 5))
        .repeating_static(SimDuration::from_secs(600_000))
        .window(SimDuration::from_secs(20))
        .grace(SimDuration::from_secs(40))
        .hardware(HardwareComponent::Wifi.into())
        .build()
        .expect("valid alarm");
    alarm.mark_hardware_known();
    alarm
}

/// The `tail` case isolates the `partition_point` search (the insert
/// position is the back, so no elements shift): it should stay near-flat
/// as the depth grows 1 000×. The `mid` case adds the `Vec` shift, which
/// is linear in the elements behind the insert position.
fn bench_insert_entry(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_insert_entry");
    group.sample_size(10);
    for n in DEPTHS {
        let queue = preloaded_queue(n);
        for (position, fraction) in [("tail", 1.0), ("mid", 0.5)] {
            group.bench_with_input(BenchmarkId::new(position, n), &n, |b, &n| {
                b.iter_batched(
                    || {
                        let mut queue = queue.clone();
                        // A clone's capacity equals its length; reserve so
                        // the timed insert can't hide a realloc-and-copy.
                        queue.reserve(1);
                        (
                            queue,
                            QueueEntry::new(
                                candidate_at(n, fraction),
                                DeliveryDiscipline::PerceptibilityAware,
                            ),
                        )
                    },
                    |(mut queue, entry)| {
                        queue.insert_entry(entry);
                        queue // dropping the deep queue stays off the clock
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

/// The `head` case's candidate window closes near the front of the
/// delivery-ordered queue, so the cutoff early-exit stops the scan after
/// a handful of entries — near-flat in depth. The `mid` case scans half
/// the queue before hitting the cutoff (the entries before a candidate's
/// window can never be skipped, only the ones past it).
fn bench_simty_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("simty_place");
    group.sample_size(10);
    let policy = SimtyPolicy::new();
    for n in DEPTHS {
        let queue = preloaded_queue(n);
        for (position, fraction) in [("head", 0.0), ("mid", 0.5)] {
            let alarm = candidate_at(n, fraction);
            group.bench_with_input(BenchmarkId::new(position, n), &n, |b, _| {
                b.iter(|| policy.place(std::hint::black_box(&queue), &alarm));
            });
        }
    }
    group.finish();
}

/// Deterministic pseudo-random spread of event times across ~18 hours,
/// hitting several wheel levels (sub-second to multi-hour gaps).
fn spread_times(n: usize) -> Vec<SimTime> {
    let mut x: u64 = 0x9e3779b97f4a7c15;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            SimTime::from_millis(1 + (x >> 38)) // 0..~67e6 ms
        })
        .collect()
}

/// Benchmarks one event-queue implementation in *steady state*: the
/// queue is constructed once and kept warm across iterations, the way
/// the engine holds one queue for a whole run, so the wheel's slab and
/// free-list reuse (and the heap's retained capacity) are what's
/// measured — not construction. `insert` times scheduling `n`
/// spread-out events (the drain back to empty stays off the clock),
/// `pop` times the drain (the refill stays off the clock), and
/// `push_storm` times a full schedule+drain cycle of `n` events at the
/// *same* instant — the same-instant batch the engine's delivery loop
/// feeds on, where the wheel must preserve FIFO `seq` order.
macro_rules! bench_event_queue {
    ($group:expr, $name:literal, $queue:ty, $n:expr, $times:expr) => {{
        $group.bench_with_input(BenchmarkId::new(concat!($name, "_insert"), $n), &$n, |b, _| {
            b.iter_custom(|iters| {
                let mut q = <$queue>::new();
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let start = std::time::Instant::now();
                    for &t in $times {
                        q.schedule(t, EventKind::RtcAlarm);
                    }
                    total += start.elapsed();
                    while q.pop().is_some() {}
                }
                total
            });
        });
        $group.bench_with_input(BenchmarkId::new(concat!($name, "_pop"), $n), &$n, |b, _| {
            b.iter_custom(|iters| {
                let mut q = <$queue>::new();
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    for &t in $times {
                        q.schedule(t, EventKind::RtcAlarm);
                    }
                    let start = std::time::Instant::now();
                    while let Some(e) = q.pop() {
                        std::hint::black_box(e.seq);
                    }
                    total += start.elapsed();
                }
                total
            });
        });
        $group.bench_with_input(BenchmarkId::new(concat!($name, "_push_storm"), $n), &$n, |b, _| {
            b.iter_custom(|iters| {
                let mut q = <$queue>::new();
                let t = SimTime::from_secs(1);
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let start = std::time::Instant::now();
                    for _ in 0..$n {
                        q.schedule(t, EventKind::RtcAlarm);
                    }
                    while let Some(e) = q.pop() {
                        std::hint::black_box(e.seq);
                    }
                    total += start.elapsed();
                }
                total
            });
        });
    }};
}

/// Head-to-head of the engine's hierarchical timer wheel
/// ([`EventQueue`]) against the retired `BinaryHeap` implementation
/// (kept as [`oracle::HeapEventQueue`] for differential testing). The
/// wheel's wins should be largest on `push_storm` (same-instant FIFO is
/// an O(1) append/drain for the wheel, a heap sift per event for the
/// oracle) and on `pop` at depth (no log-n sift-down per pop).
fn bench_event_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for n in DEPTHS {
        let times = spread_times(n);
        bench_event_queue!(group, "wheel", EventQueue, n, &times);
        bench_event_queue!(group, "heap", HeapEventQueue, n, &times);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_entry,
    bench_simty_place,
    bench_event_queues
);
criterion_main!(benches);
