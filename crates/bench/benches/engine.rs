//! Criterion benchmarks of the end-to-end simulation engine: how fast a
//! full paper-scale experiment replays. This bounds the cost of the
//! sweeps in the `ablation` binary and of the property-based test suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simty::prelude::*;

fn run_scenario(policy: Box<dyn AlignmentPolicy>, minutes: u64) -> SimReport {
    let workload = WorkloadBuilder::heavy().with_seed(1).build();
    let config = SimConfig::new().with_duration(SimDuration::from_mins(minutes));
    let mut sim = Simulation::new(policy, config);
    for alarm in workload.alarms {
        sim.register(alarm).expect("registers");
    }
    sim.run()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_heavy_workload");
    group.sample_size(10);
    for minutes in [30u64, 180] {
        group.bench_with_input(
            BenchmarkId::new("native", minutes),
            &minutes,
            |b, &m| b.iter(|| run_scenario(Box::new(NativePolicy::new()), m)),
        );
        group.bench_with_input(
            BenchmarkId::new("simty", minutes),
            &minutes,
            |b, &m| b.iter(|| run_scenario(Box::new(SimtyPolicy::new()), m)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
