//! `bench diff`: a schema-aware regression differ over committed
//! campaign documents.
//!
//! Compares two campaign JSON documents of the same kind (any of the
//! six committed schemas — sweep, chaos, soak, storm, fleet, serve) and
//! reports *regressions*, classified by how each field is allowed to
//! move:
//!
//! * **wall-clock metrics** (`*_wall_ms`, stage `ns`, `cell_wall_ms`
//!   quantiles) may drift run-to-run; they fail only past a
//!   configurable ratio ([`DiffThresholds::max_wall_ratio`]) and only
//!   above a noise floor;
//! * **throughput metrics** (`runs_per_sec`, `devices_per_sec`) fail
//!   when they *shrink* past the same ratio;
//! * **harness counters** (`poisoned`, `panics`, `timeouts`,
//!   `retries`) and histogram `nonfinite` quarantine counts fail on any
//!   increase;
//! * **deterministic payload** (reports, aggregates, statuses, labels,
//!   quantile estimates over sim-clock histograms) must agree within
//!   [`DiffThresholds::max_delta_pct`] percent (strings and shapes
//!   exactly) — a mismatch is either a real behavior change or schema
//!   drift, and both should stop CI;
//! * **per-invocation bookkeeping** (`journal_skips`, `threads`) is
//!   ignored;
//! * **service traffic tallies** (the `load` and `server` sections of a
//!   `simty-serve/v1` document) vary run to run and are mostly free,
//!   except: `invariant_violations` and `telemetry_dropped` fail on any
//!   increase, and the overload counters `shed`/`rejected`/`deferred`
//!   fail when a committed nonzero value collapses to zero — the drill
//!   stopped exercising backpressure, which is itself a regression. The
//!   `latency_ms` quantiles gate on the wall-clock ratio.
//!
//! The module carries its own ~150-line recursive-descent JSON reader
//! so the bench crate stays dependency-free.

use std::fmt;

/// A parsed JSON value. Object member order is preserved (the campaign
/// documents are deterministic, so order is meaningful for diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (f64 precision suffices for the documents' values).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the failure.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Campaign documents never emit surrogate
                            // pairs; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{', "expected `{`")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// The configurable gates of a diff.
#[derive(Debug, Clone, Copy)]
pub struct DiffThresholds {
    /// Wall-clock metrics fail when they grow (or throughput shrinks)
    /// past this ratio. Default 5.0 — loose enough for CI-runner noise,
    /// tight enough to catch a real perf cliff.
    pub max_wall_ratio: f64,
    /// Deterministic numbers fail past this relative difference, in
    /// percent. Default 0.5 — campaign payloads are deterministic, so
    /// this mostly absorbs shortest-round-trip float formatting.
    pub max_delta_pct: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            max_wall_ratio: 5.0,
            max_delta_pct: 0.5,
        }
    }
}

/// One gate failure.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Dotted path of the offending field (e.g. `stages.event_dispatch.ns`).
    pub path: String,
    /// What moved and by how much.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// The outcome of a document diff.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The shared schema tag of the two documents.
    pub schema: String,
    /// Fields compared.
    pub checks: u64,
    /// Gate failures, in document order.
    pub regressions: Vec<Regression>,
}

impl DiffReport {
    /// Whether any gate failed.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// The six campaign schemas `bench diff` understands.
pub const KNOWN_SCHEMAS: [&str; 6] = [
    "simty-bench-sweep/v1",
    "simty-bench-chaos/v1",
    "simty-bench-soak/v1",
    "simty-bench-storm/v1",
    "simty-fleet/v1",
    "simty-serve/v1",
];

/// Diffs two campaign documents of the same schema.
///
/// # Errors
///
/// A parse failure, a missing/unknown `schema` field, or a schema
/// mismatch between the two documents (that last one is drift, not a
/// measurable regression, so it is an error rather than a report).
pub fn diff_documents(
    old: &str,
    new: &str,
    thresholds: &DiffThresholds,
) -> Result<DiffReport, String> {
    let old = JsonValue::parse(old).map_err(|e| format!("OLD document: {e}"))?;
    let new = JsonValue::parse(new).map_err(|e| format!("NEW document: {e}"))?;
    let schema_of = |doc: &JsonValue, which: &str| -> Result<String, String> {
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{which} document carries no `schema` field"))?;
        if !KNOWN_SCHEMAS.contains(&schema) {
            return Err(format!("{which} document has unknown schema `{schema}`"));
        }
        Ok(schema.to_owned())
    };
    let old_schema = schema_of(&old, "OLD")?;
    let new_schema = schema_of(&new, "NEW")?;
    if old_schema != new_schema {
        return Err(format!(
            "schema drift: OLD is `{old_schema}`, NEW is `{new_schema}`"
        ));
    }
    let mut diff = Differ {
        thresholds: *thresholds,
        checks: 0,
        regressions: Vec::new(),
    };
    diff.walk(&old, &new, &mut Vec::new(), Context::Deterministic);
    Ok(DiffReport {
        schema: old_schema,
        checks: diff.checks,
        regressions: diff.regressions,
    })
}

/// How the current subtree's numbers are allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Context {
    /// Byte-deterministic payload: tight relative tolerance.
    Deterministic,
    /// Wall-clock subtree (`stages`, `cell_wall_ms`, `latency_ms`):
    /// ratio gate, bigger is worse.
    Wall,
    /// Supervisor counters: increases are failures.
    Harness,
    /// Service traffic tallies (`load`/`server` in a serve document):
    /// free-moving except the keys called out by name in
    /// [`Differ::number`].
    Service,
}

/// Noise floor for wall-clock ratio checks: ignore blips where both
/// sides are under 10 ms (or, for `ns` fields, 10 ms in nanoseconds).
const WALL_FLOOR_MS: f64 = 10.0;
const WALL_FLOOR_NS: f64 = 10.0 * 1e6;

struct Differ {
    thresholds: DiffThresholds,
    checks: u64,
    regressions: Vec<Regression>,
}

impl Differ {
    fn fail(&mut self, path: &[String], detail: String) {
        self.regressions.push(Regression {
            path: if path.is_empty() {
                "<root>".to_owned()
            } else {
                path.join(".")
            },
            detail,
        });
    }

    fn walk(&mut self, old: &JsonValue, new: &JsonValue, path: &mut Vec<String>, ctx: Context) {
        match (old, new) {
            (JsonValue::Obj(old_members), JsonValue::Obj(new_members)) => {
                let old_keys: Vec<&str> = old_members.iter().map(|(k, _)| k.as_str()).collect();
                let new_keys: Vec<&str> = new_members.iter().map(|(k, _)| k.as_str()).collect();
                if old_keys != new_keys {
                    let missing: Vec<&&str> =
                        old_keys.iter().filter(|k| !new_keys.contains(k)).collect();
                    let added: Vec<&&str> =
                        new_keys.iter().filter(|k| !old_keys.contains(k)).collect();
                    self.fail(
                        path,
                        format!("schema drift: keys removed {missing:?}, added {added:?}"),
                    );
                    return;
                }
                for (key, old_value) in old_members {
                    let new_value = new.get(key).expect("key sets verified equal");
                    if matches!(key.as_str(), "journal_skips" | "threads" | "resume_wall_ms") {
                        continue; // per-invocation bookkeeping
                    }
                    let child_ctx = match key.as_str() {
                        "stages" | "cell_wall_ms" | "latency_ms" => Context::Wall,
                        "harness" => Context::Harness,
                        "load" | "server" => Context::Service,
                        _ => ctx,
                    };
                    path.push(key.clone());
                    self.member(key, old_value, new_value, path, child_ctx);
                    path.pop();
                }
            }
            (JsonValue::Arr(old_items), JsonValue::Arr(new_items)) => {
                if old_items.len() != new_items.len() {
                    self.fail(
                        path,
                        format!(
                            "schema drift: array length {} -> {}",
                            old_items.len(),
                            new_items.len()
                        ),
                    );
                    return;
                }
                for (i, (o, n)) in old_items.iter().zip(new_items).enumerate() {
                    path.push(i.to_string());
                    self.walk(o, n, path, ctx);
                    path.pop();
                }
            }
            (JsonValue::Num(o), JsonValue::Num(n)) => {
                self.checks += 1;
                let key = path.last().map(String::as_str).unwrap_or("");
                self.number(key, *o, *n, path, ctx);
            }
            (JsonValue::Str(o), JsonValue::Str(n)) => {
                self.checks += 1;
                if o != n {
                    self.fail(path, format!("`{o}` -> `{n}`"));
                }
            }
            (JsonValue::Bool(o), JsonValue::Bool(n)) => {
                self.checks += 1;
                if o != n {
                    self.fail(path, format!("{o} -> {n}"));
                }
            }
            (JsonValue::Null, JsonValue::Null) => {}
            _ => {
                self.fail(
                    path,
                    format!("schema drift: {} -> {}", old.kind(), new.kind()),
                );
            }
        }
    }

    /// Dispatches one object member, handling the keys whose *name*
    /// picks the rule regardless of surrounding context.
    fn member(
        &mut self,
        key: &str,
        old: &JsonValue,
        new: &JsonValue,
        path: &mut Vec<String>,
        ctx: Context,
    ) {
        match (old, new) {
            (JsonValue::Num(o), JsonValue::Num(n)) => {
                self.checks += 1;
                self.number(key, *o, *n, path, ctx);
            }
            _ => self.walk(old, new, path, ctx),
        }
    }

    fn number(&mut self, key: &str, old: f64, new: f64, path: &[String], ctx: Context) {
        let ratio = self.thresholds.max_wall_ratio;
        match key {
            // Throughput: shrinking past the ratio is the regression.
            "runs_per_sec" | "devices_per_sec" | "rps" => {
                if new.is_finite() && old.is_finite() && old > 0.0 && new < old / ratio {
                    self.fail(
                        path,
                        format!("throughput fell more than {ratio}x: {old:.2} -> {new:.2}"),
                    );
                }
            }
            // Wall-clock durations anywhere in the header.
            "total_wall_ms" | "sequential_wall_ms" | "wall_ms" | "drain_ms" => {
                self.wall_ratio(old, new, WALL_FLOOR_MS, path);
            }
            // Service health counters: any increase is a failure.
            "invariant_violations" | "telemetry_dropped" if ctx == Context::Service => {
                if new > old {
                    self.fail(path, format!("counter increased: {old} -> {new}"));
                }
            }
            // Overload drill counters: the drill must keep exercising
            // backpressure, so a committed nonzero value may not
            // collapse to zero.
            "shed" | "rejected" | "deferred" if ctx == Context::Service => {
                if old > 0.0 && new == 0.0 {
                    self.fail(
                        path,
                        format!("overload counter collapsed to zero: {old} -> {new}"),
                    );
                }
            }
            // Harness-and-quarantine counters: monotone gates.
            "poisoned" | "panics" | "timeouts" | "retries" | "retried" | "nonfinite" => {
                if new > old {
                    self.fail(path, format!("counter increased: {old} -> {new}"));
                }
            }
            "ns" if ctx == Context::Wall => {
                self.wall_ratio(old, new, WALL_FLOOR_NS, path);
            }
            _ => match ctx {
                Context::Wall => self.wall_ratio(old, new, WALL_FLOOR_MS, path),
                // Traffic tallies vary run to run; only the keys named
                // above are gated.
                Context::Service => {}
                Context::Harness | Context::Deterministic => {
                    let tolerance = self.thresholds.max_delta_pct / 100.0;
                    let scale = old.abs().max(new.abs());
                    if scale > 0.0 && (new - old).abs() / scale > tolerance {
                        self.fail(
                            path,
                            format!(
                                "deterministic value moved more than {}%: {old} -> {new}",
                                self.thresholds.max_delta_pct
                            ),
                        );
                    }
                }
            },
        }
    }

    fn wall_ratio(&mut self, old: f64, new: f64, floor: f64, path: &[String]) {
        if !old.is_finite() || !new.is_finite() {
            return;
        }
        if old.max(new) < floor {
            return; // sub-noise-floor blip
        }
        let ratio = self.thresholds.max_wall_ratio;
        if new > old.max(floor) * ratio {
            self.fail(
                path,
                format!("wall time grew more than {ratio}x: {old:.2} -> {new:.2}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_document_shapes() {
        let v = JsonValue::parse(
            "{\"a\":[1,2.5,-3e2],\"s\":\"x\\\"y\\u0041\",\"b\":true,\"n\":null,\"o\":{}}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap(), &JsonValue::Arr(vec![
            JsonValue::Num(1.0),
            JsonValue::Num(2.5),
            JsonValue::Num(-300.0),
        ]));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"yA"));
        assert_eq!(v.get("b").unwrap(), &JsonValue::Bool(true));
        assert_eq!(v.get("n").unwrap(), &JsonValue::Null);
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2] trailing").is_err());
    }

    fn doc(runs_per_sec: f64, dispatch_ns: u64, energy: f64, poisoned: u64) -> String {
        format!(
            "{{\"schema\":\"simty-bench-sweep/v1\",\"threads\":8,\"runs\":2,\
             \"total_wall_ms\":100,\"runs_per_sec\":{runs_per_sec},\"journal_skips\":0,\
             \"harness\":{{\"cells\":2,\"ok\":2,\"poisoned\":{poisoned}}},\
             \"stages\":{{\"event_dispatch\":{{\"ns\":{dispatch_ns},\"calls\":10}}}},\
             \"results\":[{{\"label\":\"a\",\"status\":\"ok\",\"report\":{{\"energy_mj\":{energy}}}}}]}}"
        )
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(400.0, 50_000_000, 1234.5, 0);
        let report = diff_documents(&d, &d, &DiffThresholds::default()).unwrap();
        assert!(!report.is_regression(), "{:?}", report.regressions);
        assert_eq!(report.schema, "simty-bench-sweep/v1");
        assert!(report.checks > 5);
    }

    #[test]
    fn wall_noise_within_ratio_passes() {
        let old = doc(400.0, 50_000_000, 1234.5, 0);
        let new = doc(150.0, 120_000_000, 1234.5, 0);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(!report.is_regression(), "{:?}", report.regressions);
    }

    #[test]
    fn throughput_cliff_fails() {
        let old = doc(400.0, 50_000_000, 1234.5, 0);
        let new = doc(40.0, 50_000_000, 1234.5, 0);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].path.contains("runs_per_sec"));
    }

    #[test]
    fn stage_time_blowup_fails() {
        let old = doc(400.0, 50_000_000, 1234.5, 0);
        let new = doc(400.0, 500_000_000, 1234.5, 0);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].path.ends_with("event_dispatch.ns"));
    }

    #[test]
    fn deterministic_drift_fails() {
        let old = doc(400.0, 50_000_000, 1234.5, 0);
        let new = doc(400.0, 50_000_000, 1300.0, 0);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].path.ends_with("energy_mj"));
    }

    #[test]
    fn new_poisoned_cell_fails() {
        let old = doc(400.0, 50_000_000, 1234.5, 0);
        let new = doc(400.0, 50_000_000, 1234.5, 1);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].path.ends_with("harness.poisoned"));
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let sweep = doc(400.0, 50_000_000, 1234.5, 0);
        let chaos = sweep.replacen("simty-bench-sweep/v1", "simty-bench-chaos/v1", 1);
        assert!(diff_documents(&sweep, &chaos, &DiffThresholds::default())
            .unwrap_err()
            .contains("schema drift"));
        assert!(diff_documents("{}", &sweep, &DiffThresholds::default()).is_err());
    }

    fn serve_doc(rps: f64, q99: f64, shed: u64, timed_out: u64, violations: u64) -> String {
        format!(
            "{{\"schema\":\"simty-serve/v1\",\
             \"harness\":{{\"connections\":400,\"seed\":1,\"profile\":\"mixed\",\
             \"wall_ms\":900,\"rps\":{rps}}},\
             \"latency_ms\":{{\"q50\":1.2,\"q90\":3.4,\"q99\":{q99},\"max\":80.0}},\
             \"load\":{{\"sent\":1200,\"ok\":900,\"deferred\":40,\"rejected\":60,\
             \"shed\":{shed},\"timed_out\":{timed_out},\"net_errors\":7,\"client_faults\":33}},\
             \"server\":{{\"accepted\":390,\"completed\":390,\"shed\":{shed},\"drain_ms\":4,\
             \"invariant_violations\":{violations},\"telemetry_dropped\":0,\"net_faults\":12}}}}"
        )
    }

    #[test]
    fn serve_traffic_noise_passes_but_health_counters_gate() {
        let old = serve_doc(1300.0, 25.0, 18, 3, 0);
        // Tallies wobble, latency drifts under the ratio: all fine.
        let new = serve_doc(1100.0, 60.0, 9, 11, 0);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(!report.is_regression(), "{:?}", report.regressions);
        assert_eq!(report.schema, "simty-serve/v1");

        // A new invariant violation is always a regression.
        let broken = serve_doc(1300.0, 25.0, 18, 3, 1);
        let report = diff_documents(&old, &broken, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0]
            .path
            .ends_with("server.invariant_violations"));
    }

    #[test]
    fn serve_shed_collapse_and_latency_blowup_fail() {
        let old = serve_doc(1300.0, 25.0, 18, 3, 0);
        let collapsed = serve_doc(1300.0, 25.0, 0, 3, 0);
        let report = diff_documents(&old, &collapsed, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions.iter().all(|r| r.path.ends_with("shed")));

        let slow = serve_doc(1300.0, 250.0, 18, 3, 0);
        let report = diff_documents(&old, &slow, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].path.ends_with("latency_ms.q99"));

        let stalled = serve_doc(100.0, 25.0, 18, 3, 0);
        let report = diff_documents(&old, &stalled, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].detail.contains("throughput fell"));
    }

    #[test]
    fn key_drift_is_reported() {
        let old = doc(400.0, 50_000_000, 1234.5, 0);
        let new = old.replacen("\"threads\":8", "\"workers\":8", 1);
        let report = diff_documents(&old, &new, &DiffThresholds::default()).unwrap();
        assert!(report.is_regression());
        assert!(report.regressions[0].detail.contains("schema drift"));
    }
}
