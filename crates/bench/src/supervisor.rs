//! Cell supervision: panic capture, deadlines, bounded retry.
//!
//! A campaign cell is one deterministic simulation run. Before this
//! module, one panicking or hung cell aborted the entire campaign
//! (`handle.join().expect(...)` in the sweep executor). The supervisor
//! instead wraps every cell in `catch_unwind`, optionally races it
//! against a wall-clock deadline, retries panics that self-identify as
//! transient, and — when all else fails — **quarantines** the cell with
//! its failure reason recorded so the rest of the campaign continues.
//!
//! Classification is deterministic: a panic whose payload contains the
//! marker `"transient"` is retryable (up to
//! [`SupervisorConfig::max_retries`]); any other panic poisons the cell
//! immediately, and a deadline overrun always poisons (a deterministic
//! cell that hung once would hang again, so retrying is pointless).

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

use simty::obs::MetricsRegistry;

use crate::sweep::{JobResult, TaskFn};

/// The marker a panic payload must contain to be classified retryable.
pub const TRANSIENT_MARKER: &str = "transient";

/// Supervision policy for campaign cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Retry budget for panics classified transient. Zero disables
    /// retry entirely.
    pub max_retries: u32,
    /// Per-cell wall-clock deadline. `None` (the default — benches and
    /// long soaks must not race the clock) disables the watchdog; when
    /// set, each attempt runs on a watchdog thread and is abandoned if
    /// it outlives the deadline.
    pub deadline: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 1,
            deadline: None,
        }
    }
}

/// What happened to one campaign cell, as recorded in the result
/// documents and the campaign journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// First attempt succeeded.
    Ok,
    /// Succeeded after `retries` transient-panic retries.
    Retried {
        /// How many retryable panics preceded the successful attempt.
        retries: u32,
    },
    /// Quarantined: every attempt failed (or the failure was not
    /// retryable). The campaign continued without this cell.
    Poisoned {
        /// Human-readable failure reason (panic payload or deadline).
        reason: String,
        /// Retryable panics that preceded the poisoning attempt.
        retries: u32,
        /// Whether the final attempt was killed by the deadline
        /// watchdog rather than a panic.
        timed_out: bool,
    },
}

impl CellStatus {
    /// Whether the cell was quarantined.
    pub fn is_poisoned(&self) -> bool {
        matches!(self, CellStatus::Poisoned { .. })
    }

    /// The status as the documents' compact token: `ok`, `retried:<n>`,
    /// or `poisoned: <reason>`.
    #[must_use]
    pub fn token(&self) -> String {
        match self {
            CellStatus::Ok => "ok".to_owned(),
            CellStatus::Retried { retries } => format!("retried:{retries}"),
            CellStatus::Poisoned { reason, .. } => format!("poisoned: {reason}"),
        }
    }

    /// Parses the journalable tokens (`ok`, `retried:<n>`). Poisoned
    /// cells are never journaled — they are re-run on resume — so
    /// `poisoned:` tokens (and anything else) return `None`.
    #[must_use]
    pub fn from_token(token: &str) -> Option<CellStatus> {
        if token == "ok" {
            return Some(CellStatus::Ok);
        }
        let retries = token.strip_prefix("retried:")?.parse().ok()?;
        Some(CellStatus::Retried { retries })
    }
}

/// Aggregated supervisor accounting over one campaign.
///
/// Everything except `journal_skips` is derived purely from the
/// per-cell statuses, so the counts are identical whether a cell was
/// executed or restored from the campaign journal — which keeps the
/// `"harness"` block of a resumed document byte-identical to an
/// uninterrupted run. `journal_skips` (cells restored rather than run)
/// is inherently per-invocation and therefore lives *outside* the
/// deterministic document body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Total cells in the campaign.
    pub cells: u64,
    /// Cells that succeeded on the first attempt.
    pub ok: u64,
    /// Cells that succeeded after at least one retry.
    pub retried_cells: u64,
    /// Total transient-panic retries across all cells.
    pub retries: u64,
    /// Total panics observed (retried + poisoning).
    pub panics: u64,
    /// Cells killed by the deadline watchdog.
    pub timeouts: u64,
    /// Cells quarantined.
    pub poisoned: u64,
    /// Cells restored from the campaign journal instead of executed
    /// (this invocation only; not part of the deterministic document).
    pub journal_skips: u64,
}

impl HarnessStats {
    /// Derives the deterministic counters from per-cell statuses
    /// (`journal_skips` stays zero; the executor fills it in).
    pub fn from_statuses<'a, I: IntoIterator<Item = &'a CellStatus>>(statuses: I) -> Self {
        let mut stats = HarnessStats::default();
        for status in statuses {
            stats.cells += 1;
            match status {
                CellStatus::Ok => stats.ok += 1,
                CellStatus::Retried { retries } => {
                    stats.retried_cells += 1;
                    stats.retries += u64::from(*retries);
                    stats.panics += u64::from(*retries);
                }
                CellStatus::Poisoned {
                    retries, timed_out, ..
                } => {
                    stats.poisoned += 1;
                    stats.retries += u64::from(*retries);
                    stats.panics += u64::from(*retries);
                    if *timed_out {
                        stats.timeouts += 1;
                    } else {
                        stats.panics += 1;
                    }
                }
            }
        }
        stats
    }

    /// The deterministic `"harness"` JSON block shared by all four
    /// campaign documents. Excludes `journal_skips` (see the type docs).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cells\":{},\"ok\":{},\"retried\":{},\"retries\":{},\"panics\":{},\"timeouts\":{},\"poisoned\":{}}}",
            self.cells, self.ok, self.retried_cells, self.retries, self.panics, self.timeouts,
            self.poisoned
        )
    }

    /// Publishes every counter (including `journal_skips`) into a
    /// metrics registry under `harness.*` names.
    pub fn publish(&self, registry: &mut MetricsRegistry) {
        registry.add("harness.cells", self.cells);
        registry.add("harness.ok", self.ok);
        registry.add("harness.retried_cells", self.retried_cells);
        registry.add("harness.retries", self.retries);
        registry.add("harness.panics", self.panics);
        registry.add("harness.timeouts", self.timeouts);
        registry.add("harness.poisoned", self.poisoned);
        registry.add("harness.journal_skips", self.journal_skips);
    }
}

enum Attempt {
    Done(Box<JobResult>),
    Panicked(String),
    TimedOut(Duration),
}

fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn run_attempt(deadline: Option<Duration>, task: TaskFn) -> Attempt {
    match deadline {
        None => match panic::catch_unwind(AssertUnwindSafe(|| task())) {
            Ok(result) => Attempt::Done(Box::new(result)),
            Err(payload) => Attempt::Panicked(describe_panic(payload)),
        },
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            // Detached, not scoped: if the cell hangs, the watchdog
            // abandons it — a scoped spawn would block scope exit on
            // the hung thread forever.
            std::thread::spawn(move || {
                let attempt = match panic::catch_unwind(AssertUnwindSafe(|| task())) {
                    Ok(result) => Attempt::Done(Box::new(result)),
                    Err(payload) => Attempt::Panicked(describe_panic(payload)),
                };
                let _ = tx.send(attempt);
            });
            match rx.recv_timeout(limit) {
                Ok(attempt) => attempt,
                Err(_) => Attempt::TimedOut(limit),
            }
        }
    }
}

/// Runs one cell under supervision: catch panics, enforce the optional
/// deadline, retry transient panics, and classify the outcome. Returns
/// the result (if any attempt succeeded) and the cell's final status.
pub fn supervise(config: &SupervisorConfig, task: TaskFn) -> (Option<JobResult>, CellStatus) {
    let mut retries = 0u32;
    loop {
        match run_attempt(config.deadline, task.clone()) {
            Attempt::Done(result) => {
                let status = if retries == 0 {
                    CellStatus::Ok
                } else {
                    CellStatus::Retried { retries }
                };
                return (Some(*result), status);
            }
            Attempt::Panicked(reason) => {
                if reason.contains(TRANSIENT_MARKER) && retries < config.max_retries {
                    retries += 1;
                    continue;
                }
                return (
                    None,
                    CellStatus::Poisoned {
                        reason: format!("panic: {reason}"),
                        retries,
                        timed_out: false,
                    },
                );
            }
            Attempt::TimedOut(limit) => {
                return (
                    None,
                    CellStatus::Poisoned {
                        reason: format!("cell exceeded the {}ms deadline", limit.as_millis()),
                        retries,
                        timed_out: true,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    use simty::core::SimDuration;
    use simty::experiments::{PolicyKind, RunSpec, Scenario};

    fn quick_result() -> JobResult {
        RunSpec::paper(PolicyKind::Native, Scenario::Light, 1)
            .with_duration(SimDuration::from_mins(1))
            .run()
            .into()
    }

    #[test]
    fn clean_cell_is_ok() {
        let (result, status) = supervise(
            &SupervisorConfig::default(),
            Arc::new(quick_result),
        );
        assert!(result.is_some());
        assert_eq!(status, CellStatus::Ok);
    }

    #[test]
    fn non_transient_panic_poisons_without_retry() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = attempts.clone();
        let (result, status) = supervise(
            &SupervisorConfig::default(),
            Arc::new(move || {
                seen.fetch_add(1, Ordering::SeqCst);
                panic!("hard failure");
            }),
        );
        assert!(result.is_none());
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
        match status {
            CellStatus::Poisoned {
                reason,
                retries,
                timed_out,
            } => {
                assert_eq!(reason, "panic: hard failure");
                assert_eq!(retries, 0);
                assert!(!timed_out);
            }
            other => panic!("expected poisoned, got {other:?}"),
        }
    }

    #[test]
    fn transient_panic_is_retried_then_succeeds() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = attempts.clone();
        let (result, status) = supervise(
            &SupervisorConfig {
                max_retries: 3,
                deadline: None,
            },
            Arc::new(move || {
                if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient flake");
                }
                quick_result()
            }),
        );
        assert!(result.is_some());
        assert_eq!(status, CellStatus::Retried { retries: 2 });
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn transient_panic_beyond_budget_poisons() {
        let (result, status) = supervise(
            &SupervisorConfig {
                max_retries: 2,
                deadline: None,
            },
            Arc::new(|| panic!("transient forever")),
        );
        assert!(result.is_none());
        assert_eq!(
            status,
            CellStatus::Poisoned {
                reason: "panic: transient forever".to_owned(),
                retries: 2,
                timed_out: false,
            }
        );
    }

    #[test]
    fn deadline_overrun_poisons_immediately() {
        let (result, status) = supervise(
            &SupervisorConfig {
                max_retries: 3,
                deadline: Some(Duration::from_millis(30)),
            },
            Arc::new(|| {
                std::thread::sleep(Duration::from_secs(30));
                quick_result()
            }),
        );
        assert!(result.is_none());
        match status {
            CellStatus::Poisoned {
                reason,
                retries,
                timed_out,
            } => {
                assert!(reason.contains("deadline"), "{reason}");
                assert_eq!(retries, 0, "timeouts must not be retried");
                assert!(timed_out);
            }
            other => panic!("expected poisoned, got {other:?}"),
        }
    }

    #[test]
    fn deadline_passes_fast_cells_through() {
        let (result, status) = supervise(
            &SupervisorConfig {
                max_retries: 1,
                deadline: Some(Duration::from_secs(120)),
            },
            Arc::new(quick_result),
        );
        assert!(result.is_some());
        assert_eq!(status, CellStatus::Ok);
    }

    #[test]
    fn status_tokens_round_trip_the_journalable_states() {
        assert_eq!(CellStatus::Ok.token(), "ok");
        assert_eq!(CellStatus::Retried { retries: 2 }.token(), "retried:2");
        assert_eq!(CellStatus::from_token("ok"), Some(CellStatus::Ok));
        assert_eq!(
            CellStatus::from_token("retried:2"),
            Some(CellStatus::Retried { retries: 2 })
        );
        assert_eq!(CellStatus::from_token("poisoned: x"), None);
        assert_eq!(CellStatus::from_token("retried:x"), None);
        assert_eq!(CellStatus::from_token(""), None);
        let poisoned = CellStatus::Poisoned {
            reason: "panic: boom".to_owned(),
            retries: 1,
            timed_out: false,
        };
        assert_eq!(poisoned.token(), "poisoned: panic: boom");
        assert!(poisoned.is_poisoned());
    }

    #[test]
    fn harness_stats_derive_from_statuses() {
        let statuses = [
            CellStatus::Ok,
            CellStatus::Ok,
            CellStatus::Retried { retries: 2 },
            CellStatus::Poisoned {
                reason: "panic: x".to_owned(),
                retries: 1,
                timed_out: false,
            },
            CellStatus::Poisoned {
                reason: "deadline".to_owned(),
                retries: 0,
                timed_out: true,
            },
        ];
        let stats = HarnessStats::from_statuses(&statuses);
        assert_eq!(
            stats,
            HarnessStats {
                cells: 5,
                ok: 2,
                retried_cells: 1,
                retries: 3,
                panics: 4, // 2 retried + 1 pre-poison retry + 1 poisoning panic
                timeouts: 1,
                poisoned: 2,
                journal_skips: 0,
            }
        );
        let json = stats.to_json();
        assert_eq!(
            json,
            "{\"cells\":5,\"ok\":2,\"retried\":1,\"retries\":3,\"panics\":4,\"timeouts\":1,\"poisoned\":2}"
        );
        assert!(!json.contains("journal_skips"), "nondeterministic counter leaked");
        let mut registry = MetricsRegistry::new();
        stats.publish(&mut registry);
        assert_eq!(registry.counter("harness.cells"), 5);
        assert_eq!(registry.counter("harness.poisoned"), 2);
        assert_eq!(registry.counter("harness.journal_skips"), 0);
    }
}
