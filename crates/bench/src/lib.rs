//! # simty-bench — experiment harness
//!
//! Binaries regenerating every table and figure of the paper's
//! evaluation, plus criterion micro-benchmarks of the alignment policies
//! and the simulation engine:
//!
//! * `cargo run --release -p simty-bench --bin fig2` — the motivating
//!   example energies (Fig. 2);
//! * `... --bin fig3` — energy under NATIVE vs SIMTY (Fig. 3);
//! * `... --bin fig4` — normalized delivery delay (Fig. 4);
//! * `... --bin table4` — the wakeup breakdown (Table 4);
//! * `... --bin ablation` — β sweep, hardware-similarity granularity,
//!   the DURSIM extension, and NATIVE realignment on/off;
//! * `cargo bench -p simty-bench` — policy/engine micro-benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod diff;
pub mod fleet;
pub mod journal;
pub mod soak;
pub mod storm;
pub mod supervisor;
pub mod sweep;

pub use chaos::{
    chaos_matrix, run_chaos, run_chaos_with, ChaosResults, ChaosSpec, FaultProfile,
    PolicyResilience,
};
pub use fleet::{
    run_fleet, run_fleet_with, FleetConfig, FleetResults, PolicyAggregate, ShardSpec, FLEET_SCHEMA,
};
pub use diff::{diff_documents, DiffReport, DiffThresholds, JsonValue, Regression};
pub use journal::{CampaignJournal, JournalEntry, JournalError};
pub use supervisor::{CellStatus, HarnessStats, SupervisorConfig};
pub use soak::{
    run_soak, run_soak_with, soak_matrix, PolicyEndurance, SoakProfile, SoakRecovery, SoakResults,
    SoakSpec,
};
pub use storm::{
    run_storm, run_storm_with, storm_matrix, PolicyOverload, StormProfile, StormRecovery,
    StormResults, StormSpec,
};
pub use simty::experiments::{
    motivating_example, motivating_example_report, paper_runs, paper_specs, Averages, PolicyKind,
    RunSpec, Scenario,
};
pub use sweep::{CampaignOptions, JobResult, Outcome, RunHandle, Sweep, SweepResults};

/// Renders one "paper vs measured" line for the experiment binaries.
pub fn paper_vs_measured(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    format!("{label:<42} paper {paper:>10.1} {unit:<4} measured {measured:>10.1} {unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_comparison_lines() {
        let s = paper_vs_measured("CPU wakeups (light)", 733.0, 700.0, "");
        assert!(s.contains("733"));
        assert!(s.contains("700"));
    }
}
