//! Chaos campaign: fault-matrix resilience sweeps.
//!
//! The paper's guarantee — perceptible alarms never slip past their
//! windows — is easy to keep on a healthy device. This module asks the
//! harder question the paper's §1 motivates with no-sleep bugs: does the
//! guarantee survive a *hostile* device? A chaos campaign runs a grid of
//! policy × scenario × [fault profile](FaultProfile) × seed cells, each a
//! full simulation with deterministic fault injection ([`FaultPlan`]),
//! the online watchdog ([`OnlineWatchdogConfig`]), and the runtime
//! invariant monitor armed in report mode. The campaign fans out
//! on the [`Sweep`] executor, so results are byte-identical
//! regardless of thread count, and serializes to the
//! `simty-bench-chaos/v1` document (`BENCH_chaos.json`).

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use simty::core::{SimDuration, SimTime};
use simty::experiments::{PolicyKind, Scenario};
use simty::obs::QuantileSummary;
use simty::sim::json::{json_number, json_string, report_to_json};
use simty::sim::{FaultPlan, OnlineWatchdogConfig, SimConfig, SimReport, Simulation};

use crate::journal::JournalError;
use crate::supervisor::{CellStatus, HarnessStats};
use crate::sweep::{CampaignOptions, Sweep};

/// A named bundle of fault-injection knobs: one adversary per campaign
/// cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults: the control cell (its resilience stats must be quiet).
    Baseline,
    /// RTC fires land up to 2 s late.
    Jitter,
    /// 5% of RTC fires are lost; the supervisory re-arm retries after 1 s.
    Drops,
    /// 2% of tasks overrun their declared duration by 5 minutes — the
    /// synthetic no-sleep bug the online watchdog exists for.
    Overruns,
    /// 2% of tasks leak their hardware wakelocks for 3 minutes.
    Leaks,
    /// 5% of hardware activations fail transiently and are retried with
    /// capped exponential backoff.
    Flaky,
    /// One app crashes at 40% of the run and restarts 2 minutes later.
    Crashes,
    /// A 2-minute push storm (mean inter-arrival 5 s) hits at 30% of the
    /// run.
    Storm,
    /// Everything at once, at milder rates.
    Mixed,
}

impl FaultProfile {
    /// Every profile, in campaign order.
    pub const ALL: [FaultProfile; 9] = [
        FaultProfile::Baseline,
        FaultProfile::Jitter,
        FaultProfile::Drops,
        FaultProfile::Overruns,
        FaultProfile::Leaks,
        FaultProfile::Flaky,
        FaultProfile::Crashes,
        FaultProfile::Storm,
        FaultProfile::Mixed,
    ];

    /// The profile's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::Baseline => "baseline",
            FaultProfile::Jitter => "jitter",
            FaultProfile::Drops => "drops",
            FaultProfile::Overruns => "overruns",
            FaultProfile::Leaks => "leaks",
            FaultProfile::Flaky => "flaky",
            FaultProfile::Crashes => "crashes",
            FaultProfile::Storm => "storm",
            FaultProfile::Mixed => "mixed",
        }
    }

    /// Parses a profile name (the inverse of [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<FaultProfile> {
        FaultProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Compiles the profile into a concrete [`FaultPlan`] for a run of
    /// `duration`. `crash_app` is the label sacrificed by crash-bearing
    /// profiles (callers pick it deterministically from the workload).
    pub fn plan(self, seed: u64, duration: SimDuration, crash_app: &str) -> FaultPlan {
        let at = |fraction_pct: u64| {
            SimTime::ZERO + SimDuration::from_millis(duration.as_millis() * fraction_pct / 100)
        };
        let plan = FaultPlan::new(seed);
        match self {
            FaultProfile::Baseline => plan,
            FaultProfile::Jitter => plan.with_rtc_jitter(SimDuration::from_secs(2)),
            FaultProfile::Drops => plan.with_dropped_fires(0.05, SimDuration::from_secs(1)),
            FaultProfile::Overruns => {
                plan.with_task_overruns(0.02, SimDuration::from_secs(300))
            }
            FaultProfile::Leaks => plan.with_wakelock_leaks(0.02, SimDuration::from_secs(180)),
            FaultProfile::Flaky => plan.with_activation_failures(0.05),
            FaultProfile::Crashes => {
                plan.with_app_crash(crash_app, at(40), SimDuration::from_secs(120))
            }
            FaultProfile::Storm => plan.with_push_storm(
                at(30),
                SimDuration::from_secs(120),
                SimDuration::from_secs(5),
            ),
            FaultProfile::Mixed => plan
                .with_rtc_jitter(SimDuration::from_secs(1))
                .with_dropped_fires(0.03, SimDuration::from_secs(1))
                .with_task_overruns(0.01, SimDuration::from_secs(120))
                .with_wakelock_leaks(0.01, SimDuration::from_secs(90))
                .with_activation_failures(0.03)
                .with_app_crash(crash_app, at(40), SimDuration::from_secs(120))
                .with_push_storm(
                    at(30),
                    SimDuration::from_secs(120),
                    SimDuration::from_secs(5),
                ),
        }
    }
}

/// One campaign cell: a policy defending a scenario against a fault
/// profile under a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// The alignment policy under test.
    pub policy: PolicyKind,
    /// The workload scenario.
    pub scenario: Scenario,
    /// The adversary.
    pub profile: FaultProfile,
    /// RNG seed shared by the workload and the fault plan.
    pub seed: u64,
    /// Simulated span.
    pub duration: SimDuration,
}

impl ChaosSpec {
    /// A compact identity for sweep outputs, e.g.
    /// `SIMTY/heavy/mixed/seed1/3600s`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/seed{}/{}s",
            self.policy.name(),
            self.scenario.name(),
            self.profile.name(),
            self.seed,
            self.duration.as_millis() / 1_000
        )
    }

    /// Executes the cell: builds the workload, arms the online watchdog
    /// and the invariant monitor (report mode), injects the profile's
    /// fault plan, and runs to the end.
    ///
    /// # Panics
    ///
    /// Panics if a catalogue alarm fails to register, which would be a
    /// bug in the workload generator.
    pub fn run(&self) -> SimReport {
        let workload = self
            .scenario
            .builder()
            .with_seed(self.seed)
            .with_beta(0.96)
            .with_duration(self.duration)
            .build();
        // Crash-bearing profiles sacrifice one app, picked
        // deterministically from the workload's label set by seed.
        let labels: BTreeSet<&str> = workload.alarms.iter().map(|a| a.label()).collect();
        let crash_app = labels
            .iter()
            .nth(self.seed as usize % labels.len().max(1))
            .copied()
            .unwrap_or("none");
        let plan = self.profile.plan(self.seed, self.duration, crash_app);
        let config = SimConfig::new()
            .with_duration(self.duration)
            .with_online_watchdog(OnlineWatchdogConfig::default())
            .with_invariants();
        let mut sim = Simulation::new(self.policy.build(), config);
        for alarm in workload.alarms {
            sim.register(alarm).expect("workload alarm registers cleanly");
        }
        sim.inject_faults(&plan);
        sim.run()
    }
}

/// Builds the full campaign grid in deterministic enqueue order
/// (policy-major, then scenario, profile, seed 1..=`seeds`).
pub fn chaos_matrix(
    policies: &[PolicyKind],
    scenarios: &[Scenario],
    profiles: &[FaultProfile],
    seeds: u64,
    duration: SimDuration,
) -> Vec<ChaosSpec> {
    let mut specs = Vec::new();
    for &policy in policies {
        for &scenario in scenarios {
            for &profile in profiles {
                for seed in 1..=seeds {
                    specs.push(ChaosSpec {
                        policy,
                        scenario,
                        profile,
                        seed,
                        duration,
                    });
                }
            }
        }
    }
    specs
}

/// Runs a campaign on `threads` sweep workers and collects the results
/// in matrix order (byte-identical across thread counts). Default
/// supervision, no journal.
pub fn run_chaos(specs: &[ChaosSpec], threads: usize) -> ChaosResults {
    run_chaos_with(specs, &CampaignOptions::with_threads(threads))
        .expect("a journal-less chaos campaign cannot fail to open its journal")
}

/// Runs a campaign under explicit harness [`CampaignOptions`]: cell
/// supervision (panicking or hung cells are quarantined, not fatal) and,
/// when `journal_dir` is set, crash-tolerant resume — cells completed by
/// a previous interrupted invocation are restored instead of re-run.
///
/// # Errors
///
/// [`JournalError`] when the journal directory holds a journal for a
/// different campaign kind or grid, or cannot be opened.
pub fn run_chaos_with(
    specs: &[ChaosSpec],
    options: &CampaignOptions,
) -> Result<ChaosResults, JournalError> {
    let mut sweep = Sweep::new();
    sweep.with_supervisor(options.supervisor);
    if let Some(dir) = &options.journal_dir {
        sweep.with_journal(dir, "chaos");
    }
    if let Some(sink) = &options.telemetry {
        sweep.with_telemetry(sink.clone());
    }
    for &spec in specs {
        sweep.job(spec.label(), move || spec.run());
    }
    let results = sweep.try_run_with_threads(options.threads)?;
    Ok(ChaosResults {
        journal_skips: results.journal_skips(),
        cell_walls: results.cell_walls(),
        runs: specs
            .iter()
            .copied()
            .zip(results.outcomes().iter())
            .map(|(spec, o)| (spec, o.status.clone(), o.report.clone()))
            .collect(),
    })
}

/// Per-policy resilience aggregate over every cell the policy defended.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResilience {
    /// The policy's display name.
    pub policy: String,
    /// How many cells it ran.
    pub runs: u64,
    /// Total invariant violations (the headline: must be zero).
    pub invariant_violations: u64,
    /// Total perceptible-window misses.
    pub perceptible_window_misses: u64,
    /// Total watchdog/retry interventions.
    pub interventions: u64,
    /// Total forced wakelock releases.
    pub forced_releases: u64,
    /// Total hardware-activation retries.
    pub activation_retries: u64,
    /// Total quarantines imposed.
    pub quarantines: u64,
    /// Total quarantine recoveries.
    pub recoveries: u64,
    /// Mean time from quarantine to recovery, in ms, weighted by
    /// recoveries (0 when nothing recovered).
    pub mean_time_to_recovery_ms: f64,
    /// Total energy spent by interventions (mJ).
    pub intervention_overhead_mj: f64,
    /// Mean normalized perceptible delay across cells.
    pub perceptible_delay_avg: f64,
    /// Worst normalized perceptible delay across cells.
    pub perceptible_delay_max: f64,
}

/// A finished campaign: every cell's supervisor status and report (the
/// report is `None` for quarantined cells), in matrix order.
#[derive(Debug, Clone)]
pub struct ChaosResults {
    runs: Vec<(ChaosSpec, CellStatus, Option<SimReport>)>,
    journal_skips: u64,
    cell_walls: Vec<f64>,
}

impl ChaosResults {
    /// The cells, their statuses, and their reports, in matrix order.
    pub fn runs(&self) -> &[(ChaosSpec, CellStatus, Option<SimReport>)] {
        &self.runs
    }

    /// The completed cells (quarantined cells carry no report).
    fn completed(&self) -> impl Iterator<Item = (&ChaosSpec, &SimReport)> {
        self.runs
            .iter()
            .filter_map(|(spec, _, report)| report.as_ref().map(|r| (spec, r)))
    }

    /// Cells restored from the campaign journal instead of executed in
    /// this invocation (zero without `--resume`).
    pub fn journal_skips(&self) -> u64 {
        self.journal_skips
    }

    /// Exact p50/p90/p99/max over the executed cells' wall times (ms);
    /// `None` when every cell was journal-restored. Wall-clock data:
    /// surfaced only in the document header, never in the deterministic
    /// body.
    pub fn cell_wall_quantiles(&self) -> Option<QuantileSummary> {
        QuantileSummary::exact(&self.cell_walls)
    }

    /// Supervisor accounting over the campaign.
    pub fn harness(&self) -> HarnessStats {
        let mut stats = HarnessStats::from_statuses(self.runs.iter().map(|(_, s, _)| s));
        stats.journal_skips = self.journal_skips;
        stats
    }

    /// The quarantined cells' `(label, reason)` pairs, in matrix order.
    pub fn poisoned(&self) -> Vec<(String, String)> {
        self.runs
            .iter()
            .filter_map(|(spec, status, _)| match status {
                CellStatus::Poisoned { reason, .. } => Some((spec.label(), reason.clone())),
                _ => None,
            })
            .collect()
    }

    /// Total invariant violations across every completed cell.
    pub fn total_violations(&self) -> u64 {
        self.completed()
            .map(|(_, r)| r.resilience.invariant_violations)
            .sum()
    }

    /// Per-policy aggregates over the completed cells, sorted by policy
    /// name.
    pub fn aggregates(&self) -> Vec<PolicyResilience> {
        let mut by_policy: BTreeMap<String, Vec<&SimReport>> = BTreeMap::new();
        for (spec, report) in self.completed() {
            by_policy.entry(spec.policy.name()).or_default().push(report);
        }
        by_policy
            .into_iter()
            .map(|(policy, reports)| {
                let n = reports.len() as u64;
                let sum = |f: fn(&SimReport) -> u64| reports.iter().map(|r| f(r)).sum::<u64>();
                let recoveries = sum(|r| r.resilience.recoveries);
                let mttr_weighted: f64 = reports
                    .iter()
                    .map(|r| {
                        r.resilience.mean_time_to_recovery_ms
                            * r.resilience.recoveries as f64
                    })
                    .sum();
                PolicyResilience {
                    policy,
                    runs: n,
                    invariant_violations: sum(|r| r.resilience.invariant_violations),
                    perceptible_window_misses: sum(|r| r.resilience.perceptible_window_misses),
                    interventions: sum(|r| r.resilience.interventions),
                    forced_releases: sum(|r| r.resilience.forced_releases),
                    activation_retries: sum(|r| r.resilience.activation_retries),
                    quarantines: sum(|r| r.resilience.quarantines),
                    recoveries,
                    mean_time_to_recovery_ms: if recoveries > 0 {
                        mttr_weighted / recoveries as f64
                    } else {
                        0.0
                    },
                    intervention_overhead_mj: reports
                        .iter()
                        .map(|r| r.resilience.intervention_overhead_mj)
                        .sum(),
                    perceptible_delay_avg: reports
                        .iter()
                        .map(|r| r.delays.perceptible_avg)
                        .sum::<f64>()
                        / n as f64,
                    perceptible_delay_max: reports
                        .iter()
                        .map(|r| r.delays.perceptible_max)
                        .fold(0.0, f64::max),
                }
            })
            .collect()
    }

    /// Serializes the campaign as the `simty-bench-chaos/v1` document
    /// body. Fully deterministic: no wall-clock or per-invocation
    /// fields, so parallel, sequential, and journal-resumed campaigns
    /// produce byte-identical bytes (`journal_skips` lives only in
    /// [`to_json_document`](Self::to_json_document)'s header).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"simty-bench-chaos/v1\"");
        out.push_str(&format!(",\"runs\":{}", self.runs.len()));
        out.push_str(&format!(",\"harness\":{}", self.harness().to_json()));
        out.push_str(",\"results\":[");
        for (i, (spec, status, report)) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"profile\":{},\"seed\":{},\"status\":{},\"report\":{}}}",
                json_string(&spec.label()),
                json_string(spec.profile.name()),
                spec.seed,
                json_string(&status.token()),
                report
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), report_to_json)
            ));
        }
        out.push_str("],\"policies\":[");
        for (i, agg) in self.aggregates().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"policy\":{},\"runs\":{},\"invariant_violations\":{},\
                 \"perceptible_window_misses\":{},\"interventions\":{},\
                 \"forced_releases\":{},\"activation_retries\":{},\
                 \"quarantines\":{},\"recoveries\":{},\
                 \"mean_time_to_recovery_ms\":{},\"intervention_overhead_mj\":{},\
                 \"perceptible_delay_avg\":{},\"perceptible_delay_max\":{}}}",
                json_string(&agg.policy),
                agg.runs,
                agg.invariant_violations,
                agg.perceptible_window_misses,
                agg.interventions,
                agg.forced_releases,
                agg.activation_retries,
                agg.quarantines,
                agg.recoveries,
                json_number(agg.mean_time_to_recovery_ms),
                json_number(agg.intervention_overhead_mj),
                json_number(agg.perceptible_delay_avg),
                json_number(agg.perceptible_delay_max),
            ));
        }
        out.push_str("]}");
        out
    }

    /// The full on-disk document: [`to_json`](Self::to_json) plus the
    /// per-invocation headers — `journal_skips` (how many cells this
    /// invocation restored from the journal instead of running) and the
    /// executed cells' wall-time quantiles (`null` when every cell was
    /// restored).
    pub fn to_json_document(&self) -> String {
        let quantiles = QuantileSummary::exact(&self.cell_walls)
            .map_or_else(|| "null".to_owned(), |q| q.to_json());
        self.to_json().replacen(
            "{\"schema\":\"simty-bench-chaos/v1\"",
            &format!(
                "{{\"schema\":\"simty-bench-chaos/v1\",\"journal_skips\":{},\
                 \"quantiles\":{{\"cell_wall_ms\":{quantiles}}}",
                self.journal_skips
            ),
            1,
        )
    }

    /// Writes [`to_json_document`](Self::to_json_document) to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(profile: FaultProfile, policy: PolicyKind) -> ChaosSpec {
        ChaosSpec {
            policy,
            scenario: Scenario::Light,
            profile,
            seed: 1,
            duration: SimDuration::from_mins(20),
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::parse("bogus"), None);
    }

    #[test]
    fn baseline_cell_is_quiet() {
        let report = tiny(FaultProfile::Baseline, PolicyKind::Simty).run();
        assert!(report.resilience.is_quiet(), "{:?}", report.resilience);
    }

    #[test]
    fn overrun_cell_triggers_the_watchdog_without_violations() {
        // An hour gives the 2% overrun draw enough deliveries to land.
        let mut spec = tiny(FaultProfile::Overruns, PolicyKind::Simty);
        spec.duration = SimDuration::from_hours(1);
        let report = spec.run();
        assert!(report.resilience.forced_releases > 0);
        assert_eq!(report.resilience.invariant_violations, 0);
    }

    #[test]
    fn matrix_covers_the_grid_in_order() {
        let specs = chaos_matrix(
            &[PolicyKind::Native, PolicyKind::Simty],
            &[Scenario::Light],
            &FaultProfile::ALL,
            2,
            SimDuration::from_hours(1),
        );
        assert_eq!(specs.len(), 2 * 9 * 2);
        assert_eq!(specs[0].label(), "NATIVE/light/baseline/seed1/3600s");
        assert!(specs.last().unwrap().label().starts_with("SIMTY/light/mixed"));
    }

    #[test]
    fn campaign_aggregates_and_serializes() {
        let specs = chaos_matrix(
            &[PolicyKind::Native, PolicyKind::Simty],
            &[Scenario::Light],
            &[FaultProfile::Baseline, FaultProfile::Overruns],
            1,
            SimDuration::from_mins(20),
        );
        let results = run_chaos(&specs, 2);
        assert_eq!(results.runs().len(), 4);
        assert!(results
            .runs()
            .iter()
            .all(|(_, status, report)| *status == CellStatus::Ok && report.is_some()));
        assert!(results.poisoned().is_empty());
        assert_eq!(results.journal_skips(), 0);
        let harness = results.harness();
        assert_eq!((harness.cells, harness.ok, harness.poisoned), (4, 4, 0));
        let aggs = results.aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].policy, "NATIVE");
        assert_eq!(aggs[1].policy, "SIMTY");
        assert_eq!(aggs[0].runs, 2);
        assert_eq!(results.total_violations(), 0);
        let json = results.to_json();
        assert!(json.starts_with("{\"schema\":\"simty-bench-chaos/v1\""));
        assert!(json.contains("\"profile\":\"overruns\""));
        assert!(json.contains("\"status\":\"ok\""));
        assert!(json.contains("\"harness\":{\"cells\":4"));
        assert!(json.contains("\"policies\":["));
        assert!(!json.contains("wall"), "chaos documents must be deterministic");
        assert!(
            !json.contains("journal_skips"),
            "per-invocation counters must stay out of the deterministic body"
        );
        let doc = results.to_json_document();
        assert!(doc.starts_with(
            "{\"schema\":\"simty-bench-chaos/v1\",\"journal_skips\":0"
        ));
    }
}
