//! Soak campaign: long-horizon endurance with reboots and checkpoint
//! corruption.
//!
//! The chaos campaign ([`crate::chaos`]) asks whether the
//! perceptible-window guarantee survives a hostile device; this module
//! asks whether it survives *time* — multi-day connected-standby
//! horizons laced with device reboots — and whether the
//! crash-consistent checkpoint subsystem actually earns its keep: every
//! cell runs straight through with periodic captures, then re-runs from
//! a snapshot (optionally after corrupting the newest snapshots on disk
//! to force the last-good fallback) and asserts the resumed run is
//! byte-identical in trace and report. Results serialize to the
//! `simty-bench-soak/v1` document (`BENCH_soak.json`).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use simty::core::{SimDuration, SimTime};
use simty::experiments::{PolicyKind, Scenario};
use simty::obs::QuantileSummary;
use simty::sim::json::{json_number, json_string, report_to_json};
use simty::sim::{
    CheckpointStore, OnlineWatchdogConfig, RebootPlan, SimConfig, SimReport, Simulation,
};

use crate::journal::JournalError;
use crate::supervisor::{CellStatus, HarnessStats};
use crate::sweep::{CampaignOptions, JobResult, Sweep};

/// A named endurance adversary: how the device dies and how its
/// snapshots rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakProfile {
    /// No reboots: the control cell. Resumes from a mid-run snapshot.
    Steady,
    /// One reboot at 45% of the horizon (5-minute outage).
    SingleReboot,
    /// Periodic reboots, roughly one per fifth of the horizon.
    RebootStorm,
    /// A reboot plus a bit-flipped newest snapshot: restore must detect
    /// the checksum mismatch and fall back to the previous good one.
    BitFlip,
    /// Periodic reboots plus a truncated newest snapshot *and* a
    /// stale-version second-newest: restore must skip both.
    TornStale,
}

impl SoakProfile {
    /// Every profile, in campaign order.
    pub const ALL: [SoakProfile; 5] = [
        SoakProfile::Steady,
        SoakProfile::SingleReboot,
        SoakProfile::RebootStorm,
        SoakProfile::BitFlip,
        SoakProfile::TornStale,
    ];

    /// The profile's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            SoakProfile::Steady => "steady",
            SoakProfile::SingleReboot => "single-reboot",
            SoakProfile::RebootStorm => "reboot-storm",
            SoakProfile::BitFlip => "bitflip",
            SoakProfile::TornStale => "torn-stale",
        }
    }

    /// Parses a profile name (the inverse of [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<SoakProfile> {
        SoakProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The profile's reboot schedule for a run of `duration`. Outages
    /// are 5 minutes — longer than the shortest catalogue alarm period,
    /// so every reboot strands overdue entries for boot catch-up.
    pub fn reboots(self, seed: u64, duration: SimDuration) -> RebootPlan {
        let outage = SimDuration::from_secs(310);
        let plan = RebootPlan::new(seed);
        match self {
            SoakProfile::Steady => plan,
            SoakProfile::SingleReboot | SoakProfile::BitFlip => plan.with_reboot(
                SimTime::ZERO + SimDuration::from_millis(duration.as_millis() * 45 / 100),
                outage,
            ),
            SoakProfile::RebootStorm | SoakProfile::TornStale => plan.with_periodic(
                SimDuration::from_millis(duration.as_millis() / 5),
                SimDuration::from_mins(7),
                outage,
                duration,
            ),
        }
    }

    /// How many of the newest on-disk snapshots the profile corrupts
    /// before the recovery drill.
    pub fn corrupted(self) -> usize {
        match self {
            SoakProfile::Steady | SoakProfile::SingleReboot | SoakProfile::RebootStorm => 0,
            SoakProfile::BitFlip => 1,
            SoakProfile::TornStale => 2,
        }
    }
}

/// One campaign cell: a policy enduring a scenario under a soak profile
/// and seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakSpec {
    /// The alignment policy under test.
    pub policy: PolicyKind,
    /// The workload scenario.
    pub scenario: Scenario,
    /// The endurance adversary.
    pub profile: SoakProfile,
    /// RNG seed shared by the workload and the reboot plan.
    pub seed: u64,
    /// Simulated span (soak horizons are typically multi-day).
    pub duration: SimDuration,
}

/// What the recovery drill observed for one cell, alongside its
/// straight-through report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoakRecovery {
    /// Snapshots captured during the straight-through run.
    pub checkpoints: u64,
    /// Corrupt snapshots the store skipped to reach a good one.
    pub corrupt_skipped: u64,
    /// The resumed run matched the straight-through run byte-for-byte
    /// (trace CSV and report JSON).
    pub resumed_identical: bool,
    /// The drill restored successfully (always required; `false` marks
    /// an unrecoverable cell).
    pub restore_ok: bool,
    /// Host wall-clock time the drill's resume took (snapshot load,
    /// [`Simulation::restore`]'s queue rebuild, and the re-run to the
    /// horizon). Never serialized per cell — only the campaign total
    /// surfaces, as the `resume_wall_ms` header of the soak document.
    pub resume_wall: Duration,
}

impl SoakRecovery {
    /// Encodes the drill outcome as the campaign journal's `extra`
    /// payload, so a journal-restored cell keeps its recovery digest.
    fn to_extra(self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.checkpoints,
            self.corrupt_skipped,
            u8::from(self.resumed_identical),
            u8::from(self.restore_ok),
            self.resume_wall.as_millis()
        )
    }

    /// Reverses [`to_extra`](Self::to_extra).
    fn from_extra(extra: &str) -> Option<SoakRecovery> {
        let fields: Vec<&str> = extra.split(':').collect();
        let [checkpoints, corrupt_skipped, resumed_identical, restore_ok, wall_ms] = fields[..]
        else {
            return None;
        };
        Some(SoakRecovery {
            checkpoints: checkpoints.parse().ok()?,
            corrupt_skipped: corrupt_skipped.parse().ok()?,
            resumed_identical: resumed_identical == "1",
            restore_ok: restore_ok == "1",
            resume_wall: Duration::from_millis(wall_ms.parse().ok()?),
        })
    }
}

impl SoakSpec {
    /// A compact identity for sweep outputs, e.g.
    /// `SIMTY/light/bitflip/seed1/172800s`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/seed{}/{}s",
            self.policy.name(),
            self.scenario.name(),
            self.profile.name(),
            self.seed,
            self.duration.as_millis() / 1_000
        )
    }

    fn fingerprint(sim: &Simulation) -> (Vec<u8>, String) {
        let mut csv = Vec::new();
        sim.trace()
            .write_csv(&mut csv)
            .expect("writing a trace to memory cannot fail");
        (csv, report_to_json(&sim.report()))
    }

    fn build_sim(&self) -> Simulation {
        let workload = self
            .scenario
            .builder()
            .with_seed(self.seed)
            .with_beta(0.96)
            .with_duration(self.duration)
            .build();
        let config = SimConfig::new()
            .with_duration(self.duration)
            .with_checkpoints(SimDuration::from_millis(
                (self.duration.as_millis() / 8).max(1),
            ))
            .with_online_watchdog(OnlineWatchdogConfig::default())
            .with_invariants();
        let mut sim = Simulation::new(self.policy.build(), config);
        for alarm in workload.alarms {
            sim.register(alarm).expect("workload alarm registers cleanly");
        }
        sim.inject_reboots(&self.profile.reboots(self.seed, self.duration));
        sim
    }

    /// Executes the cell: the straight-through run, then the recovery
    /// drill — persist every snapshot, corrupt the newest ones per the
    /// profile, restore from the last good snapshot, run to the end, and
    /// compare bytes. `scratch` hosts the cell's snapshot directory and
    /// is wiped afterwards.
    pub fn run(&self, scratch: &Path) -> (SimReport, SoakRecovery) {
        let mut straight = self.build_sim();
        let report = straight.run();
        let expected = Self::fingerprint(&straight);
        let mut recovery = SoakRecovery {
            checkpoints: straight.checkpoints().len() as u64,
            ..SoakRecovery::default()
        };
        if straight.checkpoints().is_empty() {
            return (report, recovery);
        }

        let dir = scratch.join(self.label().replace('/', "_"));
        let _ = std::fs::remove_dir_all(&dir);
        let drill = || -> Result<(u64, bool, Duration), Box<dyn std::error::Error>> {
            let mut store = CheckpointStore::open(&dir)?;
            for ckpt in straight.checkpoints() {
                store.save(ckpt)?;
            }
            corrupt_newest(&dir, self.profile.corrupted())?;
            let resume_started = Instant::now();
            let (snapshot, skipped) = store.load_latest_good()?;
            let mut resumed = Simulation::restore(self.policy.build(), &snapshot)?;
            resumed.run();
            let wall = resume_started.elapsed();
            Ok((skipped as u64, Self::fingerprint(&resumed) == expected, wall))
        };
        match drill() {
            Ok((skipped, identical, wall)) => {
                recovery.corrupt_skipped = skipped;
                recovery.resumed_identical = identical;
                recovery.restore_ok = true;
                recovery.resume_wall = wall;
            }
            Err(_) => {
                recovery.restore_ok = false;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        (report, recovery)
    }
}

/// Damages the `n` newest snapshots in `dir`, cycling through the
/// corruption taxonomy: the newest gets a truncation, the next a
/// stale-version header, then a bit flip, so multi-file profiles
/// exercise distinct detection paths.
fn corrupt_newest(dir: &Path, n: usize) -> io::Result<()> {
    if n == 0 {
        return Ok(());
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-"))
        })
        .collect();
    files.sort();
    for (i, path) in files.iter().rev().take(n).enumerate() {
        let bytes = std::fs::read(path)?;
        let damaged = match i % 3 {
            0 => bytes[..bytes.len() / 2].to_vec(),
            1 => {
                let body = bytes.splitn(2, |&b| b == b'\n').nth(1).unwrap_or(&[]).to_vec();
                let mut out = b"simty-checkpoint/v0\n".to_vec();
                out.extend_from_slice(&body);
                out
            }
            _ => {
                let mut out = bytes.clone();
                let pos = out.len() * 4 / 5;
                out[pos] ^= 0x10;
                out
            }
        };
        std::fs::write(path, damaged)?;
    }
    Ok(())
}

/// Builds the full campaign grid in deterministic enqueue order
/// (policy-major, then scenario, profile, seed 1..=`seeds`).
pub fn soak_matrix(
    policies: &[PolicyKind],
    scenarios: &[Scenario],
    profiles: &[SoakProfile],
    seeds: u64,
    duration: SimDuration,
) -> Vec<SoakSpec> {
    let mut specs = Vec::new();
    for &policy in policies {
        for &scenario in scenarios {
            for &profile in profiles {
                for seed in 1..=seeds {
                    specs.push(SoakSpec {
                        policy,
                        scenario,
                        profile,
                        seed,
                        duration,
                    });
                }
            }
        }
    }
    specs
}

/// Runs a campaign on `threads` sweep workers and collects the results
/// in matrix order (byte-identical across thread counts). Snapshot
/// directories live under the system temp dir for the drill's duration.
/// Default supervision, no journal.
pub fn run_soak(specs: &[SoakSpec], threads: usize) -> SoakResults {
    run_soak_with(specs, &CampaignOptions::with_threads(threads))
        .expect("a journal-less soak campaign cannot fail to open its journal")
}

/// Runs a campaign under explicit harness [`CampaignOptions`]: cell
/// supervision (panicking or hung cells are quarantined, not fatal) and,
/// when `journal_dir` is set, crash-tolerant resume. The per-cell
/// [`SoakRecovery`] digest rides the journal's `extra` payload, so a
/// restored cell keeps its recovery outcome.
///
/// # Errors
///
/// [`JournalError`] when the journal directory holds a journal for a
/// different campaign kind or grid, or cannot be opened.
pub fn run_soak_with(
    specs: &[SoakSpec],
    options: &CampaignOptions,
) -> Result<SoakResults, JournalError> {
    let scratch = std::env::temp_dir().join(format!("simty-soak-{}", std::process::id()));
    let mut sweep = Sweep::new();
    sweep.with_supervisor(options.supervisor);
    if let Some(dir) = &options.journal_dir {
        sweep.with_journal(dir, "soak");
    }
    if let Some(sink) = &options.telemetry {
        sweep.with_telemetry(sink.clone());
    }
    for &spec in specs {
        let scratch = scratch.clone();
        sweep.job(spec.label(), move || {
            let (report, recovery) = spec.run(&scratch);
            JobResult {
                report,
                stages: None,
                extra: Some(recovery.to_extra()),
            }
        });
    }
    let results = sweep.try_run_with_threads(options.threads)?;
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(SoakResults {
        journal_skips: results.journal_skips(),
        cell_walls: results.cell_walls(),
        runs: specs
            .iter()
            .copied()
            .zip(results.outcomes().iter())
            .map(|(spec, o)| {
                let recovery = o.extra.as_deref().and_then(SoakRecovery::from_extra);
                (spec, o.status.clone(), o.report.clone(), recovery)
            })
            .collect(),
    })
}

/// Per-policy endurance aggregate over every cell the policy survived.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEndurance {
    /// The policy's display name.
    pub policy: String,
    /// How many cells it ran.
    pub runs: u64,
    /// Total reboots endured.
    pub reboots: u64,
    /// Mean outage from kill to boot completion, in ms, weighted by
    /// reboots (the per-reboot recovery time; 0 when nothing rebooted).
    pub mean_recovery_ms: f64,
    /// Queue entries boot catch-up had to deliver late, summed.
    pub catch_up_entries: u64,
    /// Worst catch-up delay at any boot across all cells, in ms.
    pub worst_catch_up_delay_ms: f64,
    /// Total invariant violations (must be zero).
    pub invariant_violations: u64,
    /// Total perceptible-window misses (the headline: must be zero).
    pub perceptible_window_misses: u64,
    /// Snapshots captured across all cells.
    pub checkpoints: u64,
    /// Corrupt snapshots the recovery drills skipped.
    pub corrupt_skipped: u64,
    /// Every cell's resumed run was byte-identical to its
    /// straight-through run.
    pub all_resumed_identical: bool,
    /// Every cell's recovery drill restored successfully.
    pub all_restores_ok: bool,
}

/// A finished campaign: every cell's supervisor status, report, and
/// recovery outcome (both `None` for quarantined cells), in matrix
/// order.
#[derive(Debug, Clone)]
pub struct SoakResults {
    runs: Vec<(SoakSpec, CellStatus, Option<SimReport>, Option<SoakRecovery>)>,
    journal_skips: u64,
    cell_walls: Vec<f64>,
}

impl SoakResults {
    /// The cells, their statuses, reports, and recovery outcomes, in
    /// matrix order.
    pub fn runs(&self) -> &[(SoakSpec, CellStatus, Option<SimReport>, Option<SoakRecovery>)] {
        &self.runs
    }

    /// The completed cells (quarantined cells carry no report). A
    /// completed cell missing its recovery digest counts as an
    /// unrecovered default, never a silent success.
    fn completed(&self) -> impl Iterator<Item = (&SoakSpec, &SimReport, SoakRecovery)> {
        self.runs.iter().filter_map(|(spec, _, report, recovery)| {
            report
                .as_ref()
                .map(|r| (spec, r, recovery.unwrap_or_default()))
        })
    }

    /// Cells restored from the campaign journal instead of executed in
    /// this invocation (zero without `--resume`).
    pub fn journal_skips(&self) -> u64 {
        self.journal_skips
    }

    /// Exact p50/p90/p99/max over the executed cells' wall times (ms);
    /// `None` when every cell was journal-restored. Wall-clock data:
    /// surfaced only in the document header, never in the deterministic
    /// body.
    pub fn cell_wall_quantiles(&self) -> Option<QuantileSummary> {
        QuantileSummary::exact(&self.cell_walls)
    }

    /// Supervisor accounting over the campaign.
    pub fn harness(&self) -> HarnessStats {
        let mut stats = HarnessStats::from_statuses(self.runs.iter().map(|(_, s, _, _)| s));
        stats.journal_skips = self.journal_skips;
        stats
    }

    /// The quarantined cells' `(label, reason)` pairs, in matrix order.
    pub fn poisoned(&self) -> Vec<(String, String)> {
        self.runs
            .iter()
            .filter_map(|(spec, status, _, _)| match status {
                CellStatus::Poisoned { reason, .. } => Some((spec.label(), reason.clone())),
                _ => None,
            })
            .collect()
    }

    /// Total perceptible-window misses across every completed cell.
    pub fn total_misses(&self) -> u64 {
        self.completed()
            .map(|(_, r, _)| r.resilience.perceptible_window_misses)
            .sum()
    }

    /// Total host wall-clock the campaign's checkpoint resumes took
    /// (load + restore + re-run), summed across completed cells.
    pub fn resume_wall(&self) -> Duration {
        self.completed().map(|(_, _, rec)| rec.resume_wall).sum()
    }

    /// Whether every completed cell's recovery drill restored and
    /// matched bytes (quarantined cells are the harness's concern, not
    /// the recovery drill's).
    pub fn all_recovered(&self) -> bool {
        self.completed()
            .all(|(_, _, rec)| rec.restore_ok && rec.resumed_identical)
    }

    /// Per-policy aggregates over the completed cells, sorted by policy
    /// name.
    pub fn aggregates(&self) -> Vec<PolicyEndurance> {
        let mut by_policy: BTreeMap<String, Vec<(&SimReport, SoakRecovery)>> = BTreeMap::new();
        for (spec, report, rec) in self.completed() {
            by_policy
                .entry(spec.policy.name())
                .or_default()
                .push((report, rec));
        }
        by_policy
            .into_iter()
            .map(|(policy, cells)| {
                let reboots: u64 = cells.iter().map(|(r, _)| r.resilience.reboots).sum();
                let recovery_weighted: f64 = cells
                    .iter()
                    .map(|(r, _)| r.resilience.mean_recovery_ms * r.resilience.reboots as f64)
                    .sum();
                PolicyEndurance {
                    policy,
                    runs: cells.len() as u64,
                    reboots,
                    mean_recovery_ms: if reboots > 0 {
                        recovery_weighted / reboots as f64
                    } else {
                        0.0
                    },
                    catch_up_entries: cells
                        .iter()
                        .map(|(r, _)| r.resilience.catch_up_entries)
                        .sum(),
                    worst_catch_up_delay_ms: cells
                        .iter()
                        .map(|(r, _)| r.resilience.worst_catch_up_delay_ms)
                        .fold(0.0, f64::max),
                    invariant_violations: cells
                        .iter()
                        .map(|(r, _)| r.resilience.invariant_violations)
                        .sum(),
                    perceptible_window_misses: cells
                        .iter()
                        .map(|(r, _)| r.resilience.perceptible_window_misses)
                        .sum(),
                    checkpoints: cells.iter().map(|(_, rec)| rec.checkpoints).sum(),
                    corrupt_skipped: cells.iter().map(|(_, rec)| rec.corrupt_skipped).sum(),
                    all_resumed_identical: cells.iter().all(|(_, rec)| rec.resumed_identical),
                    all_restores_ok: cells.iter().all(|(_, rec)| rec.restore_ok),
                }
            })
            .collect()
    }

    /// Serializes the campaign as the `simty-bench-soak/v1` document
    /// body. Fully deterministic: no wall-clock or per-invocation
    /// fields, so parallel, sequential, and journal-resumed campaigns
    /// produce byte-identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"simty-bench-soak/v1\"");
        out.push_str(&format!(",\"runs\":{}", self.runs.len()));
        out.push_str(&format!(",\"harness\":{}", self.harness().to_json()));
        out.push_str(",\"results\":[");
        for (i, (spec, status, report, recovery)) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rec = recovery.unwrap_or_default();
            match report {
                Some(report) => out.push_str(&format!(
                    "{{\"label\":{},\"profile\":{},\"seed\":{},\"status\":{},\
                     \"checkpoints\":{},\"corrupt_skipped\":{},\"restore_ok\":{},\
                     \"resumed_identical\":{},\"report\":{}}}",
                    json_string(&spec.label()),
                    json_string(spec.profile.name()),
                    spec.seed,
                    json_string(&status.token()),
                    rec.checkpoints,
                    rec.corrupt_skipped,
                    rec.restore_ok,
                    rec.resumed_identical,
                    report_to_json(report)
                )),
                None => out.push_str(&format!(
                    "{{\"label\":{},\"profile\":{},\"seed\":{},\"status\":{},\
                     \"checkpoints\":null,\"corrupt_skipped\":null,\"restore_ok\":null,\
                     \"resumed_identical\":null,\"report\":null}}",
                    json_string(&spec.label()),
                    json_string(spec.profile.name()),
                    spec.seed,
                    json_string(&status.token()),
                )),
            }
        }
        out.push_str("],\"policies\":[");
        for (i, agg) in self.aggregates().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"policy\":{},\"runs\":{},\"reboots\":{},\"mean_recovery_ms\":{},\
                 \"catch_up_entries\":{},\"worst_catch_up_delay_ms\":{},\
                 \"invariant_violations\":{},\"perceptible_window_misses\":{},\
                 \"checkpoints\":{},\"corrupt_skipped\":{},\
                 \"all_resumed_identical\":{},\"all_restores_ok\":{}}}",
                json_string(&agg.policy),
                agg.runs,
                agg.reboots,
                json_number(agg.mean_recovery_ms),
                agg.catch_up_entries,
                json_number(agg.worst_catch_up_delay_ms),
                agg.invariant_violations,
                agg.perceptible_window_misses,
                agg.checkpoints,
                agg.corrupt_skipped,
                agg.all_resumed_identical,
                agg.all_restores_ok,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The committed `BENCH_soak.json` document: the deterministic
    /// [`to_json`](Self::to_json) body plus the per-invocation header
    /// fields — `resume_wall_ms` (the campaign's total checkpoint-resume
    /// wall-clock), `journal_skips` (cells restored from the journal
    /// by this invocation), and the executed cells' wall-time quantiles.
    /// Kept out of `to_json` itself so determinism suites can keep
    /// byte-diffing that stream.
    pub fn to_json_document(&self) -> String {
        let quantiles = QuantileSummary::exact(&self.cell_walls)
            .map_or_else(|| "null".to_owned(), |q| q.to_json());
        self.to_json().replacen(
            "{\"schema\":\"simty-bench-soak/v1\"",
            &format!(
                "{{\"schema\":\"simty-bench-soak/v1\",\"resume_wall_ms\":{},\"journal_skips\":{},\
                 \"quantiles\":{{\"cell_wall_ms\":{quantiles}}}",
                json_number(self.resume_wall().as_secs_f64() * 1_000.0),
                self.journal_skips
            ),
            1,
        )
    }

    /// Writes [`to_json_document`](Self::to_json_document) to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(profile: SoakProfile, policy: PolicyKind) -> SoakSpec {
        SoakSpec {
            policy,
            scenario: Scenario::Light,
            profile,
            seed: 1,
            duration: SimDuration::from_hours(2),
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in SoakProfile::ALL {
            assert_eq!(SoakProfile::parse(p.name()), Some(p));
        }
        assert_eq!(SoakProfile::parse("bogus"), None);
    }

    #[test]
    fn steady_cell_resumes_identically_with_no_reboots() {
        let scratch = std::env::temp_dir().join(format!("simty-soak-t1-{}", std::process::id()));
        let (report, rec) = tiny(SoakProfile::Steady, PolicyKind::Simty).run(&scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        assert_eq!(report.resilience.reboots, 0);
        assert!(rec.checkpoints >= 7, "{rec:?}");
        assert_eq!(rec.corrupt_skipped, 0);
        assert!(rec.restore_ok && rec.resumed_identical, "{rec:?}");
    }

    #[test]
    fn corruption_profiles_fall_back_to_the_last_good_snapshot() {
        let scratch = std::env::temp_dir().join(format!("simty-soak-t2-{}", std::process::id()));
        let (report, rec) = tiny(SoakProfile::BitFlip, PolicyKind::Native).run(&scratch);
        assert_eq!(report.resilience.reboots, 1);
        assert_eq!(rec.corrupt_skipped, 1, "{rec:?}");
        assert!(rec.restore_ok && rec.resumed_identical, "{rec:?}");
        let (_, rec) = tiny(SoakProfile::TornStale, PolicyKind::Simty).run(&scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        assert_eq!(rec.corrupt_skipped, 2, "{rec:?}");
        assert!(rec.restore_ok && rec.resumed_identical, "{rec:?}");
    }

    #[test]
    fn matrix_covers_the_grid_in_order() {
        let specs = soak_matrix(
            &[PolicyKind::Native, PolicyKind::Simty],
            &[Scenario::Light],
            &SoakProfile::ALL,
            2,
            SimDuration::from_hours(24),
        );
        assert_eq!(specs.len(), 2 * 5 * 2);
        assert_eq!(specs[0].label(), "NATIVE/light/steady/seed1/86400s");
        assert!(specs.last().unwrap().label().starts_with("SIMTY/light/torn-stale"));
    }

    #[test]
    fn campaign_aggregates_and_serializes() {
        let specs = soak_matrix(
            &[PolicyKind::Native, PolicyKind::Simty],
            &[Scenario::Light],
            &[SoakProfile::SingleReboot, SoakProfile::BitFlip],
            1,
            SimDuration::from_hours(2),
        );
        let results = run_soak(&specs, 2);
        assert_eq!(results.runs().len(), 4);
        assert!(results
            .runs()
            .iter()
            .all(|(_, status, report, recovery)| *status == CellStatus::Ok
                && report.is_some()
                && recovery.is_some()));
        assert!(results.poisoned().is_empty());
        assert_eq!(results.journal_skips(), 0);
        let harness = results.harness();
        assert_eq!((harness.cells, harness.ok, harness.poisoned), (4, 4, 0));
        assert!(results.all_recovered());
        assert_eq!(results.total_misses(), 0);
        let aggs = results.aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].policy, "NATIVE");
        assert!(aggs.iter().all(|a| a.reboots == 2));
        assert!(aggs.iter().all(|a| a.all_resumed_identical && a.all_restores_ok));
        assert!(aggs.iter().all(|a| a.corrupt_skipped == 1));
        let json = results.to_json();
        assert!(json.starts_with("{\"schema\":\"simty-bench-soak/v1\""));
        assert!(json.contains("\"profile\":\"bitflip\""));
        assert!(json.contains("\"status\":\"ok\""));
        assert!(json.contains("\"harness\":{\"cells\":4"));
        assert!(json.contains("\"resumed_identical\":true"));
        assert!(!json.contains("wall"), "soak documents must be deterministic");
        assert!(!json.contains("journal_skips"));
        // The committed document adds only per-invocation header fields
        // on top of the deterministic body.
        let doc = results.to_json_document();
        assert!(doc.starts_with("{\"schema\":\"simty-bench-soak/v1\",\"resume_wall_ms\":"));
        assert!(doc.contains("\"journal_skips\":0"));
        assert!(results.resume_wall() > Duration::ZERO);
        assert_eq!(
            doc.replacen(
                &format!(
                    ",\"resume_wall_ms\":{},\"journal_skips\":0,\"quantiles\":{{\"cell_wall_ms\":{}}}",
                    simty::sim::json::json_number(results.resume_wall().as_secs_f64() * 1_000.0),
                    results.cell_wall_quantiles().unwrap().to_json()
                ),
                "",
                1
            ),
            json
        );
    }

    #[test]
    fn recovery_extra_round_trips() {
        let rec = SoakRecovery {
            checkpoints: 9,
            corrupt_skipped: 2,
            resumed_identical: true,
            restore_ok: true,
            resume_wall: Duration::from_millis(1234),
        };
        assert_eq!(SoakRecovery::from_extra(&rec.to_extra()), Some(rec));
        assert_eq!(SoakRecovery::from_extra(""), None);
        assert_eq!(SoakRecovery::from_extra("1:2:3"), None);
        assert_eq!(SoakRecovery::from_extra("a:0:1:1:0"), None);
    }

    #[test]
    fn parallel_and_sequential_campaigns_are_byte_identical() {
        let specs = soak_matrix(
            &[PolicyKind::Simty],
            &[Scenario::Light],
            &[SoakProfile::SingleReboot],
            2,
            SimDuration::from_hours(1),
        );
        let a = run_soak(&specs, 1).to_json();
        let b = run_soak(&specs, 4).to_json();
        assert_eq!(a, b);
    }
}
