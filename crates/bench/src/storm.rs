//! Overload campaign: registration storms against admission control and
//! battery-aware degradation.
//!
//! The chaos campaign ([`crate::chaos`]) attacks the *device* and the
//! soak campaign ([`crate::soak`]) attacks *time*; this module attacks
//! the *front door*: seeded registration storms flood the alarm manager
//! while the battery drains through the degradation tiers. Every cell
//! runs under the invariant monitor — the perceptible-window guarantee
//! must hold in every tier, protected or not — and re-runs from its
//! final mid-run snapshot to prove admission and governor state resume
//! byte-identically. Results serialize to the `simty-bench-storm/v1`
//! document (`BENCH_storm.json`).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use simty::core::admission::AdmissionConfig;
use simty::core::{SimDuration, SimTime};
use simty::experiments::{PolicyKind, Scenario};
use simty::obs::QuantileSummary;
use simty::sim::json::{json_string, report_to_json};
use simty::sim::{
    GovernorConfig, RegistrationStormPlan, SimConfig, SimReport, Simulation, StormBurst,
};

use crate::journal::JournalError;
use crate::supervisor::{CellStatus, HarnessStats};
use crate::sweep::{CampaignOptions, JobResult, Sweep};

/// A named overload adversary: what floods the manager and how far the
/// battery falls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormProfile {
    /// Storms against a healthy battery: the admission quota is the only
    /// defence (no degradation tiers are reached).
    QuotaStorm,
    /// Battery sized to end the run inside the saver band; the governor
    /// widens imperceptible grace mid-run.
    DrainSaver,
    /// Battery sized to traverse saver into critical; deferrable
    /// registrations are shed near the end.
    DrainCritical,
    /// A doubled storm against the critical-bound battery: quota,
    /// demotion, stretch, and shedding all fire in one cell.
    StormAndDrain,
    /// The control cell: the same storm with no admission control and no
    /// governor. The invariant monitor still must report zero
    /// perceptible-window misses.
    Unprotected,
}

impl StormProfile {
    /// Every profile, in campaign order.
    pub const ALL: [StormProfile; 5] = [
        StormProfile::QuotaStorm,
        StormProfile::DrainSaver,
        StormProfile::DrainCritical,
        StormProfile::StormAndDrain,
        StormProfile::Unprotected,
    ];

    /// The profile's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            StormProfile::QuotaStorm => "quota-storm",
            StormProfile::DrainSaver => "drain-saver",
            StormProfile::DrainCritical => "drain-critical",
            StormProfile::StormAndDrain => "storm-and-drain",
            StormProfile::Unprotected => "unprotected",
        }
    }

    /// Parses a profile name (the inverse of [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<StormProfile> {
        StormProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The admission quota the profile registers under.
    fn admission(self) -> Option<AdmissionConfig> {
        match self {
            StormProfile::Unprotected => None,
            _ => Some(AdmissionConfig::default()),
        }
    }

    /// Battery capacity as a multiple of the cell's measured draw
    /// (`None` = no governor). 1.6x leaves the run ending in the saver
    /// band; 1.05x pushes it through to critical.
    fn capacity_factor(self) -> Option<f64> {
        match self {
            StormProfile::QuotaStorm | StormProfile::Unprotected => None,
            StormProfile::DrainSaver => Some(1.6),
            StormProfile::DrainCritical | StormProfile::StormAndDrain => Some(1.05),
        }
    }

    /// How many seeded burst pairs the profile's storm plan carries.
    fn storm_scale(self) -> u64 {
        match self {
            StormProfile::StormAndDrain => 2,
            _ => 1,
        }
    }
}

/// One campaign cell: a policy enduring a scenario under a storm profile
/// and seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormSpec {
    /// The alignment policy under test.
    pub policy: PolicyKind,
    /// The workload scenario beneath the storm.
    pub scenario: Scenario,
    /// The overload adversary.
    pub profile: StormProfile,
    /// RNG seed shared by the workload and the storm plan.
    pub seed: u64,
    /// Simulated span.
    pub duration: SimDuration,
}

/// What the resume drill observed for one cell, alongside its
/// straight-through report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StormRecovery {
    /// Snapshots captured during the straight-through run.
    pub checkpoints: u64,
    /// The run resumed from its final snapshot matched the
    /// straight-through run byte-for-byte (trace CSV and report JSON).
    pub resumed_identical: bool,
    /// The drill restored successfully.
    pub restore_ok: bool,
}

impl StormRecovery {
    /// Encodes the drill outcome as the campaign journal's `extra`
    /// payload, so a journal-restored cell keeps its resume digest.
    fn to_extra(self) -> String {
        format!(
            "{}:{}:{}",
            self.checkpoints,
            u8::from(self.resumed_identical),
            u8::from(self.restore_ok)
        )
    }

    /// Reverses [`to_extra`](Self::to_extra).
    fn from_extra(extra: &str) -> Option<StormRecovery> {
        let fields: Vec<&str> = extra.split(':').collect();
        let [checkpoints, resumed_identical, restore_ok] = fields[..] else {
            return None;
        };
        Some(StormRecovery {
            checkpoints: checkpoints.parse().ok()?,
            resumed_identical: resumed_identical == "1",
            restore_ok: restore_ok == "1",
        })
    }
}

impl StormSpec {
    /// A compact identity for sweep outputs, e.g.
    /// `SIMTY/light/quota-storm/seed1/10800s`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/seed{}/{}s",
            self.policy.name(),
            self.scenario.name(),
            self.profile.name(),
            self.seed,
            self.duration.as_millis() / 1_000
        )
    }

    /// The cell's seeded storm plan: most bursts land in the first two
    /// thirds of the horizon and are mostly imperceptible (perceptible
    /// bursts keep the invariant monitor honest in degraded tiers); the
    /// final burst lands at 85–90 % so drain profiles register into the
    /// critical tier and exercise the shedder.
    pub fn plan(&self) -> RegistrationStormPlan {
        let mut state = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0xd1b5_4a32_d192_ed03);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let span = self.duration.as_millis();
        let bursts = 2 * self.profile.storm_scale();
        let mut plan = RegistrationStormPlan::new();
        for b in 0..bursts {
            let start_ms = if b + 1 == bursts {
                span * 17 / 20 + next() % (span / 20).max(1)
            } else {
                span / 10 + next() % (span / 2).max(1)
            };
            plan = plan.burst(StormBurst {
                app: format!("storm{b}"),
                start: SimTime::ZERO + SimDuration::from_millis(start_ms),
                count: (20 + next() % 40) as u32,
                every: SimDuration::from_millis(500 + next() % 4_500),
                period: SimDuration::from_secs(60 + next() % 540),
                perceptible: next() % 4 == 0,
                task: SimDuration::from_millis(500 + next() % 1_500),
                window_milli: (next() % 250) as u32,
                grace_milli: (250 + next() % 700) as u32,
            });
        }
        plan
    }

    fn fingerprint(sim: &Simulation) -> (Vec<u8>, String) {
        let mut csv = Vec::new();
        sim.trace()
            .write_csv(&mut csv)
            .expect("writing a trace to memory cannot fail");
        (csv, report_to_json(&sim.report()))
    }

    fn build_sim(&self, capacity_mj: Option<f64>) -> Simulation {
        let workload = self
            .scenario
            .builder()
            .with_seed(self.seed)
            .with_beta(0.96)
            .with_duration(self.duration)
            .build();
        let mut config = SimConfig::new()
            .with_duration(self.duration)
            .with_checkpoints(SimDuration::from_millis(
                (self.duration.as_millis() / 8).max(1),
            ))
            .with_invariants();
        if let Some(quota) = self.profile.admission() {
            config = config.with_admission(quota);
        }
        if let Some(capacity_mj) = capacity_mj {
            config = config.with_degradation(GovernorConfig {
                capacity_mj,
                check_every: SimDuration::from_millis((self.duration.as_millis() / 180).max(30_000)),
                ..GovernorConfig::default()
            });
        }
        let mut sim = Simulation::new(self.policy.build(), config);
        for alarm in workload.alarms {
            // The catalogue apps register under distinct labels, far
            // below any per-app burst; only storm apps face pushback.
            sim.register(alarm).expect("workload alarm registers cleanly");
        }
        sim.inject_storm(&self.plan());
        sim
    }

    /// Executes the cell: an ungoverned probe sizes the battery for
    /// drain profiles, the straight-through run produces the report, and
    /// the resume drill restores from the final mid-run snapshot and
    /// compares bytes.
    pub fn run(&self) -> (SimReport, StormRecovery) {
        let capacity = self.profile.capacity_factor().map(|factor| {
            let mut probe = self.build_sim(None);
            probe.run().energy.total_mj() * factor
        });
        let mut straight = self.build_sim(capacity);
        let report = straight.run();
        let expected = Self::fingerprint(&straight);
        let mut recovery = StormRecovery {
            checkpoints: straight.checkpoints().len() as u64,
            ..StormRecovery::default()
        };
        if let Some(snapshot) = straight.checkpoints().last() {
            match Simulation::restore(self.policy.build(), snapshot) {
                Ok(mut resumed) => {
                    resumed.run();
                    recovery.restore_ok = true;
                    recovery.resumed_identical = Self::fingerprint(&resumed) == expected;
                }
                Err(_) => recovery.restore_ok = false,
            }
        }
        (report, recovery)
    }
}

/// Builds the full campaign grid in deterministic enqueue order
/// (policy-major, then scenario, profile, seed 1..=`seeds`).
pub fn storm_matrix(
    policies: &[PolicyKind],
    scenarios: &[Scenario],
    profiles: &[StormProfile],
    seeds: u64,
    duration: SimDuration,
) -> Vec<StormSpec> {
    let mut specs = Vec::new();
    for &policy in policies {
        for &scenario in scenarios {
            for &profile in profiles {
                for seed in 1..=seeds {
                    specs.push(StormSpec {
                        policy,
                        scenario,
                        profile,
                        seed,
                        duration,
                    });
                }
            }
        }
    }
    specs
}

/// Runs a campaign on `threads` sweep workers and collects the results
/// in matrix order (byte-identical across thread counts). Default
/// supervision, no journal.
pub fn run_storm(specs: &[StormSpec], threads: usize) -> StormResults {
    run_storm_with(specs, &CampaignOptions::with_threads(threads))
        .expect("a journal-less storm campaign cannot fail to open its journal")
}

/// Runs a campaign under explicit harness [`CampaignOptions`]: cell
/// supervision (panicking or hung cells are quarantined, not fatal) and,
/// when `journal_dir` is set, crash-tolerant resume. The per-cell
/// [`StormRecovery`] digest rides the journal's `extra` payload, so a
/// restored cell keeps its resume outcome.
///
/// # Errors
///
/// [`JournalError`] when the journal directory holds a journal for a
/// different campaign kind or grid, or cannot be opened.
pub fn run_storm_with(
    specs: &[StormSpec],
    options: &CampaignOptions,
) -> Result<StormResults, JournalError> {
    let mut sweep = Sweep::new();
    sweep.with_supervisor(options.supervisor);
    if let Some(dir) = &options.journal_dir {
        sweep.with_journal(dir, "storm");
    }
    if let Some(sink) = &options.telemetry {
        sweep.with_telemetry(sink.clone());
    }
    for &spec in specs {
        sweep.job(spec.label(), move || {
            let (report, recovery) = spec.run();
            JobResult {
                report,
                stages: None,
                extra: Some(recovery.to_extra()),
            }
        });
    }
    let results = sweep.try_run_with_threads(options.threads)?;
    Ok(StormResults {
        journal_skips: results.journal_skips(),
        cell_walls: results.cell_walls(),
        runs: specs
            .iter()
            .copied()
            .zip(results.outcomes().iter())
            .map(|(spec, o)| {
                let recovery = o.extra.as_deref().and_then(StormRecovery::from_extra);
                (spec, o.status.clone(), o.report.clone(), recovery)
            })
            .collect(),
    })
}

/// Per-policy overload aggregate across every cell the policy endured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyOverload {
    /// The policy's display name.
    pub policy: String,
    /// How many cells it ran.
    pub runs: u64,
    /// Storm registrations fired at the front door, summed.
    pub storm_registrations: u64,
    /// Registrations the quota admitted outright.
    pub admitted: u64,
    /// Registrations admitted late with a pushed-back nominal.
    pub deferred: u64,
    /// Registrations rejected with a typed retry-after error.
    pub rejected: u64,
    /// Registrations shed by the critical tier.
    pub shed: u64,
    /// Apps demoted into quarantine for sustained storming.
    pub demotions: u64,
    /// Degradation tier transitions across all cells.
    pub tier_changes: u64,
    /// Total invariant violations (must be zero).
    pub invariant_violations: u64,
    /// Total perceptible-window misses (the headline: must be zero, in
    /// every tier, protected or not).
    pub perceptible_window_misses: u64,
    /// Every cell's resumed run was byte-identical.
    pub all_resumed_identical: bool,
    /// Every cell's resume drill restored successfully.
    pub all_restores_ok: bool,
}

/// A finished campaign: every cell's supervisor status, report, and
/// resume outcome (both `None` for quarantined cells), in matrix order.
#[derive(Debug, Clone)]
pub struct StormResults {
    runs: Vec<(StormSpec, CellStatus, Option<SimReport>, Option<StormRecovery>)>,
    journal_skips: u64,
    cell_walls: Vec<f64>,
}

impl StormResults {
    /// The cells, their statuses, reports, and resume outcomes, in
    /// matrix order.
    pub fn runs(&self) -> &[(StormSpec, CellStatus, Option<SimReport>, Option<StormRecovery>)] {
        &self.runs
    }

    /// The completed cells (quarantined cells carry no report). A
    /// completed cell missing its resume digest counts as an
    /// unrecovered default, never a silent success.
    fn completed(&self) -> impl Iterator<Item = (&StormSpec, &SimReport, StormRecovery)> {
        self.runs.iter().filter_map(|(spec, _, report, recovery)| {
            report
                .as_ref()
                .map(|r| (spec, r, recovery.unwrap_or_default()))
        })
    }

    /// Cells restored from the campaign journal instead of executed in
    /// this invocation (zero without `--resume`).
    pub fn journal_skips(&self) -> u64 {
        self.journal_skips
    }

    /// Exact p50/p90/p99/max over the executed cells' wall times (ms);
    /// `None` when every cell was journal-restored. Wall-clock data:
    /// surfaced only in the document header, never in the deterministic
    /// body.
    pub fn cell_wall_quantiles(&self) -> Option<QuantileSummary> {
        QuantileSummary::exact(&self.cell_walls)
    }

    /// Supervisor accounting over the campaign.
    pub fn harness(&self) -> HarnessStats {
        let mut stats = HarnessStats::from_statuses(self.runs.iter().map(|(_, s, _, _)| s));
        stats.journal_skips = self.journal_skips;
        stats
    }

    /// The quarantined cells' `(label, reason)` pairs, in matrix order.
    pub fn poisoned(&self) -> Vec<(String, String)> {
        self.runs
            .iter()
            .filter_map(|(spec, status, _, _)| match status {
                CellStatus::Poisoned { reason, .. } => Some((spec.label(), reason.clone())),
                _ => None,
            })
            .collect()
    }

    /// Total perceptible-window misses across every completed cell.
    pub fn total_misses(&self) -> u64 {
        self.completed()
            .map(|(_, r, _)| r.resilience.perceptible_window_misses)
            .sum()
    }

    /// Total invariant violations across every completed cell.
    pub fn total_violations(&self) -> u64 {
        self.completed()
            .map(|(_, r, _)| r.resilience.invariant_violations)
            .sum()
    }

    /// Whether every completed cell's resume drill restored and matched
    /// bytes (quarantined cells are the harness's concern, not the
    /// resume drill's).
    pub fn all_recovered(&self) -> bool {
        self.completed()
            .all(|(_, _, rec)| rec.restore_ok && rec.resumed_identical)
    }

    /// Per-policy aggregates over the completed cells, sorted by policy
    /// name.
    pub fn aggregates(&self) -> Vec<PolicyOverload> {
        let mut by_policy: BTreeMap<String, Vec<(&SimReport, StormRecovery)>> = BTreeMap::new();
        for (spec, report, rec) in self.completed() {
            by_policy
                .entry(spec.policy.name())
                .or_default()
                .push((report, rec));
        }
        by_policy
            .into_iter()
            .map(|(policy, cells)| PolicyOverload {
                policy,
                runs: cells.len() as u64,
                storm_registrations: cells
                    .iter()
                    .map(|(r, _)| r.overload.storm_registrations)
                    .sum(),
                admitted: cells.iter().map(|(r, _)| r.overload.admitted).sum(),
                deferred: cells.iter().map(|(r, _)| r.overload.deferred).sum(),
                rejected: cells.iter().map(|(r, _)| r.overload.rejected).sum(),
                shed: cells.iter().map(|(r, _)| r.overload.shed).sum(),
                demotions: cells.iter().map(|(r, _)| r.overload.demotions).sum(),
                tier_changes: cells.iter().map(|(r, _)| r.overload.tier_changes).sum(),
                invariant_violations: cells
                    .iter()
                    .map(|(r, _)| r.resilience.invariant_violations)
                    .sum(),
                perceptible_window_misses: cells
                    .iter()
                    .map(|(r, _)| r.resilience.perceptible_window_misses)
                    .sum(),
                all_resumed_identical: cells.iter().all(|(_, rec)| rec.resumed_identical),
                all_restores_ok: cells.iter().all(|(_, rec)| rec.restore_ok),
            })
            .collect()
    }

    /// Serializes the campaign as the `simty-bench-storm/v1` document
    /// body. Fully deterministic: no wall-clock or per-invocation
    /// fields, so parallel, sequential, and journal-resumed campaigns
    /// produce byte-identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"simty-bench-storm/v1\"");
        out.push_str(&format!(",\"runs\":{}", self.runs.len()));
        out.push_str(&format!(",\"harness\":{}", self.harness().to_json()));
        out.push_str(",\"results\":[");
        for (i, (spec, status, report, recovery)) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rec = recovery.unwrap_or_default();
            match report {
                Some(report) => out.push_str(&format!(
                    "{{\"label\":{},\"profile\":{},\"seed\":{},\"status\":{},\
                     \"checkpoints\":{},\"restore_ok\":{},\"resumed_identical\":{},\
                     \"report\":{}}}",
                    json_string(&spec.label()),
                    json_string(spec.profile.name()),
                    spec.seed,
                    json_string(&status.token()),
                    rec.checkpoints,
                    rec.restore_ok,
                    rec.resumed_identical,
                    report_to_json(report)
                )),
                None => out.push_str(&format!(
                    "{{\"label\":{},\"profile\":{},\"seed\":{},\"status\":{},\
                     \"checkpoints\":null,\"restore_ok\":null,\"resumed_identical\":null,\
                     \"report\":null}}",
                    json_string(&spec.label()),
                    json_string(spec.profile.name()),
                    spec.seed,
                    json_string(&status.token()),
                )),
            }
        }
        out.push_str("],\"policies\":[");
        for (i, agg) in self.aggregates().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"policy\":{},\"runs\":{},\"storm_registrations\":{},\"admitted\":{},\
                 \"deferred\":{},\"rejected\":{},\"shed\":{},\"demotions\":{},\
                 \"tier_changes\":{},\"invariant_violations\":{},\
                 \"perceptible_window_misses\":{},\"all_resumed_identical\":{},\
                 \"all_restores_ok\":{}}}",
                json_string(&agg.policy),
                agg.runs,
                agg.storm_registrations,
                agg.admitted,
                agg.deferred,
                agg.rejected,
                agg.shed,
                agg.demotions,
                agg.tier_changes,
                agg.invariant_violations,
                agg.perceptible_window_misses,
                agg.all_resumed_identical,
                agg.all_restores_ok,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The full on-disk document: [`to_json`](Self::to_json) plus the
    /// per-invocation headers — `journal_skips` (how many cells this
    /// invocation restored from the journal instead of running) and the
    /// executed cells' wall-time quantiles (`null` when every cell was
    /// restored).
    pub fn to_json_document(&self) -> String {
        let quantiles = QuantileSummary::exact(&self.cell_walls)
            .map_or_else(|| "null".to_owned(), |q| q.to_json());
        self.to_json().replacen(
            "{\"schema\":\"simty-bench-storm/v1\"",
            &format!(
                "{{\"schema\":\"simty-bench-storm/v1\",\"journal_skips\":{},\
                 \"quantiles\":{{\"cell_wall_ms\":{quantiles}}}",
                self.journal_skips
            ),
            1,
        )
    }

    /// Writes [`to_json_document`](Self::to_json_document) to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(profile: StormProfile, policy: PolicyKind) -> StormSpec {
        StormSpec {
            policy,
            scenario: Scenario::Light,
            profile,
            seed: 1,
            duration: SimDuration::from_hours(1),
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in StormProfile::ALL {
            assert_eq!(StormProfile::parse(p.name()), Some(p));
        }
        assert_eq!(StormProfile::parse("bogus"), None);
    }

    #[test]
    fn matrix_is_policy_major() {
        let specs = storm_matrix(
            &[PolicyKind::Native, PolicyKind::Simty],
            &[Scenario::Light],
            &StormProfile::ALL,
            2,
            SimDuration::from_hours(1),
        );
        assert_eq!(specs.len(), 2 * 5 * 2);
        assert_eq!(specs[0].policy, PolicyKind::Native);
        assert_eq!(specs[0].seed, 1);
        assert_eq!(specs[1].seed, 2);
        assert_eq!(specs.last().unwrap().policy, PolicyKind::Simty);
    }

    #[test]
    fn quota_storm_rejects_and_holds_invariants() {
        let (report, rec) = tiny(StormProfile::QuotaStorm, PolicyKind::Simty).run();
        let ov = &report.overload;
        assert!(ov.storm_registrations > 0);
        assert!(ov.rejected > 0, "quota never pushed back: {ov:?}");
        assert!(ov.demotions > 0, "storm app never demoted: {ov:?}");
        assert_eq!(report.resilience.perceptible_window_misses, 0);
        assert_eq!(report.resilience.invariant_violations, 0);
        assert!(rec.restore_ok && rec.resumed_identical, "{rec:?}");
    }

    #[test]
    fn drain_profiles_traverse_their_tiers() {
        let (saver, _) = tiny(StormProfile::DrainSaver, PolicyKind::Simty).run();
        assert_eq!(saver.overload.final_tier, "saver", "{:?}", saver.overload);
        assert!(saver.overload.time_in_saver_ms > 0);
        let (critical, rec) = tiny(StormProfile::DrainCritical, PolicyKind::Simty).run();
        assert_eq!(
            critical.overload.final_tier, "critical",
            "{:?}",
            critical.overload
        );
        assert!(critical.overload.time_in_critical_ms > 0);
        assert_eq!(critical.resilience.perceptible_window_misses, 0);
        assert!(rec.restore_ok && rec.resumed_identical, "{rec:?}");
    }

    #[test]
    fn unprotected_cell_reports_no_pushback() {
        let (report, _) = tiny(StormProfile::Unprotected, PolicyKind::Native).run();
        let ov = &report.overload;
        assert!(ov.storm_registrations > 0);
        assert_eq!(ov.rejected + ov.shed + ov.demotions, 0, "{ov:?}");
        // The guarantee holds even without the defences.
        assert_eq!(report.resilience.perceptible_window_misses, 0);
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let specs = storm_matrix(
            &[PolicyKind::Native, PolicyKind::Simty],
            &[Scenario::Light],
            &[StormProfile::QuotaStorm, StormProfile::StormAndDrain],
            1,
            SimDuration::from_hours(1),
        );
        let results = run_storm(&specs, 1);
        assert!(results
            .runs()
            .iter()
            .all(|(_, status, report, recovery)| *status == CellStatus::Ok
                && report.is_some()
                && recovery.is_some()));
        assert!(results.poisoned().is_empty());
        let harness = results.harness();
        assert_eq!((harness.cells, harness.ok, harness.poisoned), (4, 4, 0));
        let sequential = results.to_json();
        let parallel = run_storm(&specs, 3).to_json();
        assert_eq!(sequential, parallel);
        assert!(sequential.contains("\"schema\":\"simty-bench-storm/v1\""));
        assert!(sequential.contains("\"storm_registrations\""));
        assert!(sequential.contains("\"status\":\"ok\""));
        assert!(sequential.contains("\"harness\":{\"cells\":4"));
        assert!(!sequential.contains("journal_skips"));
        assert!(results
            .to_json_document()
            .starts_with("{\"schema\":\"simty-bench-storm/v1\",\"journal_skips\":0"));
    }

    #[test]
    fn recovery_extra_round_trips() {
        let rec = StormRecovery {
            checkpoints: 7,
            resumed_identical: true,
            restore_ok: true,
        };
        assert_eq!(StormRecovery::from_extra(&rec.to_extra()), Some(rec));
        assert_eq!(StormRecovery::from_extra(""), None);
        assert_eq!(StormRecovery::from_extra("1:1"), None);
        assert_eq!(StormRecovery::from_extra("x:1:1"), None);
    }
}
