//! `SweepRunner`: deterministic parallel batch execution of simulation
//! runs.
//!
//! Every paper-facing binary runs a grid of full simulations (policy ×
//! scenario × seed × β × granularity × power perturbation). Each
//! [`Simulation`](simty::sim::Simulation) is seed-deterministic and
//! independent, so the grid is embarrassingly parallel. A [`Sweep`]
//! collects jobs up front, fans them out over `std::thread` workers, and
//! returns results keyed by enqueue order — so a parallel sweep yields
//! **byte-identical reports** to a sequential one, independent of
//! completion order.
//!
//! Identical [`RunSpec`]s are deduplicated at enqueue time: both handles
//! resolve to the single shared run. The sensitivity study leans on this
//! to compute its NATIVE/SIMTY baselines once instead of once per
//! perturbation point.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use simty::experiments::RunSpec;
use simty::obs::telemetry::{EventKind, TelemetrySink};
use simty::obs::{QuantileSummary, StageProfile};
use simty::sim::json::{json_number, json_string, report_to_json};
use simty::sim::{SimReport, Vfs};

use crate::journal::{CampaignJournal, JournalError};
use crate::supervisor::{supervise, CellStatus, HarnessStats, SupervisorConfig};

/// A cell's task: re-runnable (the supervisor may retry it) and
/// shareable across the watchdog thread, producing a [`JobResult`].
pub type TaskFn = Arc<dyn Fn() -> JobResult + Send + Sync + 'static>;

/// What a sweep job yields: the run's report, plus the engine's
/// per-stage wall-clock profile when the job captured one, plus an
/// optional campaign-defined `extra` payload that rides along into the
/// campaign journal (e.g. soak's recovery digest). Closure jobs that
/// only have a [`SimReport`] convert via `From` (no profile, no extra).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The run's report.
    pub report: SimReport,
    /// Per-stage self-profiling, when captured
    /// (e.g. via [`RunSpec::run_instrumented`]).
    pub stages: Option<StageProfile>,
    /// Campaign-defined opaque payload, journaled with the report and
    /// restored on `--resume` (so campaigns that derive per-cell data
    /// beyond the report survive a skip).
    pub extra: Option<String>,
}

impl From<SimReport> for JobResult {
    fn from(report: SimReport) -> Self {
        JobResult {
            report,
            stages: None,
            extra: None,
        }
    }
}

impl From<(SimReport, StageProfile)> for JobResult {
    fn from((report, stages): (SimReport, StageProfile)) -> Self {
        JobResult {
            report,
            stages: Some(stages),
            extra: None,
        }
    }
}

struct Job {
    label: String,
    task: TaskFn,
}

/// Handle to an enqueued run; index into [`SweepResults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunHandle(usize);

/// A batch of simulation runs executed across worker threads.
///
/// # Examples
///
/// ```
/// use simty_bench::sweep::Sweep;
/// use simty_bench::{PolicyKind, RunSpec, Scenario};
/// use simty::core::SimDuration;
///
/// let mut sweep = Sweep::new();
/// let native = sweep.spec(
///     RunSpec::paper(PolicyKind::Native, Scenario::Light, 1)
///         .with_duration(SimDuration::from_mins(5)),
/// );
/// let results = sweep.run_with_threads(2);
/// assert!(results.report(native).total_deliveries > 0);
/// ```
#[derive(Default)]
pub struct Sweep {
    jobs: Vec<Job>,
    specs: Vec<(RunSpec, RunHandle)>,
    no_obs: bool,
    supervisor: SupervisorConfig,
    journal: Option<(PathBuf, String)>,
    journal_vfs: Option<Arc<dyn Vfs>>,
    telemetry: Option<TelemetrySink>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Overrides the cell-supervision policy (retry budget, deadline).
    /// The default supervises with one transient retry and no deadline.
    pub fn with_supervisor(&mut self, config: SupervisorConfig) -> &mut Self {
        self.supervisor = config;
        self
    }

    /// Attaches a `simty-campaign/v1` journal in `dir` under the given
    /// campaign kind (`"sweep"`, `"chaos"`, ...): completed cells are
    /// appended as they finish, and cells already journaled by a
    /// previous (interrupted) invocation are restored instead of re-run.
    pub fn with_journal(&mut self, dir: impl Into<PathBuf>, kind: impl Into<String>) -> &mut Self {
        self.journal = Some((dir.into(), kind.into()));
        self
    }

    /// Routes the attached journal's I/O through an explicit [`Vfs`]
    /// (e.g. [`simty::sim::FaultVfs`]), so tests can kill journal
    /// appends mid-flight.
    pub fn with_journal_vfs(&mut self, vfs: Arc<dyn Vfs>) -> &mut Self {
        self.journal_vfs = Some(vfs);
        self
    }

    /// Attaches a telemetry sink: workers publish cell lifecycle and
    /// journal-write events to it as they happen, and warnings that
    /// would otherwise interleave on stderr under `--threads N` (e.g.
    /// journal append failures) are routed through the bus instead.
    /// Publishing never blocks — a slow drainer drops events (see
    /// [`TelemetrySink`]), so the deterministic campaign payload is
    /// unaffected.
    pub fn with_telemetry(&mut self, sink: TelemetrySink) -> &mut Self {
        self.telemetry = Some(sink);
        self
    }

    /// Makes every subsequently enqueued spec run uninstrumented (the
    /// engine's no-obs fast path): reports carry a `null` metrics block
    /// and the aggregated stage profile stays empty, but labels and
    /// every deterministic report field are unchanged — so instrumented
    /// and uninstrumented sweeps of one grid stay comparable.
    pub fn no_obs(&mut self) -> &mut Self {
        self.no_obs = true;
        self
    }

    /// Number of enqueued (deduplicated) jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs are enqueued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueues a [`RunSpec`], deduplicating against previously enqueued
    /// specs: an identical spec returns the existing handle and the run
    /// executes once.
    pub fn spec(&mut self, spec: RunSpec) -> RunHandle {
        let spec = if self.no_obs { spec.with_no_obs() } else { spec };
        if let Some((_, handle)) = self.specs.iter().find(|(s, _)| *s == spec) {
            return *handle;
        }
        let label = spec.label();
        let run = spec.clone();
        let handle = self.push(label, move || run.run_instrumented());
        self.specs.push((spec, handle));
        handle
    }

    /// Enqueues every spec in order, returning one handle per spec
    /// (duplicates share handles).
    pub fn specs<I: IntoIterator<Item = RunSpec>>(&mut self, specs: I) -> Vec<RunHandle> {
        specs.into_iter().map(|s| self.spec(s)).collect()
    }

    /// Enqueues an arbitrary labelled job (for runs that need bespoke
    /// setup, e.g. the ablation's push-storm and DURSIM scenarios). No
    /// deduplication is attempted for closure jobs.
    pub fn job<R: Into<JobResult>>(
        &mut self,
        label: impl Into<String>,
        task: impl Fn() -> R + Send + Sync + 'static,
    ) -> RunHandle {
        self.push(label.into(), task)
    }

    fn push<R: Into<JobResult>>(
        &mut self,
        label: String,
        task: impl Fn() -> R + Send + Sync + 'static,
    ) -> RunHandle {
        let handle = RunHandle(self.jobs.len());
        self.jobs.push(Job {
            label,
            task: Arc::new(move || task().into()),
        });
        handle
    }

    /// Executes the batch on every available core (see
    /// [`run_with_threads`](Self::run_with_threads)).
    pub fn run(self) -> SweepResults {
        let threads = available_threads();
        self.run_with_threads(threads)
    }

    /// Executes the batch on `threads` workers and collects the results
    /// in enqueue order.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, if a worker thread fails to join, or
    /// if an attached journal cannot be opened (use
    /// [`try_run_with_threads`](Self::try_run_with_threads) to handle
    /// journal errors).
    pub fn run_with_threads(self, threads: usize) -> SweepResults {
        match self.try_run_with_threads(threads) {
            Ok(results) => results,
            Err(e) => panic!("campaign journal failed: {e}"),
        }
    }

    /// Executes the batch on `threads` workers and collects the results
    /// in enqueue order.
    ///
    /// Work is claimed from a shared index, so scheduling is dynamic, but
    /// each result lands at its job's index: output is byte-identical
    /// regardless of thread count or completion order. Every cell runs
    /// under the [supervisor](crate::supervisor): a panicking or hung
    /// cell is retried or quarantined (status
    /// [`CellStatus::Poisoned`]) and the rest of the batch continues.
    /// With a journal attached, cells completed by a previous
    /// interrupted invocation are restored instead of re-run.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the attached journal cannot be opened or
    /// belongs to a different campaign. Journal *append* failures are
    /// reported to stderr and do not fail the campaign (the affected
    /// cells simply re-run on resume).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread fails to join.
    pub fn try_run_with_threads(self, threads: usize) -> Result<SweepResults, JournalError> {
        assert!(threads > 0, "a sweep needs at least one worker");
        let total = self.jobs.len();
        let started = Instant::now();

        let outcomes: Vec<Mutex<Option<Outcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let mut journal = None;
        let mut journal_skips = 0u64;
        if let Some((dir, kind)) = &self.journal {
            let labels: Vec<String> = self.jobs.iter().map(|j| j.label.clone()).collect();
            let (handle, replay) = match &self.journal_vfs {
                Some(vfs) => CampaignJournal::open_with(dir, kind, &labels, Arc::clone(vfs))?,
                None => CampaignJournal::open(dir, kind, &labels)?,
            };
            for entry in replay.entries {
                let Some(slot) = outcomes.get(entry.index) else {
                    continue;
                };
                let mut slot = slot.lock().expect("outcome slot lock");
                if slot.is_some() {
                    continue; // duplicate record; first wins
                }
                *slot = Some(Outcome {
                    label: labels[entry.index].clone(),
                    report: Some(entry.report),
                    stages: None,
                    wall: Duration::ZERO,
                    status: entry.status,
                    extra: entry.extra,
                });
                journal_skips += 1;
            }
            journal = Some(handle);
        }

        let supervisor = self.supervisor;
        let jobs = self.jobs;
        let next = AtomicUsize::new(0);
        let journal = journal.as_ref();
        let telemetry = self.telemetry.as_ref();
        std::thread::scope(|scope| {
            let workers = threads.min(total.max(1));
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    if outcomes[idx].lock().expect("outcome slot lock").is_some() {
                        continue; // restored from the journal
                    }
                    let job = &jobs[idx];
                    if let Some(sink) = telemetry {
                        sink.publish(EventKind::CellStarted {
                            index: idx,
                            label: job.label.clone(),
                        });
                    }
                    let job_started = Instant::now();
                    let (result, status) = supervise(&supervisor, job.task.clone());
                    let (report, stages, extra) = match result {
                        Some(r) => (Some(r.report), r.stages, r.extra),
                        None => (None, None, None),
                    };
                    if let (Some(journal), Some(report)) = (journal, &report) {
                        match journal.record(idx, &status, report, extra.as_deref()) {
                            Ok(()) => {
                                if let Some(sink) = telemetry {
                                    sink.publish(EventKind::JournalWrite { index: idx, ok: true });
                                }
                            }
                            Err(e) => {
                                let warning = format!(
                                    "campaign journal append failed for cell {idx} \
                                     (`{}`): {e}; the cell will re-run on resume",
                                    job.label
                                );
                                // With a bus attached the warning travels as a
                                // structured event; otherwise fall back to the
                                // (interleaving) stderr line.
                                match telemetry {
                                    Some(sink) => {
                                        sink.publish(EventKind::JournalWrite {
                                            index: idx,
                                            ok: false,
                                        });
                                        sink.warn(warning);
                                    }
                                    None => eprintln!("warning: {warning}"),
                                }
                            }
                        }
                    }
                    let wall = job_started.elapsed();
                    if let Some(sink) = telemetry {
                        sink.publish(EventKind::CellFinished {
                            index: idx,
                            label: job.label.clone(),
                            status: status.token(),
                            cell_wall_ms: wall.as_secs_f64() * 1e3,
                        });
                    }
                    *outcomes[idx].lock().expect("outcome slot lock") = Some(Outcome {
                        label: job.label.clone(),
                        report,
                        stages,
                        wall,
                        status,
                        extra,
                    });
                }));
            }
            for handle in handles {
                handle.join().expect("sweep worker panicked");
            }
        });

        Ok(SweepResults {
            outcomes: outcomes
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("outcome slot lock")
                        .expect("every job produced an outcome")
                })
                .collect(),
            wall: started.elapsed(),
            threads,
            journal_skips,
        })
    }
}

/// Shared harness options for the campaign runners (`run_chaos_with`,
/// `run_soak_with`, `run_storm_with`): worker count, cell supervision
/// policy, and the optional journal directory that enables `--resume`.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads (defaults to every available core).
    pub threads: usize,
    /// Cell supervision policy (retry budget, deadline).
    pub supervisor: SupervisorConfig,
    /// Campaign journal directory; `Some` enables crash-tolerant
    /// resume (completed cells are restored instead of re-run).
    pub journal_dir: Option<PathBuf>,
    /// Telemetry sink the campaign's workers publish lifecycle events
    /// to (see [`Sweep::with_telemetry`]); `None` keeps the campaign
    /// silent.
    pub telemetry: Option<TelemetrySink>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: available_threads(),
            supervisor: SupervisorConfig::default(),
            journal_dir: None,
            telemetry: None,
        }
    }
}

impl CampaignOptions {
    /// Default options with an explicit worker count.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        CampaignOptions {
            threads,
            ..CampaignOptions::default()
        }
    }
}

/// The number of workers [`Sweep::run`] uses: all available cores.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One finished (or quarantined, or journal-restored) run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The label given at enqueue time (the spec label for spec jobs).
    pub label: String,
    /// The run's report; `None` when the cell was poisoned.
    pub report: Option<SimReport>,
    /// Per-stage self-profiling, when the job captured one (spec jobs
    /// always do; closure jobs may not, and journal-restored cells
    /// never do).
    pub stages: Option<StageProfile>,
    /// Wall-clock time of this run alone (zero for journal-restored
    /// cells).
    pub wall: Duration,
    /// What the supervisor observed for this cell.
    pub status: CellStatus,
    /// The campaign-defined payload the job returned (journaled and
    /// restored alongside the report).
    pub extra: Option<String>,
}

/// The results of a [`Sweep`], in enqueue order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    outcomes: Vec<Outcome>,
    wall: Duration,
    threads: usize,
    journal_skips: u64,
}

impl SweepResults {
    /// The report for a handle returned at enqueue time.
    ///
    /// # Panics
    ///
    /// Panics if the cell was poisoned — callers that must survive
    /// quarantined cells use [`try_report`](Self::try_report).
    pub fn report(&self, handle: RunHandle) -> &SimReport {
        let o = &self.outcomes[handle.0];
        match &o.report {
            Some(report) => report,
            None => panic!(
                "cell `{}` was quarantined ({}) and has no report",
                o.label,
                o.status.token()
            ),
        }
    }

    /// The report for a handle, or `None` if the cell was poisoned.
    pub fn try_report(&self, handle: RunHandle) -> Option<&SimReport> {
        self.outcomes[handle.0].report.as_ref()
    }

    /// Reports for a batch of handles (e.g. one per seed), in order.
    pub fn reports(&self, handles: &[RunHandle]) -> Vec<SimReport> {
        handles.iter().map(|h| self.report(*h).clone()).collect()
    }

    /// All outcomes in enqueue order.
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// Number of runs executed.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the sweep held no runs.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Worker threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cells restored from the campaign journal instead of executed in
    /// this invocation (zero without a journal).
    pub fn journal_skips(&self) -> u64 {
        self.journal_skips
    }

    /// Supervisor accounting over the batch: derived from the per-cell
    /// statuses (identical for an executed and a journal-restored cell)
    /// plus this invocation's `journal_skips`.
    pub fn harness(&self) -> HarnessStats {
        let mut stats = HarnessStats::from_statuses(self.outcomes.iter().map(|o| &o.status));
        stats.journal_skips = self.journal_skips;
        stats
    }

    /// The poisoned cells' `(label, reason)` pairs, in enqueue order
    /// (empty when every cell completed).
    pub fn poisoned(&self) -> Vec<(String, String)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                CellStatus::Poisoned { reason, .. } => Some((o.label.clone(), reason.clone())),
                _ => None,
            })
            .collect()
    }

    /// End-to-end wall-clock time of the batch.
    pub fn total_wall(&self) -> Duration {
        self.wall
    }

    /// Sum of the individual run times — what a sequential execution
    /// would have cost (modulo scheduling overhead).
    pub fn sequential_wall(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// The per-stage self-profiling folded across every run that
    /// captured one (wall-clock nanoseconds and call counts; host
    /// timing, not deterministic).
    pub fn stage_profile(&self) -> StageProfile {
        let mut total = StageProfile::new();
        for o in &self.outcomes {
            if let Some(stages) = &o.stages {
                total.merge(stages);
            }
        }
        total
    }

    /// Wall times (ms) of the cells that actually executed in this
    /// invocation. Journal-restored cells (wall zero) are excluded —
    /// they cost this invocation nothing.
    pub fn cell_walls(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.wall > Duration::ZERO)
            .map(|o| o.wall.as_secs_f64() * 1_000.0)
            .collect()
    }

    /// Exact p50/p90/p99/max over [`cell_walls`](Self::cell_walls), or
    /// `None` when no cell actually executed. Wall-clock data:
    /// non-deterministic, header-only.
    pub fn cell_wall_quantiles(&self) -> Option<QuantileSummary> {
        QuantileSummary::exact(&self.cell_walls())
    }

    /// Completed runs per second of wall-clock time.
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Serializes the sweep as the `BENCH_sweep.json` document: batch
    /// timing, the aggregated per-stage self-profile, the supervisor's
    /// `harness` block, and, per run, its label, status, wall-clock, and
    /// full report (`null` for poisoned cells).
    ///
    /// Only the `results[*].label`/`status`/`report` fields and the
    /// `harness` block are deterministic; the timing fields,
    /// `journal_skips`, and the `stages` block vary run to run (the
    /// determinism regression test compares
    /// [`reports_json`](Self::reports_json) instead).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!(
            "\"schema\":{},\"threads\":{},\"runs\":{},\"total_wall_ms\":{},\"sequential_wall_ms\":{},\"runs_per_sec\":{},\"journal_skips\":{},\"harness\":{},\"stages\":{},\"quantiles\":{{\"cell_wall_ms\":{}}},\"results\":[",
            json_string("simty-bench-sweep/v1"),
            self.threads,
            self.outcomes.len(),
            json_number(self.wall.as_secs_f64() * 1_000.0),
            json_number(self.sequential_wall().as_secs_f64() * 1_000.0),
            json_number(self.runs_per_sec()),
            self.journal_skips,
            self.harness().to_json(),
            self.stage_profile().to_json(),
            self.cell_wall_quantiles()
                .map_or_else(|| "null".to_owned(), |q| q.to_json()),
        ));
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"status\":{},\"wall_ms\":{},\"report\":{}}}",
                json_string(&o.label),
                json_string(&o.status.token()),
                json_number(o.wall.as_secs_f64() * 1_000.0),
                o.report
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), report_to_json)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Serializes only the deterministic payload: a JSON array of
    /// `{label, status, report}` in enqueue order. Two sweeps over the
    /// same grid must produce byte-identical output regardless of
    /// thread count — and regardless of how many cells were restored
    /// from a campaign journal.
    pub fn reports_json(&self) -> String {
        let mut out = String::new();
        out.push('[');
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"status\":{},\"report\":{}}}",
                json_string(&o.label),
                json_string(&o.status.token()),
                o.report
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), report_to_json)
            ));
        }
        out.push(']');
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Parses a `--threads N` override from raw binary arguments, falling
/// back to all cores. Shared by the experiment binaries.
pub fn threads_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(available_threads)
}

/// Parses a `--json PATH` override from raw binary arguments.
pub fn json_path_from_args(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simty::core::SimDuration;
    use simty::experiments::{PolicyKind, Scenario};

    fn quick(policy: PolicyKind, seed: u64) -> RunSpec {
        RunSpec::paper(policy, Scenario::Light, seed)
            .with_duration(SimDuration::from_mins(5))
    }

    #[test]
    fn spec_dedup_shares_handles() {
        let mut sweep = Sweep::new();
        let a = sweep.spec(quick(PolicyKind::Native, 1));
        let b = sweep.spec(quick(PolicyKind::Simty, 1));
        let c = sweep.spec(quick(PolicyKind::Native, 1));
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let grid = || {
            let mut sweep = Sweep::new();
            for policy in [PolicyKind::Native, PolicyKind::Simty] {
                for seed in 1..=2 {
                    sweep.spec(quick(policy, seed));
                }
            }
            sweep
        };
        let sequential = grid().run_with_threads(1);
        let parallel = grid().run_with_threads(4);
        assert_eq!(sequential.reports_json(), parallel.reports_json());
        assert_eq!(sequential.len(), 4);
    }

    #[test]
    fn handles_resolve_in_enqueue_order() {
        let mut sweep = Sweep::new();
        let native = sweep.spec(quick(PolicyKind::Native, 1));
        let simty = sweep.spec(quick(PolicyKind::Simty, 1));
        let job = sweep.job("custom", || quick(PolicyKind::Exact, 1).run());
        let results = sweep.run_with_threads(3);
        assert_eq!(results.report(native).policy, "NATIVE");
        assert_eq!(results.report(simty).policy, "SIMTY");
        assert_eq!(results.report(job).policy, "EXACT");
        assert_eq!(results.outcomes()[2].label, "custom");
        assert!(results.runs_per_sec() > 0.0);
    }

    #[test]
    fn json_document_shape() {
        let mut sweep = Sweep::new();
        sweep.spec(quick(PolicyKind::Native, 1));
        let results = sweep.run_with_threads(1);
        let json = results.to_json();
        for key in [
            "\"schema\":\"simty-bench-sweep/v1\"",
            "\"threads\":1",
            "\"runs\":1",
            "\"total_wall_ms\"",
            "\"runs_per_sec\"",
            "\"stages\":{\"queue_search\":{\"ns\":",
            "\"selection\":{",
            "\"event_dispatch\":{",
            "\"checkpoint_io\":{",
            "\"results\":[",
            "\"label\":\"NATIVE/light/seed1/b0.96/300s\"",
            "\"report\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn arg_parsing_helpers() {
        let args: Vec<String> = ["--threads", "3", "--json", "out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(threads_from_args(&args), 3);
        assert_eq!(json_path_from_args(&args), Some("out.json".into()));
        assert!(json_path_from_args(&[]).is_none());
        assert!(threads_from_args(&[]) >= 1);
    }
}
