//! Fleet-scale campaigns: shard a large device population across worker
//! threads with streaming aggregation, supervised fault isolation, and
//! crash-tolerant resume.
//!
//! A *fleet* runs `devices` independent device instances per policy.
//! Each device draws its workload mix and RNG seed deterministically
//! from `(fleet_seed, device_index)` through a shared
//! [`ScenarioCatalog`], so the population is identical no matter how it
//! is sharded or how many threads run it. Devices are split into
//! `shards` contiguous ranges per policy; each shard is one supervised
//! [`Sweep`] cell that runs its devices **sequentially in index order**
//! and folds every [`SimReport`] into a single running aggregate — fleet
//! memory is O(shards), not O(devices).
//!
//! Because every `SimReport` field is mergeable (energies and counters
//! sum, delay means re-weight by count, maxima take the max), a shard's
//! aggregate *is* a `SimReport` — which lets fleets reuse the campaign
//! journal, the supervisor, and the deterministic result plumbing of
//! [`Sweep`] unchanged:
//!
//! * a panicking device poisons only its own shard (the supervisor
//!   captures the payload; the rest of the fleet completes);
//! * completed shards are journaled (`kind = "fleet"`) and restored by
//!   `--resume` instead of re-run;
//! * shards additionally checkpoint mid-range through the Vfs-backed
//!   [`CheckpointStore`] every `checkpoint_stride` devices, so a killed
//!   campaign resumes from the last device stride, not the shard start;
//! * the deterministic payload ([`FleetResults::deterministic_json`])
//!   is byte-identical on any thread count, after any interruption.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use simty::apps::{DeviceMix, ScenarioCatalog, WorkloadBuilder};
use simty::core::{HardwareComponent, SimDuration, SimTime};
use simty::device::energy::EnergyMeter;
use simty::experiments::PolicyKind;
use simty::obs::telemetry::{EventKind, TelemetrySink};
use simty::obs::{Histogram, MetricsRegistry, QuantileSummary};
use simty::sim::codec::{esc, unesc};
use simty::sim::json::{json_number, json_string, report_to_json};
use simty::sim::{
    Checkpoint, CheckpointStore, DelayStats, OverloadStats, ResilienceStats, SimConfig, SimReport,
    Simulation,
};

use crate::journal::JournalError;
use crate::supervisor::HarnessStats;
use crate::sweep::{CampaignOptions, JobResult, Outcome, Sweep, SweepResults};

/// Schema tag of the fleet JSON document.
pub const FLEET_SCHEMA: &str = "simty-fleet/v1";

/// Bucket bounds (mW) of the per-device average-power histogram each
/// shard streams into. Power is duration-independent (unlike total
/// energy), so one set of bounds serves every `--minutes` choice; the
/// range spans idle light devices (~60 mW) through heavy long-tail
/// synthetic mixes. Partials merge only across identical bounds, so
/// this is a fleet-wide constant.
pub const POWER_BOUNDS: [f64; 8] = [
    60.0, 75.0, 90.0, 105.0, 120.0, 150.0, 200.0, 300.0,
];

/// Per-shard observability caps: spans and audits kept per device run.
/// Fleets shrink these far below the interactive defaults so 100k-device
/// campaigns keep instrumentation memory O(shards).
pub const FLEET_SPAN_CAPACITY: usize = 128;
/// See [`FLEET_SPAN_CAPACITY`].
pub const FLEET_AUDIT_CAPACITY: usize = 64;

/// Parameters of one fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Device population size (per policy).
    pub devices: u64,
    /// Contiguous device ranges per policy; each is one supervised cell.
    pub shards: usize,
    /// Policies to run the population under (one full population each).
    pub policies: Vec<PolicyKind>,
    /// Fleet seed: the root of every per-device mix draw and RNG seed.
    pub seed: u64,
    /// Simulated duration of each device run.
    pub duration: SimDuration,
    /// Grace-period factor β shared by every device workload.
    pub beta: f64,
    /// Span-ring capacity per device run (see [`FLEET_SPAN_CAPACITY`]).
    pub span_capacity: usize,
    /// Audit-ring capacity per device run.
    pub audit_capacity: usize,
    /// Devices between mid-shard checkpoint markers (0 disables; only
    /// effective when the campaign has a journal directory).
    pub checkpoint_stride: u64,
    /// The weighted scenario catalog every shard samples from.
    pub catalog: Arc<ScenarioCatalog>,
    /// Harness-test hook: the cell at this enqueue index panics instead
    /// of running, exercising shard quarantine end to end.
    pub inject_panic: Option<usize>,
}

impl FleetConfig {
    /// A fleet of `devices` devices with the default shape: 4 shards,
    /// NATIVE vs SIMTY, the paper-mix catalog, 10 simulated minutes per
    /// device, and fleet-bounded observability rings.
    pub fn new(devices: u64) -> Self {
        FleetConfig {
            devices,
            shards: 4,
            policies: vec![PolicyKind::Native, PolicyKind::Simty],
            seed: 1,
            duration: SimDuration::from_mins(10),
            beta: 0.96,
            span_capacity: FLEET_SPAN_CAPACITY,
            audit_capacity: FLEET_AUDIT_CAPACITY,
            checkpoint_stride: 0,
            catalog: Arc::new(ScenarioCatalog::paper_mix()),
            inject_panic: None,
        }
    }

    /// The device range of shard `k` (half-open, even split with the
    /// remainder spread over the leading shards).
    pub fn shard_range(&self, k: usize) -> (u64, u64) {
        let shards = self.shards as u64;
        let k = k as u64;
        (self.devices * k / shards, self.devices * (k + 1) / shards)
    }

    /// The campaign's cells, policy-major: for each policy, one
    /// [`ShardSpec`] per shard, in cell-index order.
    pub fn specs(&self) -> Vec<ShardSpec> {
        let mut specs = Vec::with_capacity(self.policies.len() * self.shards);
        for &policy in &self.policies {
            for k in 0..self.shards {
                let (start, end) = self.shard_range(k);
                specs.push(ShardSpec {
                    policy,
                    label: format!("{}/shard{k:02}", policy.name()),
                    start,
                    end,
                });
            }
        }
        specs
    }
}

/// One fleet cell: a policy evaluated over a half-open device range.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The alignment policy every device of the shard runs.
    pub policy: PolicyKind,
    /// The cell label (`<policy>/shard<k>`), as journaled and reported.
    pub label: String,
    /// First device index of the shard (inclusive).
    pub start: u64,
    /// Past-the-end device index of the shard.
    pub end: u64,
}

/// One device run's outputs: the report plus the instrumentation-ring
/// eviction counts the bounded fleet rings dropped.
#[derive(Debug, Clone)]
pub struct DeviceRun {
    /// The device's full report.
    pub report: SimReport,
    /// Spans evicted by the bounded span ring.
    pub span_evictions: u64,
    /// Audits evicted by the bounded audit ring.
    pub audit_evictions: u64,
}

/// Runs device `device` of the fleet under `policy`: samples its mix
/// and seed from the catalog, builds the workload, and simulates it
/// with fleet-bounded observability rings.
///
/// Pure in `(config.seed, device)`: the same device produces the same
/// report no matter which shard or thread runs it.
///
/// # Panics
///
/// Panics if an alarm fails to register — inside a fleet the supervisor
/// converts that into a poisoned shard.
pub fn run_device(config: &FleetConfig, policy: PolicyKind, device: u64) -> DeviceRun {
    let seed = ScenarioCatalog::device_seed(config.seed, device);
    let mix = config.catalog.sample(config.seed, device);
    let builder = match mix {
        DeviceMix::Light => WorkloadBuilder::light(),
        DeviceMix::Heavy => WorkloadBuilder::heavy(),
        DeviceMix::Synthetic(n) => WorkloadBuilder::synthetic(n, seed),
    };
    let workload = builder
        .with_seed(seed)
        .with_beta(config.beta)
        .with_duration(config.duration)
        .build();
    let sim_config = SimConfig::new()
        .with_duration(config.duration)
        .with_span_capacity(config.span_capacity)
        .with_audit_capacity(config.audit_capacity);
    let mut sim = Simulation::new(policy.build(), sim_config);
    for alarm in workload.alarms {
        sim.register(alarm)
            .unwrap_or_else(|e| panic!("fleet device {device} failed to register: {e}"));
    }
    let report = sim.run();
    let span_evictions = sim.obs().spans().dropped();
    let audit_evictions = sim.obs().audit_dropped();
    DeviceRun {
        report,
        span_evictions,
        audit_evictions,
    }
}

/// An all-zero report to fold into (also what an empty shard reports).
pub fn empty_report(policy: &str) -> SimReport {
    SimReport {
        policy: policy.to_owned(),
        duration: SimDuration::ZERO,
        energy: EnergyMeter::from_parts(0.0, 0.0, 0.0, [0.0; HardwareComponent::ALL.len()])
            .breakdown(),
        cpu_wakeups: 0,
        entry_deliveries: 0,
        total_deliveries: 0,
        awake_time: SimDuration::ZERO,
        wakeup_rows: Vec::new(),
        delays: DelayStats::default(),
        resilience: ResilienceStats::default(),
        overload: OverloadStats::default(),
        metrics_json: String::new(),
    }
}

fn weighted_mean(a: f64, an: u64, b: f64, bn: u64) -> f64 {
    let n = an + bn;
    if n == 0 {
        0.0
    } else {
        (a * an as f64 + b * bn as f64) / n as f64
    }
}

/// Folds `r` into the running aggregate `acc`.
///
/// Every field merges: energy components and counters sum, delay means
/// re-weight by delivery count, maxima take the max, and the resilience
/// means re-weight by their event counts. `acc.policy` and
/// `acc.metrics_json` are left untouched (the shard assigns its own).
/// Folding is associative over disjoint device sets, which is what
/// makes a shard aggregate equal to the fold of its devices' individual
/// reports — the property the fleet proptest pins down.
pub fn fold_report(acc: &mut SimReport, r: &SimReport) {
    acc.duration += r.duration;
    acc.awake_time += r.awake_time;

    let mut components = [0.0_f64; HardwareComponent::ALL.len()];
    for (i, c) in HardwareComponent::ALL.into_iter().enumerate() {
        components[i] = acc.energy.component_mj(c) + r.energy.component_mj(c);
    }
    acc.energy = EnergyMeter::from_parts(
        acc.energy.sleep_mj + r.energy.sleep_mj,
        acc.energy.transition_mj + r.energy.transition_mj,
        acc.energy.awake_base_mj + r.energy.awake_base_mj,
        components,
    )
    .breakdown();

    acc.cpu_wakeups += r.cpu_wakeups;
    acc.entry_deliveries += r.entry_deliveries;
    acc.total_deliveries += r.total_deliveries;

    for row in &r.wakeup_rows {
        match acc
            .wakeup_rows
            .iter_mut()
            .find(|a| a.component == row.component)
        {
            Some(a) => {
                a.actual += row.actual;
                a.expected += row.expected;
            }
            None => acc.wakeup_rows.push(*row),
        }
    }
    // Keep HardwareComponent::ALL order regardless of which device
    // introduced which component.
    acc.wakeup_rows.sort_by_key(|row| {
        HardwareComponent::ALL
            .into_iter()
            .position(|c| c == row.component)
    });

    let d = &mut acc.delays;
    d.perceptible_avg = weighted_mean(
        d.perceptible_avg,
        d.perceptible_count,
        r.delays.perceptible_avg,
        r.delays.perceptible_count,
    );
    d.perceptible_max = d.perceptible_max.max(r.delays.perceptible_max);
    d.perceptible_count += r.delays.perceptible_count;
    d.imperceptible_avg = weighted_mean(
        d.imperceptible_avg,
        d.imperceptible_count,
        r.delays.imperceptible_avg,
        r.delays.imperceptible_count,
    );
    d.imperceptible_max = d.imperceptible_max.max(r.delays.imperceptible_max);
    d.imperceptible_count += r.delays.imperceptible_count;

    let res = &mut acc.resilience;
    res.mean_time_to_recovery_ms = weighted_mean(
        res.mean_time_to_recovery_ms,
        res.recoveries,
        r.resilience.mean_time_to_recovery_ms,
        r.resilience.recoveries,
    );
    res.mean_recovery_ms = weighted_mean(
        res.mean_recovery_ms,
        res.reboots,
        r.resilience.mean_recovery_ms,
        r.resilience.reboots,
    );
    res.invariant_violations += r.resilience.invariant_violations;
    res.perceptible_window_misses += r.resilience.perceptible_window_misses;
    res.interventions += r.resilience.interventions;
    res.forced_releases += r.resilience.forced_releases;
    res.activation_retries += r.resilience.activation_retries;
    res.dropped_fire_retries += r.resilience.dropped_fire_retries;
    res.quarantines += r.resilience.quarantines;
    res.recoveries += r.resilience.recoveries;
    res.app_crashes += r.resilience.app_crashes;
    res.app_restarts += r.resilience.app_restarts;
    res.intervention_overhead_mj += r.resilience.intervention_overhead_mj;
    res.reboots += r.resilience.reboots;
    res.catch_up_entries += r.resilience.catch_up_entries;
    res.worst_catch_up_delay_ms = res
        .worst_catch_up_delay_ms
        .max(r.resilience.worst_catch_up_delay_ms);

    let over = &mut acc.overload;
    over.storm_registrations += r.overload.storm_registrations;
    over.admitted += r.overload.admitted;
    over.deferred += r.overload.deferred;
    over.rejected += r.overload.rejected;
    over.shed += r.overload.shed;
    over.demotions += r.overload.demotions;
    over.tier_changes += r.overload.tier_changes;
    over.time_in_saver_ms += r.overload.time_in_saver_ms;
    over.time_in_critical_ms += r.overload.time_in_critical_ms;
    if over.final_tier == "normal" && r.overload.final_tier != "normal" {
        over.final_tier = r.overload.final_tier.clone();
    }
    over.grace_stretch_milli = over.grace_stretch_milli.max(r.overload.grace_stretch_milli);
}

/// The fold of `reports` in iteration order, starting from
/// [`empty_report`] — what a shard over exactly those devices reports.
pub fn fold_reports<'a, I>(policy: &str, reports: I) -> SimReport
where
    I: IntoIterator<Item = &'a SimReport>,
{
    let mut acc = empty_report(policy);
    for r in reports {
        fold_report(&mut acc, r);
    }
    acc
}

/// A shard's running aggregation state — everything that must survive a
/// mid-shard checkpoint to keep the resumed fold byte-identical.
struct ShardProgress {
    /// The next device index to run.
    cursor: u64,
    report: SimReport,
    devices: u64,
    span_evictions: u64,
    audit_evictions: u64,
    power_hist: Histogram,
}

impl ShardProgress {
    fn fresh(spec: &ShardSpec) -> Self {
        ShardProgress {
            cursor: spec.start,
            report: empty_report(&spec.label),
            devices: 0,
            span_evictions: 0,
            audit_evictions: 0,
            power_hist: Histogram::new(POWER_BOUNDS.to_vec()),
        }
    }

    /// Checkpoint-marker payload: newline-separated `key=value` lines
    /// with the partial report's exact-bits record escaped inline.
    fn encode(&self) -> String {
        format!(
            "cursor={}\ndevices={}\nspan_evict={}\naudit_evict={}\nehist={}\nreport={}",
            self.cursor,
            self.devices,
            self.span_evictions,
            self.audit_evictions,
            esc(&encode_hist(&self.power_hist)),
            esc(&self.report.to_record()),
        )
    }

    fn decode(payload: &str, spec: &ShardSpec) -> Option<Self> {
        let mut cursor = None;
        let mut devices = None;
        let mut span_evictions = None;
        let mut audit_evictions = None;
        let mut power_hist = None;
        let mut report = None;
        for line in payload.lines() {
            let (key, value) = line.split_once('=')?;
            match key {
                "cursor" => cursor = value.parse::<u64>().ok(),
                "devices" => devices = value.parse::<u64>().ok(),
                "span_evict" => span_evictions = value.parse::<u64>().ok(),
                "audit_evict" => audit_evictions = value.parse::<u64>().ok(),
                "ehist" => power_hist = decode_hist(&unesc(value)),
                "report" => report = SimReport::from_record(&unesc(value)),
                _ => return None,
            }
        }
        let progress = ShardProgress {
            cursor: cursor?,
            report: report?,
            devices: devices?,
            span_evictions: span_evictions?,
            audit_evictions: audit_evictions?,
            power_hist: power_hist?,
        };
        // A marker from another shard layout (or another fleet entirely)
        // must not be trusted.
        (progress.cursor >= spec.start && progress.cursor <= spec.end).then_some(progress)
    }

    fn fold_device(&mut self, run: &DeviceRun) {
        fold_report(&mut self.report, &run.report);
        self.devices += 1;
        self.span_evictions += run.span_evictions;
        self.audit_evictions += run.audit_evictions;
        self.power_hist.observe(run.report.average_power_mw());
        self.cursor += 1;
    }

    /// The shard's own metrics snapshot (what lands in the shard
    /// report's `metrics_json`).
    fn registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        registry.describe("fleet", "fleet shard aggregation");
        registry.add("fleet_devices_total", self.devices);
        registry.add("fleet_span_evictions_total", self.span_evictions);
        registry.add("fleet_audit_evictions_total", self.audit_evictions);
        registry.insert_histogram("fleet_device_power_mw", self.power_hist.clone());
        registry
    }

    /// The journaled per-cell payload the fleet document is rebuilt
    /// from after `--resume` (colons inside `ehist` are esc-protected).
    fn extra(&self) -> String {
        format!(
            "devices={},span_evict={},audit_evict={},ehist={}",
            self.devices,
            self.span_evictions,
            self.audit_evictions,
            esc(&encode_hist(&self.power_hist)),
        )
    }
}

/// `counts:…:overflow|sum-bits-hex` — exact-bits so a journal round
/// trip reproduces the histogram byte-for-byte.
fn encode_hist(h: &Histogram) -> String {
    let counts: Vec<String> = h.counts().iter().map(u64::to_string).collect();
    format!("{}|{:016x}", counts.join(":"), h.sum().to_bits())
}

fn decode_hist(s: &str) -> Option<Histogram> {
    let (counts, sum) = s.split_once('|')?;
    let counts: Vec<u64> = counts
        .split(':')
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()?;
    if counts.len() != POWER_BOUNDS.len() + 1 {
        return None;
    }
    let sum = f64::from_bits(u64::from_str_radix(sum, 16).ok()?);
    let count = counts.iter().sum();
    Some(Histogram::from_parts(
        POWER_BOUNDS.to_vec(),
        counts,
        sum,
        count,
    ))
}

/// Per-cell `extra` payload parsed back out of the journal/outcomes.
struct ShardExtra {
    devices: u64,
    span_evictions: u64,
    audit_evictions: u64,
    power_hist: Histogram,
}

fn parse_extra(extra: &str) -> Option<ShardExtra> {
    let mut devices = None;
    let mut span = None;
    let mut audit = None;
    let mut hist = None;
    for field in extra.split(',') {
        let (key, value) = field.split_once('=')?;
        match key {
            "devices" => devices = value.parse().ok(),
            "span_evict" => span = value.parse().ok(),
            "audit_evict" => audit = value.parse().ok(),
            "ehist" => hist = decode_hist(&unesc(value)),
            _ => return None,
        }
    }
    Some(ShardExtra {
        devices: devices?,
        span_evictions: span?,
        audit_evictions: audit?,
        power_hist: hist?,
    })
}

/// Runs one shard: restore mid-shard progress if a valid marker exists,
/// fold the remaining devices in index order, checkpoint every
/// `checkpoint_stride` devices. With a telemetry sink attached, the
/// shard heartbeats at every checkpoint stride (devices done, smoothed
/// devices/sec, checkpoint cursor) — wall-clock observability only,
/// never part of the deterministic payload.
fn run_shard(
    config: &FleetConfig,
    spec: &ShardSpec,
    ckpt_dir: Option<&Path>,
    telemetry: Option<&TelemetrySink>,
) -> JobResult {
    let mut store = ckpt_dir.and_then(|dir| CheckpointStore::open(dir).ok());
    let mut progress = store
        .as_ref()
        .and_then(|s| s.load_latest_good().ok())
        .and_then(|(ckpt, _)| ckpt.marker_payload())
        .and_then(|payload| ShardProgress::decode(&payload, spec))
        .unwrap_or_else(|| ShardProgress::fresh(spec));
    let mut since_marker = 0_u64;
    let started = std::time::Instant::now();
    let resumed_from = progress.cursor;
    while progress.cursor < spec.end {
        let run = run_device(config, spec.policy, progress.cursor);
        progress.fold_device(&run);
        since_marker += 1;
        if config.checkpoint_stride > 0 && since_marker >= config.checkpoint_stride {
            since_marker = 0;
            if let Some(store) = store.as_mut() {
                let marker = Checkpoint::marker(
                    SimTime::from_millis(progress.cursor),
                    &spec.label,
                    &progress.encode(),
                );
                // A failed marker save costs re-simulation on resume,
                // not correctness — keep the shard going.
                let _ = store.save(&marker);
            }
            if let Some(sink) = telemetry {
                let secs = started.elapsed().as_secs_f64();
                let done_here = progress.cursor - resumed_from;
                sink.publish(EventKind::ShardHeartbeat {
                    shard: spec.label.clone(),
                    devices_done: progress.devices,
                    devices_total: spec.end - spec.start,
                    devices_per_sec: if secs > 0.0 { done_here as f64 / secs } else { 0.0 },
                    cursor: progress.cursor,
                });
            }
        }
    }
    progress.report.metrics_json = progress.registry().to_json();
    JobResult {
        extra: Some(progress.extra()),
        report: progress.report,
        stages: None,
    }
}

/// Per-policy fold of every completed shard.
#[derive(Debug, Clone)]
pub struct PolicyAggregate {
    /// Policy display name.
    pub policy: String,
    /// Shards that completed (including journal-restored ones).
    pub shards_ok: usize,
    /// Shards quarantined by the supervisor.
    pub shards_poisoned: usize,
    /// Devices aggregated across completed shards.
    pub devices: u64,
    /// The fold of every completed shard's aggregate, or `None` when
    /// every shard was poisoned.
    pub report: Option<SimReport>,
}

/// The results of a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetResults {
    sweep: SweepResults,
    config_devices: u64,
    shards: usize,
    seed: u64,
    duration: SimDuration,
    policy_names: Vec<String>,
    aggregates: Vec<PolicyAggregate>,
    registry: MetricsRegistry,
}

impl FleetResults {
    /// Per-shard outcomes in enqueue order (policy-major).
    pub fn outcomes(&self) -> &[Outcome] {
        self.sweep.outcomes()
    }

    /// Per-policy folds.
    pub fn aggregates(&self) -> &[PolicyAggregate] {
        &self.aggregates
    }

    /// The fleet-wide metrics registry: merged shard partials plus the
    /// supervisor's harness counters.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Supervisor statistics over every shard.
    pub fn harness(&self) -> HarnessStats {
        self.sweep.harness()
    }

    /// `(label, reason)` for each quarantined shard.
    pub fn poisoned(&self) -> Vec<(String, String)> {
        self.sweep.poisoned()
    }

    /// Shards restored from the campaign journal instead of re-run.
    pub fn journal_skips(&self) -> u64 {
        self.sweep.journal_skips()
    }

    /// Worker threads used.
    pub fn threads(&self) -> usize {
        self.sweep.threads()
    }

    /// Wall-clock time of the whole campaign.
    pub fn total_wall(&self) -> Duration {
        self.sweep.total_wall()
    }

    /// Devices aggregated across every completed shard (all policies).
    pub fn devices_completed(&self) -> u64 {
        self.aggregates.iter().map(|a| a.devices).sum()
    }

    /// Bucket-estimated p50/p90/p99/max of per-device mean power (mW),
    /// from the merged `fleet_device_power_mw` histogram; `None` when no
    /// device completed. Deterministic (pure function of the merged
    /// histogram) and merge-stable across shard groupings.
    pub fn device_power_quantiles(&self) -> Option<QuantileSummary> {
        self.registry
            .histogram("fleet_device_power_mw")
            .and_then(QuantileSummary::from_histogram)
    }

    /// Completed device-simulations per wall-clock second.
    pub fn devices_per_sec(&self) -> f64 {
        let secs = self.total_wall().as_secs_f64();
        if secs > 0.0 {
            self.devices_completed() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Serializes the `BENCH_fleet.json` document: population shape,
    /// throughput, the supervisor's `harness` block, the merged fleet
    /// metrics, per-policy aggregates, and per-shard status lines.
    ///
    /// The timing fields, `journal_skips`, `devices_per_sec`, and the
    /// `cell_wall_ms` quantiles vary run to run; determinism tests
    /// compare [`deterministic_json`](Self::deterministic_json) instead.
    pub fn to_json(&self) -> String {
        let opt_json =
            |q: Option<QuantileSummary>| q.map_or_else(|| "null".to_owned(), |q| q.to_json());
        let mut out = String::new();
        out.push('{');
        let _ = write!(
            out,
            "\"schema\":{},\"devices\":{},\"shards\":{},\"seed\":{},\"duration_ms\":{},\
             \"policies\":[{}],\"threads\":{},\"total_wall_ms\":{},\"devices_per_sec\":{},\
             \"journal_skips\":{},\
             \"quantiles\":{{\"cell_wall_ms\":{},\"device_power_mw\":{}}},\
             \"harness\":{},\"metrics\":{},\"aggregates\":[",
            json_string(FLEET_SCHEMA),
            self.config_devices,
            self.shards,
            self.seed,
            self.duration.as_millis(),
            self.policy_names
                .iter()
                .map(|n| json_string(n))
                .collect::<Vec<_>>()
                .join(","),
            self.threads(),
            json_number(self.total_wall().as_secs_f64() * 1_000.0),
            json_number(self.devices_per_sec()),
            self.journal_skips(),
            opt_json(self.sweep.cell_wall_quantiles()),
            opt_json(self.device_power_quantiles()),
            self.harness().to_json(),
            self.registry.to_json(),
        );
        for (i, agg) in self.aggregates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"policy\":{},\"shards_ok\":{},\"shards_poisoned\":{},\"devices\":{},\"report\":{}}}",
                json_string(&agg.policy),
                agg.shards_ok,
                agg.shards_poisoned,
                agg.devices,
                agg.report
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), report_to_json),
            );
        }
        out.push_str("],\"cells\":[");
        for (i, o) in self.outcomes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let devices = o
                .extra
                .as_deref()
                .and_then(parse_extra)
                .map_or(0, |e| e.devices);
            let _ = write!(
                out,
                "{{\"label\":{},\"status\":{},\"devices\":{},\"wall_ms\":{}}}",
                json_string(&o.label),
                json_string(&o.status.token()),
                devices,
                json_number(o.wall.as_secs_f64() * 1_000.0),
            );
        }
        out.push_str("]}");
        out
    }

    /// Serializes only the deterministic payload: population shape plus
    /// per-shard `{label, status, extra, report}` in enqueue order and
    /// the merged fleet metrics. Byte-identical on any thread count,
    /// whether or not the campaign was interrupted and resumed.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"devices\":{},\"shards\":{},\"seed\":{},\"duration_ms\":{},\"cells\":[",
            self.config_devices,
            self.shards,
            self.seed,
            self.duration.as_millis(),
        );
        for (i, o) in self.outcomes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"status\":{},\"extra\":{},\"report\":{}}}",
                json_string(&o.label),
                json_string(&o.status.token()),
                o.extra
                    .as_deref()
                    .map_or_else(|| "null".to_owned(), json_string),
                o.report
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), report_to_json),
            );
        }
        let _ = write!(out, "],\"metrics\":{}}}", self.registry.to_json());
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Runs a fleet with default campaign options (every core, default
/// supervision, no journal).
///
/// # Panics
///
/// Panics on journal errors — impossible without a journal directory.
pub fn run_fleet(config: &FleetConfig) -> FleetResults {
    match run_fleet_with(config, &CampaignOptions::default()) {
        Ok(results) => results,
        Err(e) => panic!("fleet journal failed: {e}"),
    }
}

/// Runs a fleet under explicit [`CampaignOptions`].
///
/// With `options.journal_dir` set, completed shards are journaled
/// (`kind = "fleet"`) and a re-invocation over the same directory
/// restores them instead of re-running; shards additionally checkpoint
/// mid-range into `<journal_dir>/shard-<index>/` every
/// `config.checkpoint_stride` devices.
///
/// # Errors
///
/// [`JournalError`] when the journal directory cannot be opened or
/// belongs to a different campaign.
pub fn run_fleet_with(
    config: &FleetConfig,
    options: &CampaignOptions,
) -> Result<FleetResults, JournalError> {
    let specs = config.specs();
    let shared = Arc::new(config.clone());
    let mut sweep = Sweep::new();
    sweep.with_supervisor(options.supervisor);
    if let Some(dir) = &options.journal_dir {
        sweep.with_journal(dir, "fleet");
    }
    if let Some(sink) = &options.telemetry {
        sweep.with_telemetry(sink.clone());
    }
    for (index, spec) in specs.iter().enumerate() {
        let config = Arc::clone(&shared);
        let spec = spec.clone();
        let ckpt_dir = options
            .journal_dir
            .as_ref()
            .map(|dir| dir.join(format!("shard-{index:03}")));
        let telemetry = options.telemetry.clone();
        sweep.job(spec.label.clone(), move || {
            if config.inject_panic == Some(index) {
                panic!("injected fleet shard panic (cell {index})");
            }
            run_shard(&config, &spec, ckpt_dir.as_deref(), telemetry.as_ref())
        });
    }
    let sweep_results = sweep.try_run_with_threads(options.threads)?;

    let mut aggregates = Vec::with_capacity(config.policies.len());
    let mut registry = MetricsRegistry::new();
    registry.describe("fleet", "fleet-wide aggregation");
    registry.register_histogram("fleet_device_power_mw", POWER_BOUNDS.to_vec());
    for (pi, &policy) in config.policies.iter().enumerate() {
        let cells = &sweep_results.outcomes()[pi * config.shards..(pi + 1) * config.shards];
        let mut agg = PolicyAggregate {
            policy: policy.name(),
            shards_ok: 0,
            shards_poisoned: 0,
            devices: 0,
            report: None,
        };
        for outcome in cells {
            let Some(report) = &outcome.report else {
                agg.shards_poisoned += 1;
                continue;
            };
            agg.shards_ok += 1;
            match agg.report.as_mut() {
                Some(acc) => fold_report(acc, report),
                None => {
                    let mut acc = empty_report(&policy.name());
                    fold_report(&mut acc, report);
                    agg.report = Some(acc);
                }
            }
            if let Some(extra) = outcome.extra.as_deref().and_then(parse_extra) {
                agg.devices += extra.devices;
                registry.add("fleet_devices_total", extra.devices);
                registry.add("fleet_span_evictions_total", extra.span_evictions);
                registry.add("fleet_audit_evictions_total", extra.audit_evictions);
            }
        }
        aggregates.push(agg);
    }
    let mut power = Histogram::new(POWER_BOUNDS.to_vec());
    for outcome in sweep_results.outcomes() {
        if let Some(extra) = outcome.extra.as_deref().and_then(parse_extra) {
            power.merge(&extra.power_hist);
        }
    }
    registry.insert_histogram("fleet_device_power_mw", power);
    // The harness counters are deterministic except journal_skips (how
    // many shards a *this* invocation restored); zero it so the merged
    // registry stays byte-identical across interruptions — the full
    // document reports the real value separately.
    let mut harness = sweep_results.harness();
    harness.journal_skips = 0;
    harness.publish(&mut registry);

    Ok(FleetResults {
        config_devices: config.devices,
        shards: config.shards,
        seed: config.seed,
        duration: config.duration,
        policy_names: config.policies.iter().map(|p| p.name()).collect(),
        aggregates,
        registry,
        sweep: sweep_results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny(devices: u64) -> FleetConfig {
        let mut config = FleetConfig::new(devices);
        config.shards = 3;
        config.policies = vec![PolicyKind::Native];
        config.duration = SimDuration::from_mins(5);
        config.checkpoint_stride = 2;
        config
    }

    #[test]
    fn shard_ranges_partition_the_population() {
        let config = tiny(10);
        let ranges: Vec<(u64, u64)> = (0..config.shards).map(|k| config.shard_range(k)).collect();
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 10)]);
    }

    #[test]
    fn shard_aggregate_equals_fold_of_devices() {
        let config = tiny(6);
        let results = run_fleet_with(&config, &CampaignOptions::with_threads(1)).unwrap();
        let spec = &config.specs()[1];
        let devices: Vec<SimReport> = (spec.start..spec.end)
            .map(|d| run_device(&config, spec.policy, d).report)
            .collect();
        let mut expected = fold_reports(&spec.label, devices.iter());
        let shard = results.outcomes()[1].report.as_ref().unwrap();
        expected.metrics_json = shard.metrics_json.clone();
        assert_eq!(shard.to_record(), expected.to_record());
    }

    #[test]
    fn progress_round_trips_through_marker_payload() {
        let config = tiny(6);
        let spec = &config.specs()[0];
        let mut progress = ShardProgress::fresh(spec);
        for d in spec.start..spec.end {
            progress.fold_device(&run_device(&config, spec.policy, d));
        }
        let decoded = ShardProgress::decode(&progress.encode(), spec).unwrap();
        assert_eq!(decoded.cursor, progress.cursor);
        assert_eq!(decoded.devices, progress.devices);
        assert_eq!(decoded.report.to_record(), progress.report.to_record());
        assert_eq!(
            encode_hist(&decoded.power_hist),
            encode_hist(&progress.power_hist)
        );
        // A marker for a different shard layout is rejected.
        assert!(ShardProgress::decode(&progress.encode(), &config.specs()[2]).is_none());
    }

    #[test]
    fn fleet_is_thread_count_invariant() {
        let config = tiny(7);
        let one = run_fleet_with(&config, &CampaignOptions::with_threads(1)).unwrap();
        let three = run_fleet_with(&config, &CampaignOptions::with_threads(3)).unwrap();
        assert_eq!(one.deterministic_json(), three.deterministic_json());
        assert_eq!(one.devices_completed(), 7);
    }

    #[test]
    fn injected_panic_poisons_only_its_shard() {
        let mut config = tiny(6);
        config.inject_panic = Some(1);
        let results = run_fleet_with(&config, &CampaignOptions::with_threads(2)).unwrap();
        assert_eq!(results.harness().poisoned, 1);
        assert!(results.outcomes()[1].report.is_none());
        assert!(results.outcomes()[0].report.is_some());
        assert!(results.outcomes()[2].report.is_some());
        let agg = &results.aggregates()[0];
        assert_eq!(agg.shards_poisoned, 1);
        assert_eq!(agg.shards_ok, 2);
        assert_eq!(agg.devices, 4); // shard 1 covered devices 2..4
    }

    #[test]
    fn resume_restores_shards_and_markers() {
        let scratch = tempdir("fleet-resume");
        let config = tiny(9);
        let options = CampaignOptions {
            threads: 1,
            journal_dir: Some(scratch.clone()),
            ..CampaignOptions::default()
        };
        let first = run_fleet_with(&config, &options).unwrap();
        // Mid-shard markers were written (stride 2, shard size 3).
        assert!(scratch.join("shard-000").is_dir());
        let second = run_fleet_with(&config, &options).unwrap();
        assert_eq!(second.journal_skips(), 3);
        assert_eq!(first.deterministic_json(), second.deterministic_json());
        let clean = run_fleet_with(&config, &CampaignOptions::with_threads(2)).unwrap();
        assert_eq!(clean.deterministic_json(), second.deterministic_json());
        std::fs::remove_dir_all(&scratch).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "simty-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
