//! The `simty-campaign/v1` journal: crash-tolerant campaign resume.
//!
//! A campaign (sweep/chaos/soak/storm) appends one checksummed record
//! to `<dir>/campaign.journal` for every cell that **completes** — the
//! cell's status (`ok`/`retried:<n>`), its full
//! [`SimReport`] as a [`to_record`](SimReport::to_record) line, and the
//! campaign-specific extra payload (e.g. soak's recovery digest). On
//! `--resume <dir>` the journal is replayed: completed cells are
//! restored instead of re-run, poisoned cells (never journaled) and the
//! torn tail of an interrupted append are re-run, and the final
//! document comes out byte-identical to an uninterrupted campaign.
//!
//! The envelope reuses the `simty-checkpoint/v1` dialect from
//! [`simty::sim::codec`]: line-oriented text, percent-escaped fields,
//! FNV-1a-64 checksums. Layout:
//!
//! ```text
//! simty-campaign/v1
//! meta=<kind>,<cells>,<grid-digest>,<sum>
//! cell=<index>,<status>,<report-record>,<extra>,<sum>
//! ...
//! ```
//!
//! `grid-digest` is the FNV-1a-64 of the cell labels joined by `\n`, so
//! a journal can never be replayed against a *different* grid — that is
//! a hard [`JournalError::Mismatch`], not a silent wrong answer. Each
//! line's `<sum>` covers everything before it; a record that fails its
//! checksum (a torn append) ends the replay, and the file is truncated
//! back to the last valid record before appending resumes.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use simty::sim::codec::{esc, fnv1a64, unesc};
use simty::sim::{RealVfs, SimReport, Vfs};

use crate::supervisor::CellStatus;

/// The journal file name inside a campaign directory.
pub const JOURNAL_FILE: &str = "campaign.journal";

const MAGIC: &str = "simty-campaign/v1";

/// Why a journal could not be opened or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The journal belongs to a different campaign: wrong magic, a
    /// corrupt meta line, or a different kind/grid than the one being
    /// resumed.
    Mismatch {
        /// The journal path.
        path: PathBuf,
        /// What disagreed.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "campaign journal I/O error: {e}"),
            JournalError::Mismatch { path, reason } => {
                write!(
                    f,
                    "campaign journal `{}` does not match this campaign: {reason}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One replayed record: a cell that completed in a previous invocation.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The cell's enqueue index.
    pub index: usize,
    /// Its recorded status (`Ok` or `Retried`; poisoned cells are never
    /// journaled).
    pub status: CellStatus,
    /// The cell's report, decoded from the journaled record.
    pub report: SimReport,
    /// The campaign-specific payload journaled alongside the report
    /// (`None` when the cell had none).
    pub extra: Option<String>,
}

/// The digest that pins a journal to one grid: FNV-1a-64 of the cell
/// labels joined by newlines (labels cannot contain newlines).
#[must_use]
pub fn grid_digest(labels: &[String]) -> u64 {
    fnv1a64(labels.join("\n").as_bytes())
}

fn meta_line(kind: &str, cells: usize, digest: u64) -> String {
    let body = format!("meta={},{cells},{digest:016x}", esc(kind));
    let sum = fnv1a64(body.as_bytes());
    format!("{body},{sum:016x}")
}

fn cell_line(index: usize, status: &CellStatus, report: &SimReport, extra: Option<&str>) -> String {
    let body = format!(
        "cell={index},{},{},{}",
        status.token(),
        esc(&report.to_record()),
        esc(extra.unwrap_or_default())
    );
    let sum = fnv1a64(body.as_bytes());
    format!("{body},{sum:016x}")
}

fn checked_body(line: &str) -> Option<&str> {
    let (body, sum) = line.rsplit_once(',')?;
    let expected = u64::from_str_radix(sum, 16).ok()?;
    if sum.len() != 16 || fnv1a64(body.as_bytes()) != expected {
        return None;
    }
    Some(body)
}

fn parse_cell(line: &str) -> Option<JournalEntry> {
    let body = checked_body(line)?;
    let fields: Vec<&str> = body.strip_prefix("cell=")?.split(',').collect();
    let [index, status, report, extra] = fields[..] else {
        return None;
    };
    let extra = unesc(extra);
    Some(JournalEntry {
        index: index.parse().ok()?,
        status: CellStatus::from_token(status)?,
        report: SimReport::from_record(&unesc(report))?,
        extra: (!extra.is_empty()).then_some(extra),
    })
}

/// What [`CampaignJournal::open`] replayed from an existing journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid completed-cell records, in journal order.
    pub entries: Vec<JournalEntry>,
    /// Bytes of torn/corrupt tail that were dropped (those cells simply
    /// re-run).
    pub dropped_bytes: u64,
}

/// An append-only handle on a campaign's journal.
///
/// Every host-I/O operation goes through a [`Vfs`], so the fault
/// injection that exercises the checkpoint path ([`simty::sim::FaultVfs`])
/// can also kill journal appends mid-flight. Records are appended with
/// append → fsync, so every record the journal acknowledges survives a
/// crash; the atomic unit is one line, and a torn final line is dropped
/// (and re-run) on replay.
#[derive(Debug)]
pub struct CampaignJournal {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    // Serializes appends: `record` is called from worker threads.
    write: Mutex<()>,
}

impl CampaignJournal {
    /// Opens (or creates) the journal for a campaign of `kind` over the
    /// given cell `labels`, replaying any completed cells. I/O goes
    /// through the real filesystem.
    ///
    /// # Errors
    ///
    /// [`JournalError::Mismatch`] when an existing journal belongs to a
    /// different campaign kind or grid; [`JournalError::Io`] on
    /// filesystem failure.
    pub fn open(
        dir: &Path,
        kind: &str,
        labels: &[String],
    ) -> Result<(CampaignJournal, Replay), JournalError> {
        CampaignJournal::open_with(dir, kind, labels, Arc::new(RealVfs))
    }

    /// [`open`](CampaignJournal::open) with an explicit [`Vfs`], so
    /// tests can inject ENOSPC/short-write faults into journal I/O.
    ///
    /// # Errors
    ///
    /// As for [`open`](CampaignJournal::open).
    pub fn open_with(
        dir: &Path,
        kind: &str,
        labels: &[String],
        vfs: Arc<dyn Vfs>,
    ) -> Result<(CampaignJournal, Replay), JournalError> {
        vfs.create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let text = match vfs.read(&path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };

        let expected_meta = meta_line(kind, labels.len(), grid_digest(labels));
        let mut replay = Replay::default();
        if text.is_empty() {
            vfs.append(&path, format!("{MAGIC}\n{expected_meta}\n").as_bytes())?;
            vfs.sync_file(&path)?;
        } else {
            let mismatch = |reason: String| JournalError::Mismatch {
                path: path.clone(),
                reason,
            };
            let mut offset = 0usize;
            let mut lines = Vec::new();
            for line in text.split_inclusive('\n') {
                lines.push((offset, line));
                offset += line.len();
            }
            let Some((_, magic)) = lines.first() else {
                return Err(mismatch("empty journal".to_owned()));
            };
            if magic.trim_end_matches('\n') != MAGIC {
                return Err(mismatch(format!(
                    "bad magic `{}` (expected `{MAGIC}`)",
                    magic.trim_end()
                )));
            }
            let Some((_, meta)) = lines.get(1) else {
                return Err(mismatch("missing meta line".to_owned()));
            };
            let meta = meta.trim_end_matches('\n');
            if checked_body(meta).is_none() {
                return Err(mismatch("corrupt meta line".to_owned()));
            }
            if meta != expected_meta {
                return Err(mismatch(format!(
                    "journaled campaign is `{meta}`, this campaign is `{expected_meta}` \
                     (different kind or grid)"
                )));
            }
            // Replay records until the first invalid line (a torn
            // append); truncate the tail so appends restart cleanly.
            let mut valid_end = lines[1].0 + lines[1].1.len();
            for (start, line) in &lines[2..] {
                if !line.ends_with('\n') {
                    break;
                }
                let Some(entry) = parse_cell(line.trim_end_matches('\n')) else {
                    break;
                };
                replay.entries.push(entry);
                valid_end = start + line.len();
            }
            replay.dropped_bytes = (text.len() - valid_end) as u64;
            if replay.dropped_bytes > 0 {
                vfs.truncate(&path, valid_end as u64)?;
                vfs.sync_file(&path)?;
            }
        }
        Ok((
            CampaignJournal {
                path,
                vfs,
                write: Mutex::new(()),
            },
            replay,
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one completed cell. Poisoned cells must not be
    /// journaled (they are re-run on resume); attempting to is a logic
    /// error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if `status` is poisoned.
    pub fn record(
        &self,
        index: usize,
        status: &CellStatus,
        report: &SimReport,
        extra: Option<&str>,
    ) -> io::Result<()> {
        assert!(
            !status.is_poisoned(),
            "poisoned cells are re-run on resume, never journaled"
        );
        let mut line = cell_line(index, status, report, extra);
        line.push('\n');
        let _guard = self.write.lock().expect("journal write lock");
        self.vfs.append(&self.path, line.as_bytes())?;
        self.vfs.sync_file(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simty::core::SimDuration;
    use simty::experiments::{PolicyKind, RunSpec, Scenario};
    use simty::sim::FaultVfs;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "simty-journal-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn labels() -> Vec<String> {
        vec!["cell-a".to_owned(), "cell-b".to_owned(), "cell-c".to_owned()]
    }

    fn sample_report() -> SimReport {
        RunSpec::paper(PolicyKind::Native, Scenario::Light, 1)
            .with_duration(SimDuration::from_mins(1))
            .run()
    }

    #[test]
    fn fresh_journal_replays_nothing() {
        let dir = scratch("fresh");
        let (journal, replay) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
        assert!(replay.entries.is_empty());
        assert_eq!(replay.dropped_bytes, 0);
        assert!(journal.path().ends_with(JOURNAL_FILE));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_round_trip_through_reopen() {
        let dir = scratch("roundtrip");
        let report = sample_report();
        {
            let (journal, _) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
            journal.record(0, &CellStatus::Ok, &report, None).unwrap();
            journal
                .record(
                    2,
                    &CellStatus::Retried { retries: 1 },
                    &report,
                    Some("extra,with:reserved\nchars"),
                )
                .unwrap();
        }
        let (_, replay) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.entries[0].index, 0);
        assert_eq!(replay.entries[0].status, CellStatus::Ok);
        assert_eq!(replay.entries[0].report, report);
        assert_eq!(replay.entries[0].extra, None);
        assert_eq!(replay.entries[1].index, 2);
        assert_eq!(replay.entries[1].status, CellStatus::Retried { retries: 1 });
        assert_eq!(
            replay.entries[1].extra.as_deref(),
            Some("extra,with:reserved\nchars")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = scratch("torn");
        let report = sample_report();
        let path = {
            let (journal, _) = CampaignJournal::open(&dir, "chaos", &labels()).unwrap();
            journal.record(0, &CellStatus::Ok, &report, None).unwrap();
            journal.record(1, &CellStatus::Ok, &report, None).unwrap();
            journal.path().to_path_buf()
        };
        // Tear the last record mid-line, as a crash mid-append would.
        let text = fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 17];
        fs::write(&path, torn).unwrap();
        let (_, replay) = CampaignJournal::open(&dir, "chaos", &labels()).unwrap();
        assert_eq!(replay.entries.len(), 1, "torn record must not replay");
        assert!(replay.dropped_bytes > 0);
        // The truncation leaves a cleanly appendable file.
        let (journal, _) = CampaignJournal::open(&dir, "chaos", &labels()).unwrap();
        journal.record(1, &CellStatus::Ok, &report, None).unwrap();
        let (_, replay) = CampaignJournal::open(&dir, "chaos", &labels()).unwrap();
        assert_eq!(replay.entries.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_vfs_append_never_corrupts_resume() {
        // A journal append that dies mid-line (injected ENOSPC) must
        // leave the earlier records durable; the next open drops the
        // torn tail and the cell simply re-runs.
        let dir = scratch("vfs-torn");
        let report = sample_report();
        {
            let (journal, _) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
            journal.record(0, &CellStatus::Ok, &report, None).unwrap();
        }
        {
            let vfs = Arc::new(FaultVfs::new(5).with_enospc(1.0).with_fault_budget(1));
            let (journal, replay) =
                CampaignJournal::open_with(&dir, "sweep", &labels(), vfs).unwrap();
            assert_eq!(replay.entries.len(), 1);
            let err = journal.record(1, &CellStatus::Ok, &report, None).unwrap_err();
            assert!(err.to_string().contains("ENOSPC"), "{err}");
        }
        let (journal, replay) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
        assert_eq!(replay.entries.len(), 1, "torn record must not replay");
        assert_eq!(replay.entries[0].index, 0);
        assert!(replay.dropped_bytes > 0, "torn tail should be dropped");
        // The truncated journal accepts the re-run's record cleanly.
        journal.record(1, &CellStatus::Ok, &report, None).unwrap();
        let (_, replay) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
        assert_eq!(replay.entries.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_ends_replay() {
        let dir = scratch("corrupt");
        let report = sample_report();
        let path = {
            let (journal, _) = CampaignJournal::open(&dir, "soak", &labels()).unwrap();
            journal.record(0, &CellStatus::Ok, &report, None).unwrap();
            journal.record(1, &CellStatus::Ok, &report, None).unwrap();
            journal.path().to_path_buf()
        };
        // Flip a byte inside the first record's payload.
        let mut bytes = fs::read(&path).unwrap();
        let magic_and_meta = bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == b'\n')
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        bytes[magic_and_meta + 10] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, replay) = CampaignJournal::open(&dir, "soak", &labels()).unwrap();
        assert!(
            replay.entries.is_empty(),
            "a corrupt record and everything after it must re-run"
        );
        assert!(replay.dropped_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_and_grid_mismatches_are_hard_errors() {
        let dir = scratch("mismatch");
        {
            let (journal, _) = CampaignJournal::open(&dir, "sweep", &labels()).unwrap();
            journal.record(0, &CellStatus::Ok, &sample_report(), None).unwrap();
        }
        let err = CampaignJournal::open(&dir, "chaos", &labels()).unwrap_err();
        assert!(matches!(err, JournalError::Mismatch { .. }), "{err}");
        let mut other_grid = labels();
        other_grid.push("cell-d".to_owned());
        let err = CampaignJournal::open(&dir, "sweep", &other_grid).unwrap_err();
        assert!(err.to_string().contains("different kind or grid"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_a_mismatch() {
        let dir = scratch("magic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JOURNAL_FILE), "not-a-journal\n").unwrap();
        let err = CampaignJournal::open(&dir, "sweep", &labels()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_digest_tracks_labels() {
        let a = grid_digest(&labels());
        assert_eq!(a, grid_digest(&labels()));
        let mut reordered = labels();
        reordered.reverse();
        assert_ne!(a, grid_digest(&reordered));
    }
}
