//! Figure 4 — the average normalized delivery delay of perceptible and
//! imperceptible alarms under NATIVE and SIMTY (3 h, β = 0.96, 3 seeds).
//!
//! Paper values: perceptible delays are 0 under both policies;
//! imperceptible delays are 17.9 % (light) / 13.9 % (heavy) under SIMTY
//! and 0.4–0.6 % under NATIVE (wake-from-sleep latency on α = 0 alarms).
//!
//! All twelve runs execute in one parallel sweep. Accepts `--threads N`
//! and `--json PATH`.

use simty::experiments::Spread;
use simty::sim::report::{bar_chart, fmt_percent, TextTable};
use simty_bench::sweep::{json_path_from_args, threads_from_args};
use simty_bench::{paper_specs, Averages, PolicyKind, Scenario, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Figure 4 — normalized delivery delay (3 h, 3 seeds)\n");
    let mut sweep = Sweep::new();
    let mut handles = Vec::new();
    for scenario in [Scenario::Light, Scenario::Heavy] {
        for policy in [PolicyKind::Native, PolicyKind::Simty] {
            handles.push((scenario, policy, sweep.specs(paper_specs(policy, scenario))));
        }
    }
    let results = sweep.run_with_threads(threads_from_args(&args));

    let mut table = TextTable::new([
        "workload",
        "policy",
        "perceptible",
        "imperceptible (mean ± std %)",
        "paper (imperceptible)",
    ]);
    let mut bars = Vec::new();
    for (scenario, policy, batch) in &handles {
        let runs = results.reports(batch);
        let avg = Averages::of(&runs);
        let impercept = Spread::over(&runs, |r| r.delays.imperceptible_avg * 100.0);
        let paper = match (policy, scenario) {
            (PolicyKind::Simty, Scenario::Light) => "17.9%",
            (PolicyKind::Simty, Scenario::Heavy) => "13.9%",
            (PolicyKind::Native, _) => "0.4-0.6%",
            _ => "-",
        };
        table.row([
            scenario.name().to_owned(),
            policy.name(),
            fmt_percent(avg.perceptible_delay),
            impercept.format(1),
            paper.to_owned(),
        ]);
        bars.push((
            format!("{} {}", scenario.name(), policy.name()),
            avg.imperceptible_delay * 100.0,
        ));
    }
    println!("{}", table.render());
    println!("imperceptible normalized delay (%):\n{}", bar_chart(&bars, 48));
    println!(
        "Perceptible alarms are never postponed beyond their windows under either\n\
         policy; SIMTY's imperceptible delay is smaller under the heavy workload\n\
         because more registered alarms make high-time-similarity entries easier\n\
         to find (§4.2)."
    );
    if let Some(path) = json_path_from_args(&args) {
        results.write_json(&path).expect("writes sweep json");
        println!("wrote {path}");
    }
}
