//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. the grace fraction β (the paper fixes β = 0.96);
//! 2. the hardware-similarity granularity (2-, 3-, 4-level, §3.1.1);
//! 3. the §5 duration-similarity extension (DURSIM);
//! 4. NATIVE's realignment on reinsert (§2.1);
//! 5. the fixed-interval remedy \[5\] and DOZE;
//! 6. a duration-heterogeneous workload where DURSIM pays off.
//!
//! All runs: heavy workload, 3 h, seed 1 (single runs keep the sweep
//! readable; the paper-facing binaries average three seeds). Every run —
//! spec-shaped and bespoke alike — is enqueued into one parallel sweep;
//! the shared NATIVE and SIMTY baselines appearing in several sections
//! execute once thanks to spec deduplication. Accepts `--threads N` and
//! `--json PATH`.

use simty::core::similarity::HardwareGranularity;
use simty::prelude::*;
use simty::sim::report::{fmt_joules, fmt_percent, TextTable};
use simty_bench::sweep::{json_path_from_args, threads_from_args};
use simty_bench::{PolicyKind, RunSpec, Scenario, Sweep};

/// Ablation 4's bespoke run: heavy workload plus push-message traffic, so
/// NATIVE's reinsert-realignment path actually fires.
fn realignment_run(policy: PolicyKind) -> SimReport {
    let workload = Scenario::Heavy.builder().with_seed(1).build();
    let mut sim = Simulation::new(policy.build(), SimConfig::new());
    let mut plan = PushPlan::new(17);
    for alarm in workload.alarms {
        let label = alarm.label().to_owned();
        let id = sim.register(alarm).expect("registers");
        if matches!(label.as_str(), "Facebook" | "Line" | "KakaoTalk" | "WeChat") {
            plan = plan.subscribe(id, SimDuration::from_mins(10));
        }
    }
    plan.apply(&mut sim, SimDuration::from_hours(3));
    sim.run()
}

/// Ablation 6's bespoke run: two short-task and two long-task Wi-Fi
/// alarms whose windows all overlap, but arriving so that two entries
/// coexist (see the section body for the full rationale).
fn duration_mix_run(use_dursim: bool) -> SimReport {
    let mut sim = Simulation::new(
        if use_dursim {
            Box::new(DurationSimilarityPolicy::new()) as Box<dyn AlignmentPolicy>
        } else {
            Box::new(SimtyPolicy::new())
        },
        SimConfig::new(),
    );
    // (label, nominal, window seconds, task seconds): the short A and
    // the long B anchor two disjoint-window entries; the long C and
    // the short D overlap both and must choose.
    for (label, nominal_s, window_s, task_s) in [
        ("short-a", 600u64, 15u64, 1u64),
        ("long-b", 630, 15, 25),
        ("long-c", 612, 33, 25),
        ("short-d", 614, 32, 1),
    ] {
        let mut alarm = Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(600))
            .window(SimDuration::from_secs(window_s))
            .grace(SimDuration::from_secs(window_s))
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(task_s))
            .build()
            .expect("valid alarm");
        alarm.mark_hardware_known();
        sim.register(alarm).expect("registers");
    }
    sim.run()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Enqueue the entire study up front; the NATIVE baseline (used by the
    // saving column of ablation 1) and the SIMTY baseline (appearing in
    // ablations 1, 3, and 5) deduplicate to a single run each.
    let mut sweep = Sweep::new();
    let native = sweep.spec(RunSpec::paper(PolicyKind::Native, Scenario::Heavy, 1));
    let betas = [0.05, 0.25, 0.5, 0.75, 0.96];
    let beta_handles: Vec<_> = betas
        .iter()
        .map(|&beta| {
            sweep.spec(RunSpec::paper(PolicyKind::Simty, Scenario::Heavy, 1).with_beta(beta))
        })
        .collect();
    let granularities = [
        HardwareGranularity::Two,
        HardwareGranularity::Three,
        HardwareGranularity::Four,
    ];
    let gran_handles: Vec<_> = granularities
        .iter()
        .map(|&g| sweep.spec(RunSpec::paper(PolicyKind::SimtyGranularity(g), Scenario::Heavy, 1)))
        .collect();
    let dur_policies = [PolicyKind::Simty, PolicyKind::Dursim];
    let dur_handles: Vec<_> = dur_policies
        .iter()
        .map(|&p| sweep.spec(RunSpec::paper(p, Scenario::Heavy, 1)))
        .collect();
    let re_policies = [PolicyKind::Native, PolicyKind::NativeNoRealign];
    let re_handles: Vec<_> = re_policies
        .iter()
        .map(|&p| sweep.job(format!("realign/{}", p.name()), move || realignment_run(p)))
        .collect();
    let fixed_policies = [
        PolicyKind::FixedInterval(60),
        PolicyKind::FixedInterval(300),
        PolicyKind::Doze,
        PolicyKind::Simty,
    ];
    let fixed_handles: Vec<_> = fixed_policies
        .iter()
        .map(|&p| sweep.spec(RunSpec::paper(p, Scenario::Heavy, 1)))
        .collect();
    let mix_handles: Vec<_> = [false, true]
        .into_iter()
        .map(|dursim| {
            let name = if dursim { "DURSIM" } else { "SIMTY" };
            sweep.job(format!("duration-mix/{name}"), move || duration_mix_run(dursim))
        })
        .collect();

    let results = sweep.run_with_threads(threads_from_args(&args));
    let native_awake = results.report(native).energy.awake_related_mj();

    println!("Ablation 1 — grace fraction β (heavy workload, SIMTY)\n");
    let mut beta_table = TextTable::new([
        "beta",
        "CPU wakeups",
        "awake (J)",
        "saving vs NATIVE",
        "impercept. delay",
    ]);
    // β below an app's α is clamped up to α per-alarm, so small values
    // probe how much the α = 0 alarms' grace intervals alone contribute.
    for (beta, handle) in betas.iter().zip(&beta_handles) {
        let r = results.report(*handle);
        beta_table.row([
            format!("{beta:.2}"),
            r.cpu_wakeups.to_string(),
            fmt_joules(r.energy.awake_related_mj()),
            fmt_percent(1.0 - r.energy.awake_related_mj() / native_awake),
            fmt_percent(r.delays.imperceptible_avg),
        ]);
    }
    println!("{}", beta_table.render());
    println!(
        "Larger β widens the grace interval: fewer wakeups, more energy saved,\n\
         more imperceptible delay — the paper picks the extreme β = 0.96.\n"
    );

    println!("Ablation 2 — hardware-similarity granularity (heavy, β = 0.96)\n");
    let mut gran_table = TextTable::new(["granularity", "CPU wakeups", "awake (J)", "total (J)"]);
    for (g, handle) in granularities.iter().zip(&gran_handles) {
        let r = results.report(*handle);
        gran_table.row([
            g.to_string(),
            r.cpu_wakeups.to_string(),
            fmt_joules(r.energy.awake_related_mj()),
            fmt_joules(r.energy.total_mj()),
        ]);
    }
    println!("{}", gran_table.render());

    println!("Ablation 3 — the §5 duration-similarity extension (heavy, β = 0.96)\n");
    let mut dur_table = TextTable::new(["policy", "CPU wakeups", "awake (J)", "hardware (J)"]);
    for (policy, handle) in dur_policies.iter().zip(&dur_handles) {
        let r = results.report(*handle);
        dur_table.row([
            policy.name(),
            r.cpu_wakeups.to_string(),
            fmt_joules(r.energy.awake_related_mj()),
            fmt_joules(r.energy.hardware_mj()),
        ]);
    }
    println!("{}", dur_table.render());

    println!("Ablation 4 — NATIVE realignment on reinsert (heavy + push traffic)\n");
    // The realignment path only fires when an app re-registers a
    // still-queued alarm (§2.1), so the comparison runs under push-message
    // traffic (each push reschedules the receiving messenger's alarm).
    let mut re_table = TextTable::new(["variant", "batch deliveries", "awake (J)"]);
    for (policy, handle) in re_policies.iter().zip(&re_handles) {
        let r = results.report(*handle);
        re_table.row([
            policy.name(),
            r.entry_deliveries.to_string(),
            fmt_joules(r.energy.awake_related_mj()),
        ]);
    }
    println!("{}", re_table.render());

    println!("Ablation 5 — fixed-interval remedy [5] vs SIMTY (heavy)\n");
    let mut fixed_table = TextTable::new([
        "policy",
        "batch deliveries",
        "awake (J)",
        "percept. delay",
        "impercept. delay",
    ]);
    for (policy, handle) in fixed_policies.iter().zip(&fixed_handles) {
        let r = results.report(*handle);
        fixed_table.row([
            policy.name(),
            r.entry_deliveries.to_string(),
            fmt_joules(r.energy.awake_related_mj()),
            fmt_percent(r.delays.perceptible_avg),
            fmt_percent(r.delays.imperceptible_avg),
        ]);
    }
    println!("{}", fixed_table.render());
    println!(
        "The fixed grid batches at least as hard as SIMTY but delays *perceptible*\n\
         alarms (nonzero perceptible delay) — the user-experience cost SIMTY's\n\
         search phase is designed to avoid (§1, §3.2.1). DOZE's escalating\n\
         windows go further still: spectacular savings, but alarms slip whole\n\
         periods (imperceptible delay above 100%) and notifications arrive\n\
         minutes late — the blunt platform instrument SIMTY refines.\n"
    );

    println!("Ablation 6 — a duration-heterogeneous workload where DURSIM pays off\n");
    // SIMTY ties on (hardware, time) similarity and takes the first-found
    // entry — mixing short with long and keeping the radio up for the
    // longest member of both batches. DURSIM's duration rank groups short
    // with short and long with long (§5). Capping each entry at two alarms
    // is forced by the timing: the second candidate's window no longer
    // overlaps the first merged entry's shrunken window.
    let mut mix_table = TextTable::new([
        "policy",
        "Wi-Fi energy (J)",
        "awake (J)",
        "mean Wi-Fi hold (s)",
    ]);
    for handle in &mix_handles {
        let r = results.report(*handle);
        let wifi_mj = r.energy.component_mj(HardwareComponent::Wifi);
        // Subtract activation charges to recover the active-time share.
        let activations = r
            .wakeup_row(HardwareComponent::Wifi)
            .map(|row| row.actual)
            .unwrap_or(0) as f64;
        let hold_s = (wifi_mj - activations * 200.0) / 150.0;
        mix_table.row([
            r.policy.clone(),
            fmt_joules(wifi_mj),
            fmt_joules(r.energy.awake_related_mj()),
            format!("{:.1}", hold_s / activations.max(1.0)),
        ]);
    }
    println!("{}", mix_table.render());

    if let Some(path) = json_path_from_args(&args) {
        results.write_json(&path).expect("writes sweep json");
        println!("wrote {path}");
    }
}
