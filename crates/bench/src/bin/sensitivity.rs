//! Sensitivity analysis: does the reproduction's headline (SIMTY's energy
//! saving over NATIVE) depend on the calibrated power model?
//!
//! The simulator's absolute joules are calibrated to the paper's three
//! Monsoon measurements, but the sleep floor, the wake-transition cost,
//! and the radio power were inferred. This binary perturbs each parameter
//! across a wide range and reports the SIMTY-vs-NATIVE saving, showing
//! that *who wins and by roughly how much* is robust to the calibration.
//!
//! Every (policy, power model) pair is a [`RunSpec`] enqueued into one
//! parallel sweep; the sweep's spec cache deduplicates identical pairs,
//! so the calibrated NATIVE/SIMTY baselines run exactly once no matter
//! how many rows reference them (previously each row re-ran its own
//! NATIVE from scratch, sequentially). Accepts `--threads N` and
//! `--json PATH`.

use simty::prelude::*;
use simty::sim::report::{fmt_percent, TextTable};
use simty_bench::sweep::{json_path_from_args, threads_from_args, RunHandle};
use simty_bench::{PolicyKind, RunSpec, Scenario, Sweep};

fn perturbations() -> Vec<(String, PowerModel)> {
    let mut rows = vec![("baseline (calibrated)".to_owned(), PowerModel::nexus5())];
    for factor in [0.5, 2.0] {
        let mut m = PowerModel::nexus5();
        m.sleep_power_mw *= factor;
        rows.push((format!("sleep floor x{factor}"), m));
    }
    for factor in [0.5, 2.0] {
        let mut m = PowerModel::nexus5();
        m.wake_transition_energy_mj *= factor;
        rows.push((format!("wake transition x{factor}"), m));
    }
    for factor in [0.5, 2.0] {
        let mut m = PowerModel::nexus5();
        for c in HardwareComponent::ALL {
            let mut p = m.component(c);
            p.active_power_mw *= factor;
            p.activation_energy_mj *= factor;
            m.set_component(c, p);
        }
        rows.push((format!("all component power x{factor}"), m));
    }
    for latency_ms in [50u64, 1_000] {
        let mut m = PowerModel::nexus5();
        m.wake_latency = SimDuration::from_millis(latency_ms);
        rows.push((format!("wake latency {latency_ms} ms"), m));
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Sensitivity of SIMTY's saving to the power calibration (heavy, 3 h, seed 1)\n");

    let rows = perturbations();
    let mut sweep = Sweep::new();
    let handles: Vec<(RunHandle, RunHandle)> = rows
        .iter()
        .map(|(_, model)| {
            let spec = |policy| {
                RunSpec::paper(policy, Scenario::Heavy, 1).with_power(model.clone())
            };
            (
                sweep.spec(spec(PolicyKind::Native)),
                sweep.spec(spec(PolicyKind::Simty)),
            )
        })
        .collect();
    let results = sweep.run_with_threads(threads_from_args(&args));

    let mut table = TextTable::new(["perturbation", "total saving", "awake saving"]);
    for ((label, _), (native_h, simty_h)) in rows.iter().zip(&handles) {
        let native = results.report(*native_h);
        let simty = results.report(*simty_h);
        let total = 1.0 - simty.energy.total_mj() / native.energy.total_mj();
        let awake =
            1.0 - simty.energy.awake_related_mj() / native.energy.awake_related_mj();
        table.row([label.clone(), fmt_percent(total), fmt_percent(awake)]);
    }

    println!("{}", table.render());
    println!(
        "The awake-energy saving stays in the same band across all perturbations;\n\
         only the *total* saving moves with the sleep floor, since sleep energy\n\
         is the part alignment cannot touch (the paper makes the same point\n\
         about low-power hardware design, §4.2)."
    );
    if let Some(path) = json_path_from_args(&args) {
        results.write_json(&path).expect("writes sweep json");
        println!("wrote {path}");
    }
}
