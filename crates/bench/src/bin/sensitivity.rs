//! Sensitivity analysis: does the reproduction's headline (SIMTY's energy
//! saving over NATIVE) depend on the calibrated power model?
//!
//! The simulator's absolute joules are calibrated to the paper's three
//! Monsoon measurements, but the sleep floor, the wake-transition cost,
//! and the radio power were inferred. This binary perturbs each parameter
//! across a wide range and reports the SIMTY-vs-NATIVE saving, showing
//! that *who wins and by roughly how much* is robust to the calibration.

use simty::prelude::*;
use simty::sim::report::{fmt_percent, TextTable};
use simty_bench::Scenario;

fn run_with(model: PowerModel, simty: bool) -> SimReport {
    let workload = Scenario::Heavy
        .builder()
        .with_seed(1)
        .build();
    let config = SimConfig::new().with_power(model);
    let policy: Box<dyn AlignmentPolicy> = if simty {
        Box::new(SimtyPolicy::new())
    } else {
        Box::new(NativePolicy::new())
    };
    let mut sim = Simulation::new(policy, config);
    for alarm in workload.alarms {
        sim.register(alarm).expect("registers");
    }
    sim.run()
}

fn savings(model: PowerModel) -> (f64, f64) {
    let native = run_with(model.clone(), false);
    let simty = run_with(model, true);
    let total = 1.0 - simty.energy.total_mj() / native.energy.total_mj();
    let awake = 1.0 - simty.energy.awake_related_mj() / native.energy.awake_related_mj();
    (total, awake)
}

fn main() {
    println!("Sensitivity of SIMTY's saving to the power calibration (heavy, 3 h, seed 1)\n");
    let mut table = TextTable::new(["perturbation", "total saving", "awake saving"]);

    let (t0, a0) = savings(PowerModel::nexus5());
    table.row(["baseline (calibrated)".to_owned(), fmt_percent(t0), fmt_percent(a0)]);

    for factor in [0.5, 2.0] {
        let mut m = PowerModel::nexus5();
        m.sleep_power_mw *= factor;
        let (t, a) = savings(m);
        table.row([
            format!("sleep floor x{factor}"),
            fmt_percent(t),
            fmt_percent(a),
        ]);
    }
    for factor in [0.5, 2.0] {
        let mut m = PowerModel::nexus5();
        m.wake_transition_energy_mj *= factor;
        let (t, a) = savings(m);
        table.row([
            format!("wake transition x{factor}"),
            fmt_percent(t),
            fmt_percent(a),
        ]);
    }
    for factor in [0.5, 2.0] {
        let mut m = PowerModel::nexus5();
        for c in HardwareComponent::ALL {
            let mut p = m.component(c);
            p.active_power_mw *= factor;
            p.activation_energy_mj *= factor;
            m.set_component(c, p);
        }
        let (t, a) = savings(m);
        table.row([
            format!("all component power x{factor}"),
            fmt_percent(t),
            fmt_percent(a),
        ]);
    }
    for latency_ms in [50u64, 1_000] {
        let mut m = PowerModel::nexus5();
        m.wake_latency = SimDuration::from_millis(latency_ms);
        let (t, a) = savings(m);
        table.row([
            format!("wake latency {latency_ms} ms"),
            fmt_percent(t),
            fmt_percent(a),
        ]);
    }

    println!("{}", table.render());
    println!(
        "The awake-energy saving stays in the same band across all perturbations;\n\
         only the *total* saving moves with the sleep floor, since sleep energy\n\
         is the part alignment cannot touch (the paper makes the same point\n\
         about low-power hardware design, §4.2)."
    );
}
