//! Figure 3 — total energy consumed in connected standby under NATIVE
//! and SIMTY, for the light and heavy workloads (3 h, β = 0.96, averaged
//! over three seeded repetitions, as in §4.1).
//!
//! The paper reports that SIMTY saves more than 33 % of the energy NATIVE
//! uses to keep the phone awake, and 20 % / 25 % of total standby energy
//! under the light / heavy workload — enough to prolong standby time by
//! one-fourth to one-third.
//!
//! All twelve runs (2 workloads × 2 policies × 3 seeds) execute in one
//! parallel sweep. Accepts `--threads N` and `--json PATH`.

use simty::experiments::Spread;
use simty::prelude::*;
use simty::sim::report::{bar_chart, fmt_joules, fmt_percent, TextTable};
use simty_bench::sweep::{json_path_from_args, threads_from_args};
use simty_bench::{paper_specs, Averages, PolicyKind, Scenario, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Figure 3 — energy consumption under NATIVE and SIMTY (3 h, 3 seeds)\n");
    let mut sweep = Sweep::new();
    let mut handles = Vec::new();
    for scenario in [Scenario::Light, Scenario::Heavy] {
        for policy in [PolicyKind::Native, PolicyKind::Simty] {
            handles.push((scenario, policy, sweep.specs(paper_specs(policy, scenario))));
        }
    }
    let results = sweep.run_with_threads(threads_from_args(&args));

    let mut table = TextTable::new([
        "workload",
        "policy",
        "sleep (J)",
        "awake (J)",
        "total (J, mean ± std)",
        "avg power (mW)",
    ]);
    let battery = Battery::nexus5();
    let mut bars = Vec::new();
    for scenario in [Scenario::Light, Scenario::Heavy] {
        let runs_of = |policy: PolicyKind| {
            let (_, _, h) = handles
                .iter()
                .find(|(s, p, _)| *s == scenario && *p == policy)
                .expect("handle enqueued");
            results.reports(h)
        };
        let native_runs = runs_of(PolicyKind::Native);
        let simty_runs = runs_of(PolicyKind::Simty);
        let native = Averages::of(&native_runs);
        let simty = Averages::of(&simty_runs);
        for (name, avg, runs) in [
            ("NATIVE", &native, &native_runs),
            ("SIMTY", &simty, &simty_runs),
        ] {
            let total = Spread::over(runs, |r| r.energy.total_mj() / 1_000.0);
            table.row([
                scenario.name().to_owned(),
                name.to_owned(),
                fmt_joules(avg.sleep_mj),
                fmt_joules(avg.awake_mj),
                total.format(1),
                format!("{:.2}", avg.power_mw),
            ]);
            bars.push((format!("{} {}", scenario.name(), name), avg.total_mj / 1_000.0));
        }
        let awake_saving = 1.0 - simty.awake_mj / native.awake_mj;
        let total_saving = 1.0 - simty.total_mj / native.total_mj;
        let extension = battery.standby_extension(native.power_mw, simty.power_mw);
        println!(
            "{:<6} awake-energy saving {} (paper: >33%), total saving {} \
             (paper: {}), standby prolonged {}",
            scenario.name(),
            fmt_percent(awake_saving),
            fmt_percent(total_saving),
            if scenario == Scenario::Light { "20%" } else { "25%" },
            fmt_percent(extension),
        );
    }
    println!("\n{}", table.render());
    println!("total energy (J):\n{}", bar_chart(&bars, 48));
    println!(
        "Note: absolute joules depend on the simulator's calibrated power model;\n\
         the paper's claims are about the NATIVE/SIMTY ratios, which are echoed above."
    );
    if let Some(path) = json_path_from_args(&args) {
        results.write_json(&path).expect("writes sweep json");
        println!("wrote {path}");
    }
}
