//! Figure 2 — the motivating example: one calendar alarm and two WPS
//! location alarms in a queue snapshot.
//!
//! The paper measures 7 520 mJ for the native alignment (the new WPS
//! alarm joins the calendar entry) and 4 050 mJ for similarity-based
//! alignment (the new WPS alarm tolerates postponement and joins the
//! other WPS alarm).
//!
//! Accepts `--threads N` and `--json PATH` (sweep document, see
//! EXPERIMENTS.md).

use simty_bench::sweep::{json_path_from_args, threads_from_args};
use simty_bench::{motivating_example_report, paper_vs_measured, PolicyKind, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Figure 2 — motivating example (awake-related energy per snapshot)\n");
    let mut sweep = Sweep::new();
    let handles: Vec<_> = [PolicyKind::Native, PolicyKind::Simty, PolicyKind::Exact]
        .into_iter()
        .map(|policy| {
            sweep.job(format!("fig2/{}", policy.name()), move || {
                motivating_example_report(policy)
            })
        })
        .collect();
    let results = sweep.run_with_threads(threads_from_args(&args));
    let energy = |i: usize| results.report(handles[i]).energy.awake_related_mj();
    let (native, simty, exact) = (energy(0), energy(1), energy(2));
    println!("{}", paper_vs_measured("NATIVE (Fig. 2b)", 7_520.0, native, "mJ"));
    println!("{}", paper_vs_measured("SIMTY  (Fig. 2c)", 4_050.0, simty, "mJ"));
    println!("{}", paper_vs_measured("no alignment (for reference)", 7_700.0, exact, "mJ"));
    println!(
        "\nSIMTY saves {:.0}% of the energy NATIVE spends on the snapshot \
         (paper: {:.0}%).",
        100.0 * (1.0 - simty / native),
        100.0 * (1.0 - 4_050.0 / 7_520.0)
    );
    if let Some(path) = json_path_from_args(&args) {
        results.write_json(&path).expect("writes sweep json");
        println!("wrote {path}");
    }
}
