//! Figure 2 — the motivating example: one calendar alarm and two WPS
//! location alarms in a queue snapshot.
//!
//! The paper measures 7 520 mJ for the native alignment (the new WPS
//! alarm joins the calendar entry) and 4 050 mJ for similarity-based
//! alignment (the new WPS alarm tolerates postponement and joins the
//! other WPS alarm).

use simty_bench::{motivating_example, paper_vs_measured, PolicyKind};

fn main() {
    println!("Figure 2 — motivating example (awake-related energy per snapshot)\n");
    let native = motivating_example(PolicyKind::Native);
    let simty = motivating_example(PolicyKind::Simty);
    let exact = motivating_example(PolicyKind::Exact);
    println!("{}", paper_vs_measured("NATIVE (Fig. 2b)", 7_520.0, native, "mJ"));
    println!("{}", paper_vs_measured("SIMTY  (Fig. 2c)", 4_050.0, simty, "mJ"));
    println!("{}", paper_vs_measured("no alignment (for reference)", 7_700.0, exact, "mJ"));
    println!(
        "\nSIMTY saves {:.0}% of the energy NATIVE spends on the snapshot \
         (paper: {:.0}%).",
        100.0 * (1.0 - simty / native),
        100.0 * (1.0 - 4_050.0 / 7_520.0)
    );
}
