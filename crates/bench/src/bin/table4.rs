//! Table 4 — the wakeup breakdown: actual vs expected wakeups per
//! hardware component under NATIVE and SIMTY (3 h, β = 0.96, 3 seeds).
//!
//! Paper values (light / heavy):
//!
//! | hardware          | NATIVE       | SIMTY       |
//! |-------------------|--------------|-------------|
//! | CPU (light)       | 733/983      | 193/830     |
//! | CPU (heavy)       | 981/1726     | 259/1370    |
//! | Speaker&Vibrator  | 6/6, 18/18   | 6/6, 12/18  |
//! | Wi-Fi             | 443/548, 465/565 | 170/484, 158/433 |
//! | WPS (heavy)       | 125/132      | 64/131      |
//! | Accelerometer (heavy) | 227/300  | 186/300     |
//!
//! All twelve runs execute in one parallel sweep. Accepts `--threads N`
//! and `--json PATH`.

use simty::core::bounds::least_component_wakeups;
use simty::prelude::*;
use simty::sim::report::TextTable;
use simty_bench::sweep::{json_path_from_args, threads_from_args};
use simty_bench::{paper_specs, Averages, PolicyKind, Scenario, Sweep};

fn fmt_counts(actual: f64, expected: f64) -> String {
    format!("{:.0}/{:.0}", actual, expected)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Table 4 — wakeup breakdown (actual/expected, 3 h, 3 seeds)\n");
    let mut sweep = Sweep::new();
    let mut handles = Vec::new();
    for scenario in [Scenario::Light, Scenario::Heavy] {
        for policy in [PolicyKind::Native, PolicyKind::Simty] {
            handles.push((scenario, policy, sweep.specs(paper_specs(policy, scenario))));
        }
    }
    let results = sweep.run_with_threads(threads_from_args(&args));

    for (scenario, paper_cpu_native, paper_cpu_simty) in [
        (Scenario::Light, "733/983", "193/830"),
        (Scenario::Heavy, "981/1726", "259/1370"),
    ] {
        let runs_of = |policy: PolicyKind| {
            let (_, _, h) = handles
                .iter()
                .find(|(s, p, _)| *s == scenario && *p == policy)
                .expect("handle enqueued");
            results.reports(h)
        };
        let native_runs = runs_of(PolicyKind::Native);
        let simty_runs = runs_of(PolicyKind::Simty);
        let native = Averages::of(&native_runs);
        let simty = Averages::of(&simty_runs);
        // §4.2 lower bounds from the workload's most demanding alarms.
        let workload = scenario.builder().with_seed(1).build();
        let bounds = least_component_wakeups(&workload.alarms, SimDuration::from_hours(3));

        let mut table = TextTable::new([
            "hardware",
            "NATIVE",
            "SIMTY",
            "paper NATIVE",
            "paper SIMTY",
            "lower bound",
        ]);
        table.row([
            "CPU".to_owned(),
            fmt_counts(native.entry_deliveries, native.deliveries),
            fmt_counts(simty.entry_deliveries, simty.deliveries),
            paper_cpu_native.to_owned(),
            paper_cpu_simty.to_owned(),
        ]);
        table.row([
            "CPU (transitions)".to_owned(),
            fmt_counts(native.cpu_wakeups, native.deliveries),
            fmt_counts(simty.cpu_wakeups, simty.deliveries),
            "-".to_owned(),
            "-".to_owned(),
        ]);
        let rows: &[(HardwareComponent, &str, &str)] = match scenario {
            Scenario::Light => &[
                (HardwareComponent::Speaker, "6/6", "6/6"),
                (HardwareComponent::Wifi, "443/548", "170/484"),
            ],
            Scenario::Heavy => &[
                (HardwareComponent::Speaker, "18/18", "12/18"),
                (HardwareComponent::Wifi, "465/565", "158/433"),
                (HardwareComponent::Wps, "125/132", "64/131"),
                (HardwareComponent::Accelerometer, "227/300", "186/300"),
            ],
        };
        for (component, paper_native, paper_simty) in rows {
            let (na, ne) = Averages::wakeup_counts(&native_runs, *component);
            let (sa, se) = Averages::wakeup_counts(&simty_runs, *component);
            table.row([
                component.name().to_owned(),
                fmt_counts(na, ne),
                fmt_counts(sa, se),
                (*paper_native).to_owned(),
                (*paper_simty).to_owned(),
                bounds
                    .get(component)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
            ]);
        }
        println!("--- {} workload ---", scenario.name());
        println!("{}", table.render());
    }
    println!(
        "The CPU row counts queue-entry (batch) deliveries over total alarm\n\
         deliveries, matching the paper's accounting; the CPU (transitions)\n\
         row additionally shows physical sleep->awake transitions, which are\n\
         fewer because deliveries landing while the device is still awake\n\
         merge. Hardware rows count component activations over deliveries\n\
         acquiring that component. Expected counts shrink under SIMTY because\n\
         postponed *dynamic* repeating alarms repeat less often (§4.2). Our\n\
         synthetic system-alarm stream is lighter than a real phone's, so CPU\n\
         denominators sit below the paper's absolute numbers."
    );
    if let Some(path) = json_path_from_args(&args) {
        results.write_json(&path).expect("writes sweep json");
        println!("wrote {path}");
    }
}
