//! The supervised-campaign guarantees, end to end: a panicking or hung
//! cell is quarantined without killing the campaign, transient panics
//! retry deterministically, and an interrupted journaled campaign
//! resumes to a byte-identical result stream across thread counts.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simty::core::time::SimDuration;
use simty_bench::journal::JOURNAL_FILE;
use simty_bench::{
    CellStatus, JobResult, JournalError, PolicyKind, RunSpec, Scenario, SupervisorConfig, Sweep,
};

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "simty-harness-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn short_spec(policy: PolicyKind, seed: u64) -> RunSpec {
    RunSpec::paper(policy, Scenario::Light, seed).with_duration(SimDuration::from_mins(20))
}

#[test]
fn a_panicking_cell_is_quarantined_and_the_campaign_continues() {
    let mut sweep = Sweep::new();
    sweep.spec(short_spec(PolicyKind::Native, 1));
    sweep.job("exploding/cell", || -> JobResult {
        panic!("synthetic harness failure")
    });
    sweep.spec(short_spec(PolicyKind::Simty, 1));
    let results = sweep.run_with_threads(2);

    let outcomes = results.outcomes();
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].report.is_some(), "healthy cells must complete");
    assert!(outcomes[2].report.is_some(), "cells after the panic must complete");
    assert!(outcomes[1].report.is_none());
    assert!(outcomes[1].status.is_poisoned());

    let poisoned = results.poisoned();
    assert_eq!(poisoned.len(), 1);
    assert_eq!(poisoned[0].0, "exploding/cell");
    assert!(
        poisoned[0].1.contains("synthetic harness failure"),
        "the panic payload must be captured, got `{}`",
        poisoned[0].1
    );

    let stats = results.harness();
    assert_eq!((stats.cells, stats.ok, stats.poisoned), (3, 2, 1));
    // Non-transient panics are not retried: one attempt, one panic.
    assert_eq!((stats.retries, stats.panics), (0, 1));
}

#[test]
fn transient_panics_retry_and_then_succeed() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let probe = Arc::clone(&attempts);
    let mut sweep = Sweep::new();
    sweep.job("flaky/cell", move || {
        if probe.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("transient scratch-volume hiccup");
        }
        short_spec(PolicyKind::Simty, 1).run_instrumented()
    });
    let results = sweep.run_with_threads(1);

    assert_eq!(attempts.load(Ordering::SeqCst), 2, "exactly one retry");
    let outcomes = results.outcomes();
    assert!(outcomes[0].report.is_some());
    assert!(matches!(outcomes[0].status, CellStatus::Retried { retries: 1 }));
    let stats = results.harness();
    assert_eq!((stats.retried_cells, stats.retries, stats.panics), (1, 1, 1));
    assert_eq!(stats.poisoned, 0);
}

#[test]
fn transient_panics_poison_once_retries_are_exhausted() {
    let mut sweep = Sweep::new();
    sweep.with_supervisor(SupervisorConfig {
        max_retries: 2,
        ..SupervisorConfig::default()
    });
    sweep.job("always-flaky/cell", || -> JobResult {
        panic!("transient but actually permanent")
    });
    let results = sweep.run_with_threads(1);

    let outcomes = results.outcomes();
    assert!(matches!(
        outcomes[0].status,
        CellStatus::Poisoned { retries: 2, timed_out: false, .. }
    ));
    let stats = results.harness();
    assert_eq!((stats.poisoned, stats.retries, stats.panics), (1, 2, 3));
}

#[test]
fn a_hung_cell_is_killed_by_the_deadline_watchdog() {
    let mut sweep = Sweep::new();
    sweep.with_supervisor(SupervisorConfig {
        max_retries: 0,
        deadline: Some(Duration::from_millis(50)),
    });
    sweep.job("hung/cell", || -> JobResult {
        std::thread::sleep(Duration::from_secs(5));
        panic!("unreachable: the watchdog fires first")
    });
    sweep.spec(short_spec(PolicyKind::Native, 1));
    let results = sweep.run_with_threads(2);

    let outcomes = results.outcomes();
    assert!(matches!(
        outcomes[0].status,
        CellStatus::Poisoned { timed_out: true, .. }
    ));
    assert!(outcomes[1].report.is_some(), "the campaign must continue");
    let stats = results.harness();
    assert_eq!((stats.timeouts, stats.poisoned), (1, 1));
}

fn journaled_grid(dir: &std::path::Path) -> Sweep {
    let mut sweep = Sweep::new();
    for policy in [PolicyKind::Native, PolicyKind::Simty] {
        for seed in 1..=2 {
            sweep.spec(short_spec(policy, seed));
        }
    }
    sweep.with_journal(dir, "resilience");
    sweep
}

/// Kill-and-resume: truncate the journal after K cells (exactly what an
/// interrupted invocation leaves behind) and assert the resumed result
/// stream is byte-identical to the straight-through one, on 1 thread
/// and on 3.
#[test]
fn interrupted_campaign_resumes_byte_identical() {
    let mut straight = Sweep::new();
    for policy in [PolicyKind::Native, PolicyKind::Simty] {
        for seed in 1..=2 {
            straight.spec(short_spec(policy, seed));
        }
    }
    let expected = straight.run_with_threads(1).reports_json();

    for threads in [1usize, 3] {
        let dir = unique_dir(&format!("resume-{threads}"));
        let _ = std::fs::remove_dir_all(&dir);

        // First invocation completes everything...
        let full = journaled_grid(&dir).run_with_threads(threads);
        assert_eq!(full.journal_skips(), 0);
        assert_eq!(full.reports_json(), expected);

        // ...then "crash" after 2 cells by truncating the journal, plus
        // a torn half-line the replay must drop.
        let journal = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&journal).expect("journal exists");
        let keep: Vec<&str> = text.lines().take(4).collect(); // magic, meta, 2 cells
        assert!(keep.len() == 4, "journal too short: {text}");
        std::fs::write(&journal, format!("{}\ncell=2,ok,torn", keep.join("\n"))).unwrap();

        let resumed = journaled_grid(&dir).run_with_threads(threads);
        assert_eq!(
            resumed.journal_skips(),
            2,
            "exactly the journaled cells are restored"
        );
        assert_eq!(
            resumed.reports_json(),
            expected,
            "resume diverged on {threads} thread(s)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_journal_from_a_different_grid_is_rejected() {
    let dir = unique_dir("mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    journaled_grid(&dir).run_with_threads(1);

    // Same kind, different cells: the grid digest disagrees.
    let mut other = Sweep::new();
    other.spec(short_spec(PolicyKind::Native, 9));
    other.with_journal(&dir, "resilience");
    match other.try_run_with_threads(1) {
        Err(JournalError::Mismatch { reason, .. }) => {
            assert!(!reason.is_empty());
        }
        other => panic!("expected a journal mismatch, got {other:?}"),
    }

    // Different campaign kind over the same grid: also rejected.
    let mut wrong_kind = journaled_grid(&dir);
    wrong_kind.with_journal(&dir, "sweep");
    assert!(matches!(
        wrong_kind.try_run_with_threads(1),
        Err(JournalError::Mismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Poisoned cells are never journaled: on resume they run again (and
/// may well poison again), while completed neighbours are restored.
#[test]
fn poisoned_cells_rerun_on_resume() {
    let dir = unique_dir("poison-rerun");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = |dir: &std::path::Path| {
        let mut sweep = Sweep::new();
        sweep.spec(short_spec(PolicyKind::Native, 1));
        sweep.job("cursed/cell", || -> JobResult {
            panic!("still broken")
        });
        sweep.with_journal(dir, "poison");
        sweep
    };
    let first = campaign(&dir).run_with_threads(1);
    assert_eq!(first.poisoned().len(), 1);
    assert_eq!(first.journal_skips(), 0);

    let second = campaign(&dir).run_with_threads(1);
    assert_eq!(second.journal_skips(), 1, "only the healthy cell is restored");
    assert_eq!(second.poisoned().len(), 1, "the cursed cell ran (and failed) again");
    let _ = std::fs::remove_dir_all(&dir);
}
