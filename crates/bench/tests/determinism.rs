//! Regression: a parallel sweep must produce byte-identical serialized
//! reports to a sequential one. Each `Simulation` is seed-deterministic,
//! results are keyed by enqueue index, and the JSON serializer is
//! deterministic — so thread count, scheduling, and completion order
//! must leave no trace in the output.

use simty::core::similarity::HardwareGranularity;
use simty::core::time::SimDuration;
use simty_bench::{
    chaos_matrix, motivating_example_report, run_chaos, FaultProfile, PolicyKind, RunSpec,
    Scenario, Sweep,
};

/// A mixed grid exercising every spec dimension: policy, scenario, seed,
/// β, granularity, and a closure job — 14 runs, kept short.
fn grid() -> Sweep {
    let mut sweep = Sweep::new();
    let short = SimDuration::from_mins(20);
    for scenario in [Scenario::Light, Scenario::Heavy] {
        for policy in [PolicyKind::Native, PolicyKind::Simty] {
            for seed in 1..=2 {
                sweep.spec(RunSpec::paper(policy, scenario, seed).with_duration(short));
            }
        }
    }
    for beta in [0.5, 0.96] {
        sweep.spec(
            RunSpec::paper(PolicyKind::Simty, Scenario::Heavy, 1)
                .with_beta(beta)
                .with_duration(short),
        );
    }
    sweep.spec(
        RunSpec::paper(
            PolicyKind::SimtyGranularity(HardwareGranularity::Two),
            Scenario::Heavy,
            1,
        )
        .with_duration(short),
    );
    sweep.job("fig2/SIMTY", || motivating_example_report(PolicyKind::Simty));
    sweep
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let sequential = grid().run_with_threads(1);
    let parallel = grid().run_with_threads(4);
    // 8 policy×scenario×seed specs + β 0.5 + 2-level granularity + the
    // closure job; β 0.96 deduplicates against the seed-1 heavy SIMTY spec.
    assert!(sequential.len() >= 11, "grid should be non-trivial");
    assert_eq!(sequential.len(), parallel.len());
    assert_eq!(
        sequential.reports_json(),
        parallel.reports_json(),
        "parallel sweep diverged from sequential"
    );
}

#[test]
fn repeated_parallel_sweeps_are_byte_identical() {
    let first = grid().run_with_threads(3);
    let second = grid().run_with_threads(3);
    assert_eq!(first.reports_json(), second.reports_json());
}

#[test]
fn chaos_campaigns_are_byte_identical_across_thread_counts() {
    // Every fault profile over both headline policies: faults, watchdog
    // interventions, quarantines, and invariant accounting must all be
    // scheduling-independent.
    let specs = chaos_matrix(
        &[PolicyKind::Native, PolicyKind::Simty],
        &[Scenario::Light],
        &FaultProfile::ALL,
        1,
        SimDuration::from_mins(20),
    );
    let sequential = run_chaos(&specs, 1);
    let parallel = run_chaos(&specs, 3);
    assert_eq!(sequential.runs().len(), specs.len());
    assert_eq!(
        sequential.to_json(),
        parallel.to_json(),
        "parallel chaos campaign diverged from sequential"
    );
}

#[test]
fn labels_preserve_enqueue_order_across_thread_counts() {
    let sequential = grid().run_with_threads(1);
    let parallel = grid().run_with_threads(8);
    let labels = |r: &simty_bench::SweepResults| -> Vec<String> {
        r.outcomes().iter().map(|o| o.label.clone()).collect()
    };
    assert_eq!(labels(&sequential), labels(&parallel));
}
