//! The fleet-campaign guarantees, end to end: every streamed shard
//! aggregate equals the fold of independently simulated devices over
//! arbitrary populations, and a campaign killed mid-flight by a
//! poisoned shard resumes from its journal to a document byte-identical
//! to an uninterrupted run, on any thread count.

use std::path::PathBuf;

use proptest::prelude::*;
use simty::core::time::SimDuration;
use simty_bench::fleet::{fold_reports, run_device};
use simty_bench::{run_fleet_with, CampaignOptions, FleetConfig, PolicyKind};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simty-fleet-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_fleet(devices: u64, shards: usize, seed: u64) -> FleetConfig {
    let mut config = FleetConfig::new(devices);
    config.shards = shards;
    config.policies = vec![PolicyKind::Simty];
    config.seed = seed;
    config.duration = SimDuration::from_mins(5);
    config.checkpoint_stride = 2;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The streaming property behind O(shards) memory: for any
    /// population size, shard count, and fleet seed, each shard's
    /// folded aggregate is bit-identical to re-simulating its devices
    /// one by one and folding the reports outside the harness.
    #[test]
    fn every_shard_aggregate_equals_the_device_fold(
        devices in 1u64..12,
        shards in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let config = small_fleet(devices, shards.min(devices as usize), seed);
        let results =
            run_fleet_with(&config, &CampaignOptions::with_threads(2)).unwrap();
        prop_assert_eq!(results.devices_completed(), devices);
        for (index, spec) in config.specs().iter().enumerate() {
            let folded: Vec<_> = (spec.start..spec.end)
                .map(|d| run_device(&config, spec.policy, d).report)
                .collect();
            let mut expected = fold_reports(&spec.label, folded.iter());
            let shard = results.outcomes()[index].report.as_ref().unwrap();
            // The shard carries its observability registry; the
            // re-fold has none. Everything else must match exactly.
            expected.metrics_json = shard.metrics_json.clone();
            prop_assert_eq!(shard.to_record(), expected.to_record());
        }
    }
}

/// The acceptance scenario: a fleet whose shard 1 is killed by an
/// injected panic journals its surviving shards; re-running over the
/// same journal restores them, re-simulates only the killed shard, and
/// yields a deterministic document byte-identical to an uninterrupted
/// campaign — on one thread and on three.
#[test]
fn killed_campaign_resumes_byte_identical_across_thread_counts() {
    let config = small_fleet(10, 3, 42);
    let reference = run_fleet_with(&config, &CampaignOptions::with_threads(1))
        .unwrap()
        .deterministic_json();

    for threads in [1usize, 3] {
        let dir = unique_dir(&format!("kill-{threads}"));
        let options = CampaignOptions {
            threads,
            journal_dir: Some(dir.clone()),
            ..CampaignOptions::default()
        };

        let mut wounded = config.clone();
        wounded.inject_panic = Some(1);
        let first = run_fleet_with(&wounded, &options).unwrap();
        assert_eq!(first.harness().poisoned, 1, "threads={threads}");
        assert!(first.outcomes()[1].report.is_none());
        assert!(first.outcomes()[0].report.is_some());
        assert!(first.outcomes()[2].report.is_some());
        // The surviving shards wrote mid-range checkpoint markers.
        assert!(dir.join("shard-000").is_dir());

        let resumed = run_fleet_with(&config, &options).unwrap();
        assert_eq!(resumed.journal_skips(), 2, "threads={threads}");
        assert_eq!(resumed.harness().poisoned, 0, "threads={threads}");
        assert_eq!(
            resumed.deterministic_json(),
            reference,
            "resume must be byte-identical on {threads} thread(s)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Poisoning is re-injected deterministically: resuming a journaled
/// campaign *with the fault still present* re-poisons the same shard
/// instead of silently healing, and the two wounded documents agree.
#[test]
fn a_still_faulty_resume_re_poisons_the_same_shard() {
    let mut config = small_fleet(8, 4, 7);
    config.inject_panic = Some(2);
    let dir = unique_dir("still-faulty");
    let options = CampaignOptions {
        threads: 2,
        journal_dir: Some(dir.clone()),
        ..CampaignOptions::default()
    };
    let first = run_fleet_with(&config, &options).unwrap();
    let second = run_fleet_with(&config, &options).unwrap();
    assert_eq!(second.harness().poisoned, 1);
    assert!(second.outcomes()[2].report.is_none());
    assert_eq!(second.journal_skips(), 3);
    assert_eq!(first.deterministic_json(), second.deterministic_json());
    std::fs::remove_dir_all(&dir).ok();
}
