//! # simty — similarity-based wakeup management (DAC 2016), reproduced
//!
//! A full Rust reproduction of *"Similarity-Based Wakeup Management for
//! Mobile Systems in Connected Standby"* (Kao, Cheng, Hsiu — DAC 2016):
//! the SIMTY alarm-alignment policy, Android's native policy, a
//! power-calibrated device simulator standing in for the paper's
//! LG Nexus 5 testbed, the 18-app workload of Table 3, and an experiment
//! harness regenerating every figure and table of the evaluation.
//!
//! This crate is the facade: it re-exports the component crates
//! ([`simty_core`], [`simty_device`], [`simty_sim`], [`simty_apps`]) and
//! hosts the shared [`experiments`] harness.
//!
//! # Quick start
//!
//! ```
//! use simty::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the paper's light workload and run it for ten minutes under
//! // both policies.
//! for policy in [
//!     Box::new(NativePolicy::new()) as Box<dyn AlignmentPolicy>,
//!     Box::new(SimtyPolicy::new()),
//! ] {
//!     let workload = WorkloadBuilder::light().with_seed(1).build();
//!     let config = SimConfig::new().with_duration(SimDuration::from_mins(10));
//!     let mut sim = Simulation::new(policy, config);
//!     for alarm in workload.alarms {
//!         sim.register(alarm)?;
//!     }
//!     let report = sim.run();
//!     assert!(report.cpu_wakeups > 0);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod prelude;

pub use simty_apps as apps;
pub use simty_core as core;
pub use simty_device as device;
pub use simty_obs as obs;
pub use simty_sim as sim;
