//! Convenience re-exports for applications.
//!
//! ```
//! use simty::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = WorkloadBuilder::light().build();
//! let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), SimConfig::new());
//! for alarm in workload.alarms {
//!     sim.register(alarm)?;
//! }
//! # Ok(())
//! # }
//! ```

pub use simty_apps::{
    AppSpec, ExternalEvents, PushPlan, RepeatKind, SystemAlarms, UserSessions, Workload,
    WorkloadBuilder,
};
pub use simty_core::{
    Alarm, AlarmId, AlarmKind, AlarmManager, AlignmentPolicy, DeliveryDiscipline,
    DozePolicy, DurationSimilarityPolicy, ExactPolicy, FixedIntervalPolicy, HardwareComponent,
    HardwareGranularity, HardwareSet, HardwareSimilarity, Interval, NativePolicy, Placement,
    Preferability, QueueEntry, Repeat, SimDuration, SimTime, SimtyPolicy, TimeSimilarity,
};
pub use simty_device::{Battery, Device, DevicePowerState, EnergyBreakdown, PowerModel};
pub use simty_sim::{
    AttributionLedger, Checkpoint, CheckpointError, CheckpointStore, DelayStats, DeliveryRecord,
    FaultPlan, InterventionKind, InterventionRecord, InvariantMode, InvariantMonitor,
    InvariantViolation, OnlineWatchdogConfig, RebootPlan, ResilienceStats, SimConfig, SimError,
    SimReport, Simulation, Trace, WakeupRow,
};
