//! Shared experiment harness: the runs behind every figure and table of
//! the paper, reused by the `simty-bench` binaries and the integration
//! test suite.

use simty_apps::workload::WorkloadBuilder;
use simty_core::alarm::Alarm;
use simty_core::hardware::{HardwareComponent, HardwareSet};
use simty_core::policy::{
    AlignmentPolicy, DurationSimilarityPolicy, ExactPolicy, FixedIntervalPolicy, NativePolicy,
    SimtyPolicy,
};
use simty_core::similarity::HardwareGranularity;
use simty_core::time::{SimDuration, SimTime};
use simty_device::PowerModel;
use simty_obs::StageProfile;
use simty_sim::config::SimConfig;
use simty_sim::engine::Simulation;
use simty_sim::metrics::SimReport;

/// The alignment policies an experiment can run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No alignment (Table 4 denominators).
    Exact,
    /// Android's native policy.
    Native,
    /// Native without realignment on reinsert (ablation).
    NativeNoRealign,
    /// The paper's policy with 3-level hardware similarity.
    Simty,
    /// SIMTY with an alternative hardware-similarity granularity.
    SimtyGranularity(HardwareGranularity),
    /// The §5 duration-similarity extension.
    Dursim,
    /// The fixed-grid remedy of Lin et al. \[5\], with the grid period in
    /// seconds.
    FixedInterval(u64),
    /// Doze-style escalating maintenance windows (Android-like defaults).
    Doze,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn AlignmentPolicy> {
        match self {
            PolicyKind::Exact => Box::new(ExactPolicy::new()),
            PolicyKind::Native => Box::new(NativePolicy::new()),
            PolicyKind::NativeNoRealign => Box::new(NativePolicy::without_realignment()),
            PolicyKind::Simty => Box::new(SimtyPolicy::new()),
            PolicyKind::SimtyGranularity(g) => Box::new(SimtyPolicy::with_granularity(g)),
            PolicyKind::Dursim => Box::new(DurationSimilarityPolicy::new()),
            PolicyKind::FixedInterval(secs) => {
                Box::new(FixedIntervalPolicy::new(SimDuration::from_secs(secs)))
            }
            PolicyKind::Doze => Box::new(simty_core::policy::DozePolicy::android_like()),
        }
    }

    /// Display name for reports.
    pub fn name(self) -> String {
        match self {
            PolicyKind::Exact => "EXACT".into(),
            PolicyKind::Native => "NATIVE".into(),
            PolicyKind::NativeNoRealign => "NATIVE (no realign)".into(),
            PolicyKind::Simty => "SIMTY".into(),
            PolicyKind::SimtyGranularity(g) => format!("SIMTY ({g})"),
            PolicyKind::Dursim => "DURSIM".into(),
            PolicyKind::FixedInterval(secs) => format!("FIXED ({secs}s)"),
            PolicyKind::Doze => "DOZE".into(),
        }
    }
}

/// The paper's workload scenarios (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Alarm Clock + 11 Wi-Fi messaging apps (time similarity only).
    Light,
    /// All 18 apps (hardware similarity exercised as well).
    Heavy,
}

impl Scenario {
    /// The workload builder for this scenario.
    pub fn builder(self) -> WorkloadBuilder {
        match self {
            Scenario::Light => WorkloadBuilder::light(),
            Scenario::Heavy => WorkloadBuilder::heavy(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Light => "light",
            Scenario::Heavy => "heavy",
        }
    }
}

/// Parameters of one experiment run.
///
/// `PartialEq` lets sweep executors deduplicate identical runs (the
/// sensitivity study shares one NATIVE baseline across perturbations).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The alignment policy.
    pub policy: PolicyKind,
    /// The workload scenario.
    pub scenario: Scenario,
    /// RNG seed (registration jitter + system alarms).
    pub seed: u64,
    /// Grace fraction β (the paper uses 0.96).
    pub beta: f64,
    /// Simulated span (the paper uses 3 h).
    pub duration: SimDuration,
    /// Power-model override (`None` = the calibrated Nexus 5 model); used
    /// by the sensitivity study's perturbation grid.
    pub power: Option<PowerModel>,
    /// Run without the observability layer (spans, metrics, audits,
    /// stage profile); the report's metrics block renders as `null` and
    /// the returned [`StageProfile`] is empty. Everything deterministic
    /// is unchanged.
    pub no_obs: bool,
}

impl RunSpec {
    /// The paper's defaults: β = 0.96 over 3 hours.
    pub fn paper(policy: PolicyKind, scenario: Scenario, seed: u64) -> Self {
        RunSpec {
            policy,
            scenario,
            seed,
            beta: 0.96,
            duration: SimDuration::from_hours(3),
            power: None,
            no_obs: false,
        }
    }

    /// Overrides β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Overrides the duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the power model (sensitivity perturbations).
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = Some(power);
        self
    }

    /// Switches the observability layer off (the engine's no-obs fast
    /// path).
    pub fn with_no_obs(mut self) -> Self {
        self.no_obs = true;
        self
    }

    /// A compact, human-readable identity for sweep outputs, e.g.
    /// `SIMTY/heavy/seed1/b0.96`.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/seed{}/b{}",
            self.policy.name(),
            self.scenario.name(),
            self.seed,
            self.beta
        );
        if self.duration != SimDuration::from_hours(3) {
            label.push_str(&format!("/{}s", self.duration.as_millis() / 1_000));
        }
        if self.power.is_some() {
            label.push_str("/power~");
        }
        label
    }

    /// Executes the run and returns its report.
    ///
    /// # Panics
    ///
    /// Panics if a catalogue alarm fails to register, which would be a
    /// bug in the workload generator.
    pub fn run(&self) -> SimReport {
        self.run_instrumented().0
    }

    /// Executes the run and returns its report together with the
    /// engine's per-stage wall-clock profile. The profile is host timing
    /// — it varies run to run and must never enter deterministic
    /// outputs; sweep executors aggregate it into benchmark documents.
    ///
    /// # Panics
    ///
    /// Panics if a catalogue alarm fails to register, which would be a
    /// bug in the workload generator.
    pub fn run_instrumented(&self) -> (SimReport, StageProfile) {
        let workload = self
            .scenario
            .builder()
            .with_seed(self.seed)
            .with_beta(self.beta)
            .with_duration(self.duration)
            .build();
        let mut config = SimConfig::new().with_duration(self.duration);
        if let Some(power) = &self.power {
            config = config.with_power(power.clone());
        }
        if self.no_obs {
            config = config.without_obs();
        }
        let mut sim = Simulation::new(self.policy.build(), config);
        for alarm in workload.alarms {
            sim.register(alarm).expect("workload alarm registers cleanly");
        }
        let report = sim.run();
        (report, *sim.stage_profile())
    }
}

/// Scalar summary averaged over several runs (the paper averages three
/// repetitions per configuration).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Averages {
    /// Mean total energy (mJ).
    pub total_mj: f64,
    /// Mean sleep energy (mJ).
    pub sleep_mj: f64,
    /// Mean awake-related energy (mJ): everything but sleep.
    pub awake_mj: f64,
    /// Mean device sleep→awake transitions.
    pub cpu_wakeups: f64,
    /// Mean queue-entry (batch) deliveries — the paper's Table 4 CPU
    /// numerator.
    pub entry_deliveries: f64,
    /// Mean total deliveries.
    pub deliveries: f64,
    /// Mean normalized delay of perceptible alarms.
    pub perceptible_delay: f64,
    /// Mean normalized delay of imperceptible alarms.
    pub imperceptible_delay: f64,
    /// Mean average power (mW).
    pub power_mw: f64,
}

impl Averages {
    /// Averages a non-empty slice of reports.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn of(reports: &[SimReport]) -> Averages {
        assert!(!reports.is_empty(), "cannot average zero reports");
        let n = reports.len() as f64;
        let mut a = Averages::default();
        for r in reports {
            a.total_mj += r.energy.total_mj();
            a.sleep_mj += r.energy.sleep_mj;
            a.awake_mj += r.energy.awake_related_mj();
            a.cpu_wakeups += r.cpu_wakeups as f64;
            a.entry_deliveries += r.entry_deliveries as f64;
            a.deliveries += r.total_deliveries as f64;
            a.perceptible_delay += r.delays.perceptible_avg;
            a.imperceptible_delay += r.delays.imperceptible_avg;
            a.power_mw += r.average_power_mw();
        }
        a.total_mj /= n;
        a.sleep_mj /= n;
        a.awake_mj /= n;
        a.cpu_wakeups /= n;
        a.entry_deliveries /= n;
        a.deliveries /= n;
        a.perceptible_delay /= n;
        a.imperceptible_delay /= n;
        a.power_mw /= n;
        a
    }

    /// Mean actual/expected wakeup counts for one component across runs.
    pub fn wakeup_counts(
        reports: &[SimReport],
        c: HardwareComponent,
    ) -> (f64, f64) {
        let n = reports.len() as f64;
        let mut actual = 0.0;
        let mut expected = 0.0;
        for r in reports {
            if let Some(row) = r.wakeup_row(c) {
                actual += row.actual as f64;
                expected += row.expected as f64;
            }
        }
        (actual / n, expected / n)
    }
}

/// The paper's three seeded repetitions (seeds `1..=3`) of one
/// configuration, as specs — feed these to a sweep executor to run them
/// in parallel with other configurations.
pub fn paper_specs(policy: PolicyKind, scenario: Scenario) -> Vec<RunSpec> {
    (1..=3)
        .map(|seed| RunSpec::paper(policy, scenario, seed))
        .collect()
}

/// Runs one configuration for the paper's three repetitions (seeds
/// `1..=3`) and returns the individual reports.
pub fn paper_runs(policy: PolicyKind, scenario: Scenario) -> Vec<SimReport> {
    paper_specs(policy, scenario)
        .iter()
        .map(RunSpec::run)
        .collect()
}

/// A mean with its sample standard deviation, for reporting run-to-run
/// spread across the seeded repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Spread {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (zero for fewer than two samples).
    pub std: f64,
}

impl Spread {
    /// Computes mean and sample standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Spread {
        assert!(!values.is_empty(), "spread of zero samples");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let std = if values.len() < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        Spread { mean, std }
    }

    /// Extracts a metric from each report and summarizes it.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn over<F: Fn(&SimReport) -> f64>(reports: &[SimReport], metric: F) -> Spread {
        let values: Vec<f64> = reports.iter().map(metric).collect();
        Spread::of(&values)
    }

    /// Renders as `mean ± std` with the given precision.
    pub fn format(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.std)
    }
}

/// The motivating example of the paper's Fig. 2: a calendar alarm and two
/// WPS location alarms in one snapshot. Returns the awake-related energy
/// (mJ) consumed to deliver all three alarms once under the given policy.
///
/// The paper's measured numbers are 7 520 mJ for the native alignment and
/// 4 050 mJ for similarity-based alignment.
pub fn motivating_example(policy: PolicyKind) -> f64 {
    motivating_example_report(policy).energy.awake_related_mj()
}

/// [`motivating_example`] but returning the full report, so sweep
/// executors can run it like any other job.
pub fn motivating_example_report(policy: PolicyKind) -> SimReport {
    let calendar = {
        let mut a = Alarm::builder("calendar")
            .nominal(SimTime::from_secs(100))
            .repeating_static(SimDuration::from_secs(3_600))
            .window(SimDuration::from_secs(90))
            .grace(SimDuration::from_secs(90))
            .hardware(HardwareComponent::Speaker | HardwareComponent::Vibrator)
            .task_duration(SimDuration::from_secs(1))
            .build()
            .expect("valid calendar alarm");
        a.mark_hardware_known();
        a
    };
    let wps = |label: &str, nominal_s: u64| {
        let mut a = Alarm::builder(label)
            .nominal(SimTime::from_secs(nominal_s))
            .repeating_static(SimDuration::from_secs(3_600))
            .window(SimDuration::from_secs(50))
            .grace(SimDuration::from_secs(900))
            .hardware(HardwareSet::single(HardwareComponent::Wps))
            .task_duration(SimDuration::from_secs(8))
            .build()
            .expect("valid wps alarm");
        a.mark_hardware_known();
        a
    };
    let config = SimConfig::new().with_duration(SimDuration::from_secs(1_500));
    let mut sim = Simulation::new(policy.build(), config);
    // Queue snapshot of Fig. 2(a): the calendar alarm and one WPS alarm
    // are queued; the other WPS alarm is then inserted.
    sim.register(calendar).expect("registers");
    sim.register(wps("wps-queued", 400)).expect("registers");
    sim.register(wps("wps-new", 150)).expect("registers");
    let report = sim.run();
    assert_eq!(
        report.total_deliveries, 3,
        "all three alarms deliver exactly once in the snapshot window"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kinds_build() {
        for p in [
            PolicyKind::Exact,
            PolicyKind::Native,
            PolicyKind::NativeNoRealign,
            PolicyKind::Simty,
            PolicyKind::SimtyGranularity(HardwareGranularity::Four),
            PolicyKind::Dursim,
            PolicyKind::FixedInterval(60),
            PolicyKind::Doze,
        ] {
            let _ = p.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn short_run_executes() {
        let spec = RunSpec::paper(PolicyKind::Native, Scenario::Light, 1)
            .with_duration(SimDuration::from_mins(10));
        let report = spec.run();
        assert!(report.total_deliveries > 0);
        assert!(report.energy.total_mj() > 0.0);
    }

    #[test]
    fn averages_over_two_runs() {
        let spec = |seed| {
            RunSpec::paper(PolicyKind::Exact, Scenario::Light, seed)
                .with_duration(SimDuration::from_mins(5))
                .run()
        };
        let reports = vec![spec(1), spec(2)];
        let a = Averages::of(&reports);
        assert!(a.total_mj > 0.0);
        assert!(a.deliveries > 0.0);
        let (actual, expected) = Averages::wakeup_counts(&reports, HardwareComponent::Wifi);
        assert!(actual <= expected);
    }

    #[test]
    fn spread_statistics() {
        let s = Spread::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.format(1), "2.0 ± 1.0");
        let single = Spread::of(&[5.0]);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn motivating_example_energies_match_the_papers_ordering() {
        let native = motivating_example(PolicyKind::Native);
        let simty = motivating_example(PolicyKind::Simty);
        let exact = motivating_example(PolicyKind::Exact);
        // SIMTY aligns the two WPS alarms: ~4 050 mJ in the paper.
        assert!(simty < native, "simty {simty} < native {native}");
        assert!(native <= exact, "native {native} <= exact {exact}");
        assert!((simty - 4_050.0).abs() < 100.0, "simty {simty}");
        assert!((native - 7_520.0).abs() < 250.0, "native {native}");
    }
}
