//! A realistic mixed day: the 18-app workload in connected standby,
//! interrupted by interactive user sessions (screen-on periods) and push
//! messages that reschedule the messengers' alarms.
//!
//! This is the setting the paper's motivation describes — smartphones
//! spend 89 % of their time in standby [9], yet standby accounts for
//! 46.3 % of energy — reproduced end to end: SIMTY's savings survive the
//! interruptions, and the screen dwarfs everything while it is on.
//!
//! Run with `cargo run --release --example full_day -p simty`.

use simty::prelude::*;

fn run(policy: Box<dyn AlignmentPolicy>, hours: u64) -> Simulation {
    let duration = SimDuration::from_hours(hours);
    let workload = WorkloadBuilder::heavy()
        .with_seed(5)
        .with_duration(duration)
        .build();
    let sessions = UserSessions::new(5).generate(duration);
    let config = SimConfig::new().with_duration(duration);
    let mut sim = Simulation::new(policy, config);

    let mut push_plan = PushPlan::new(5);
    for alarm in workload.alarms {
        let label = alarm.label().to_owned();
        let id = sim.register(alarm).expect("workload registers");
        // The chatty messengers receive pushes that reset their sync
        // schedules (the GCM path of the paper's footnote 1).
        if matches!(label.as_str(), "Facebook" | "Line" | "WeChat") {
            push_plan = push_plan.subscribe(id, SimDuration::from_mins(20));
        }
    }
    push_plan.apply(&mut sim, duration);
    for session in sessions {
        sim.register(session).expect("session registers");
    }
    sim.run_until(SimTime::ZERO + duration);
    sim
}

fn main() {
    const HOURS: u64 = 12;
    println!("a {HOURS}-hour day: 18 apps + user sessions + push messages\n");

    let native = run(Box::new(NativePolicy::new()), HOURS);
    let simty = run(Box::new(SimtyPolicy::new()), HOURS);
    let battery = Battery::nexus5();

    for sim in [&native, &simty] {
        let r = sim.report();
        let screen_mj = r.energy.component_mj(HardwareComponent::Screen);
        println!(
            "{:<7} total {:>7.1} J (screen {:>6.1} J), {} batch deliveries, \
             projected battery life {:.1} days",
            r.policy,
            r.energy.total_mj() / 1_000.0,
            screen_mj / 1_000.0,
            r.entry_deliveries,
            battery.standby_time(r.average_power_mw()).as_secs_f64() / 86_400.0,
        );
    }

    let n = native.report();
    let s = simty.report();
    // Screen energy is identical under both policies (the user is the
    // user); the *standby* savings live in everything else.
    let non_screen = |r: &SimReport| {
        r.energy.total_mj() - r.energy.component_mj(HardwareComponent::Screen)
    };
    println!(
        "\nexcluding the screen, SIMTY saves {:.0}% of the day's energy \
         (perceptible delay: NATIVE {:.2}%, SIMTY {:.2}%)",
        100.0 * (1.0 - non_screen(&s) / non_screen(&n)),
        n.delays.perceptible_avg * 100.0,
        s.delays.perceptible_avg * 100.0,
    );

    // Sessions also flush non-wakeup work and merge alarm deliveries: how
    // often did an alarm ride on an already-awake device?
    let free_rides = |sim: &Simulation| {
        let r = sim.report();
        r.entry_deliveries - r.cpu_wakeups
    };
    println!(
        "deliveries served without a fresh wakeup (device already on): \
         NATIVE {}, SIMTY {}",
        free_rides(&native),
        free_rides(&simty),
    );
}
