//! Side-by-side policy comparison on a custom workload: EXACT vs NATIVE
//! vs SIMTY vs DURSIM, including the effect of external wake events
//! (push messages) on non-wakeup alarms.
//!
//! Run with `cargo run --release --example policy_comparison -p simty`.

use simty::prelude::*;
use simty_sim::report::TextTable;

/// A small mixed workload: two location trackers, two messengers, one
/// perceptible reminder, and a non-wakeup housekeeping alarm.
fn workload() -> Vec<Alarm> {
    let mut alarms = Vec::new();
    for (name, secs, alpha) in [("Tracker A", 300u64, 0.75), ("Tracker B", 420, 0.75)] {
        alarms.push(
            AppSpec::location_tracker(name, secs, alpha)
                .alarm(0.9, SimTime::ZERO)
                .expect("valid tracker"),
        );
    }
    for (name, secs) in [("Chat A", 120u64), ("Chat B", 200)] {
        alarms.push(
            AppSpec::messaging(name, secs, 0.5, RepeatKind::Dynamic)
                .alarm(0.9, SimTime::ZERO)
                .expect("valid messenger"),
        );
    }
    alarms.push(
        AppSpec::notifier("Reminder", 1_800, 0.0)
            .alarm(0.9, SimTime::ZERO)
            .expect("valid notifier"),
    );
    alarms.push(
        Alarm::builder("Housekeeping")
            .nominal(SimTime::from_secs(600))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.5)
            .grace_fraction(0.9)
            .kind(AlarmKind::NonWakeup)
            .task_duration(SimDuration::from_secs(1))
            .build()
            .expect("valid non-wakeup alarm"),
    );
    alarms
}

fn run(policy: Box<dyn AlignmentPolicy>) -> SimReport {
    // Push messages arrive roughly every 20 minutes and awaken the device.
    let wakes = ExternalEvents::new(11)
        .with_mean_interval(SimDuration::from_mins(20))
        .generate(SimDuration::from_hours(3));
    let config = SimConfig::new().with_external_wakes(wakes);
    let mut sim = Simulation::new(policy, config);
    for alarm in workload() {
        sim.register(alarm).expect("workload registers cleanly");
    }
    sim.run()
}

fn main() {
    let policies: Vec<Box<dyn AlignmentPolicy>> = vec![
        Box::new(ExactPolicy::new()),
        Box::new(NativePolicy::new()),
        Box::new(SimtyPolicy::new()),
        Box::new(DurationSimilarityPolicy::new()),
    ];

    let mut table = TextTable::new([
        "policy",
        "energy (J)",
        "awake (J)",
        "CPU wakeups",
        "deliveries",
        "impercept. delay",
    ]);
    for policy in policies {
        let r = run(policy);
        table.row([
            r.policy.clone(),
            format!("{:.1}", r.energy.total_mj() / 1_000.0),
            format!("{:.1}", r.energy.awake_related_mj() / 1_000.0),
            r.cpu_wakeups.to_string(),
            r.total_deliveries.to_string(),
            format!("{:.1}%", r.delays.imperceptible_avg * 100.0),
        ]);
    }
    println!("custom workload, 3 h, external pushes every ~20 min\n");
    println!("{}", table.render());
    println!("perceptible alarms are delivered within their windows under every policy.");
}
