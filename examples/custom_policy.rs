//! Implementing a custom alignment policy against the public
//! `AlignmentPolicy` trait.
//!
//! The policy below ("EAGER") aligns any two alarms whose *grace*
//! intervals overlap, regardless of perceptibility — maximal batching at
//! the cost of user experience. Running it against SIMTY shows why the
//! paper's search-phase perceptibility rule matters: EAGER saves a little
//! more energy but delays perceptible alarms, which SIMTY never does.
//!
//! Run with `cargo run --release --example custom_policy -p simty`.

use simty::prelude::*;

/// Aligns as aggressively as possible: the first entry whose grace
/// interval overlaps wins, perceptible or not.
#[derive(Debug)]
struct EagerPolicy;

impl AlignmentPolicy for EagerPolicy {
    fn name(&self) -> &str {
        "EAGER"
    }

    fn place(&self, queue: &simty::core::queue::AlarmQueue, alarm: &Alarm) -> Placement {
        for (idx, entry) in queue.iter().enumerate() {
            if entry.time_similarity_to(alarm) != TimeSimilarity::Low {
                return Placement::Existing(idx);
            }
        }
        Placement::NewEntry
    }

    fn discipline(&self) -> DeliveryDiscipline {
        // Deliver every entry at its grace start, ignoring windows.
        DeliveryDiscipline::PerceptibilityAware
    }
}

fn run(policy: Box<dyn AlignmentPolicy>) -> (SimReport, f64) {
    let workload = WorkloadBuilder::heavy().with_seed(2).build();
    let config = SimConfig::new().with_duration(SimDuration::from_hours(1));
    let mut sim = Simulation::new(policy, config);
    for alarm in workload.alarms {
        sim.register(alarm).expect("registers cleanly");
    }
    let report = sim.run();
    // Fraction of perceptible deliveries that violated their window.
    let (violations, total) = sim
        .trace()
        .deliveries()
        .iter()
        .filter(|d| d.perceptible)
        .fold((0u32, 0u32), |(v, t), d| {
            (v + u32::from(d.delivered_at > d.window_end), t + 1)
        });
    let rate = if total == 0 {
        0.0
    } else {
        f64::from(violations) / f64::from(total)
    };
    (report, rate)
}

fn main() {
    for policy in [
        Box::new(SimtyPolicy::new()) as Box<dyn AlignmentPolicy>,
        Box::new(EagerPolicy),
    ] {
        let (report, violation_rate) = run(policy);
        println!(
            "{:<6}  total {:>8.1} J  CPU wakeups {:>4}  perceptible window violations {:>5.1}%",
            report.policy,
            report.energy.total_mj() / 1_000.0,
            report.cpu_wakeups,
            violation_rate * 100.0
        );
    }
    println!(
        "\nEAGER batches everything its grace intervals allow, but perceptible\n\
         alarms (the Alarm Clock, Drink Water) slip past their windows —\n\
         exactly the user-experience regression SIMTY's search phase prevents."
    );
}
