//! Quickstart: register a handful of resident-app alarms and watch SIMTY
//! align them.
//!
//! Run with `cargo run --example quickstart -p simty`.

use simty::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A SIMTY-governed alarm manager inside a 30-minute connected-standby
    // simulation on the Nexus 5 power model.
    let config = SimConfig::new().with_duration(SimDuration::from_mins(30));
    let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), config);

    // Three resident apps: two Wi-Fi messengers and a perceptible
    // reminder. β = 0.9 gives the imperceptible alarms a wide grace
    // interval to align within.
    sim.register(
        Alarm::builder("Messenger A")
            .nominal(SimTime::from_secs(60))
            .repeating_dynamic(SimDuration::from_secs(60))
            .window_fraction(0.0)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(3))
            .build()?,
    )?;
    sim.register(
        Alarm::builder("Messenger B")
            .nominal(SimTime::from_secs(90))
            .repeating_static(SimDuration::from_secs(180))
            .window_fraction(0.75)
            .grace_fraction(0.9)
            .hardware(HardwareComponent::Wifi.into())
            .task_duration(SimDuration::from_secs(3))
            .build()?,
    )?;
    sim.register(
        Alarm::builder("Reminder")
            .nominal(SimTime::from_secs(600))
            .repeating_static(SimDuration::from_secs(600))
            .window_fraction(0.0)
            .grace_fraction(0.5)
            .hardware(HardwareComponent::Speaker | HardwareComponent::Vibrator)
            .task_duration(SimDuration::from_secs(1))
            .build()?,
    )?;

    let report = sim.run();
    println!("{report}\n");

    // The delivery trace shows which alarms were batched together
    // (entry_size > 1) and how far each was postponed.
    println!("first ten deliveries:");
    for d in sim.trace().deliveries().iter().take(10) {
        println!(
            "  {:>9}  {:<12} batch of {}  (nominal {}, +{} beyond window)",
            d.delivered_at.to_string(),
            d.label,
            d.entry_size,
            d.nominal,
            d.delay_beyond_window(),
        );
    }

    // Project standby time from the measured average power.
    let battery = Battery::nexus5();
    let standby = battery.standby_time(report.average_power_mw());
    println!(
        "\naverage power {:.2} mW -> projected standby {:.1} days",
        report.average_power_mw(),
        standby.as_secs_f64() / 86_400.0
    );
    Ok(())
}
