//! Connected standby with the paper's full 18-app heavy workload
//! (Table 3): a three-hour session under SIMTY, with the full energy
//! breakdown, wakeup statistics, and a CSV delivery trace.
//!
//! Run with `cargo run --release --example connected_standby -p simty`.

use std::fs::File;
use std::io::BufWriter;

use simty::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadBuilder::heavy().with_seed(1).with_beta(0.96).build();
    println!(
        "registering {} alarms ({} workload)",
        workload.alarms.len(),
        workload.name
    );

    let mut sim = Simulation::new(Box::new(SimtyPolicy::new()), SimConfig::new());
    for alarm in workload.alarms {
        sim.register(alarm)?;
    }
    let report = sim.run();

    println!("\n{report}\n");

    // Per-app delivery counts over the three hours.
    let mut per_app: std::collections::BTreeMap<&str, usize> = Default::default();
    for d in sim.trace().deliveries() {
        *per_app.entry(d.label.as_ref()).or_default() += 1;
    }
    println!("deliveries per app:");
    for (app, count) in &per_app {
        println!("  {app:<16} {count}");
    }

    // Battery projection vs a NATIVE run of the same workload.
    let mut native = Simulation::new(Box::new(NativePolicy::new()), SimConfig::new());
    for alarm in WorkloadBuilder::heavy().with_seed(1).with_beta(0.96).build().alarms {
        native.register(alarm)?;
    }
    let native_report = native.run();
    let battery = Battery::nexus5();
    let extension = battery.standby_extension(
        native_report.average_power_mw(),
        report.average_power_mw(),
    );
    println!(
        "\nNATIVE {:.2} mW vs SIMTY {:.2} mW -> standby prolonged by {:.0}%",
        native_report.average_power_mw(),
        report.average_power_mw(),
        extension * 100.0
    );

    // Dump the full trace for offline analysis.
    let path = "connected_standby_trace.csv";
    let file = BufWriter::new(File::create(path)?);
    sim.trace().write_csv(file)?;
    println!("delivery trace written to {path}");
    Ok(())
}
