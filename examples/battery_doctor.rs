//! Battery doctor: which resident app is draining the battery in
//! connected standby, and what would SIMTY buy you?
//!
//! Uses the per-app energy attribution ledger and the trace-analysis
//! tooling on the paper's heavy workload.
//!
//! Run with `cargo run --release --example battery_doctor -p simty`.

use simty::prelude::*;
use simty::sim::analysis::{per_app_stats, wakeup_gap_stats, BatchHistogram};

fn run(policy: Box<dyn AlignmentPolicy>) -> Simulation {
    let workload = WorkloadBuilder::heavy().with_seed(3).build();
    let mut sim = Simulation::new(policy, SimConfig::new());
    for alarm in workload.alarms {
        sim.register(alarm).expect("workload registers cleanly");
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_hours(3));
    sim
}

fn main() {
    let sim = run(Box::new(NativePolicy::new()));

    println!("=== top battery consumers under NATIVE (3 h heavy workload) ===\n");
    for (app, mj) in sim.attribution().ranking().into_iter().take(8) {
        println!("  {app:<16} {:>8.1} J", mj / 1_000.0);
    }
    println!(
        "  {:<16} {:>8.1} J  (wake latency/linger, unclaimed wakes)",
        "(overhead)",
        sim.attribution().overhead_mj() / 1_000.0
    );

    println!("\n=== alignment quality ===\n");
    let native_hist = BatchHistogram::from_trace(sim.trace());
    println!(
        "NATIVE: mean batch {:.2}, {:.0}% of deliveries aligned",
        native_hist.mean_batch_size(),
        native_hist.aligned_fraction() * 100.0
    );
    let simty_sim = run(Box::new(SimtyPolicy::new()));
    let simty_hist = BatchHistogram::from_trace(simty_sim.trace());
    println!(
        "SIMTY:  mean batch {:.2}, {:.0}% of deliveries aligned",
        simty_hist.mean_batch_size(),
        simty_hist.aligned_fraction() * 100.0
    );

    if let (Some(n), Some(s)) = (
        wakeup_gap_stats(sim.trace()),
        wakeup_gap_stats(simty_sim.trace()),
    ) {
        println!(
            "\nlongest uninterrupted sleep: NATIVE {} vs SIMTY {}",
            n.max, s.max
        );
    }

    println!("\n=== most delayed apps under SIMTY (the price of alignment) ===\n");
    let mut stats = per_app_stats(simty_sim.trace());
    stats.sort_by(|a, b| {
        b.mean_normalized_delay
            .partial_cmp(&a.mean_normalized_delay)
            .expect("finite delays")
    });
    for s in stats.iter().take(5) {
        println!(
            "  {:<16} mean delay {:>5.1}% of its period ({} deliveries)",
            s.app,
            s.mean_normalized_delay * 100.0,
            s.deliveries
        );
    }
    println!(
        "\nAll of these are imperceptible alarms — the perceptible Alarm Clock and\n\
         Drink Water notifications stay inside their windows."
    );
}
